"""Per-host tenant state and the transport-free service core.

:class:`HostSession` is the daemon's brain for one host.  Since the
control plane moved onto the fused monitor kernel, per-app monitor state
no longer lives in one Python :class:`~repro.runtime.monitor.AppMonitor`
per application: every session shares one growable
:class:`~repro.runtime.monitor.MonitorBank` (wrapped by
:class:`BankIngest`), each app owning one bank *row*, and the session's
``monitors`` dict holds :class:`~repro.runtime.monitor.BankMonitor` row
views with the full ``AppMonitor`` API.  Decisions flow through the PR 5
incremental decision layer unchanged:

* **lfoc** — a classification version vector over the live apps guards a
  fingerprint-keyed :class:`~repro.core.lfoc.LfocDecisionCache`, so an
  unchanged classification answers without re-running Algorithm 1 and a
  *recurring* classification answers from the cache in O(changed apps);
* **dunn** — rolling stall-fraction windows per app feeding
  :meth:`~repro.policies.dunn.DunnPolicy.allocation_for_values` behind an
  LRU keyed on the exact stall vector bytes.

**Batched ingest.**  Frame handling is split into :meth:`HostSession.stage`
(sequence checks, tenant churn, classify installs, and *staging* of
monitor samples into the shared bank buffers) and
:meth:`HostSession.finish` (resolve the staged trigger mask into sweep
requests, decide, build and cache the reply).  Between the two sits one
fused :meth:`~repro.runtime.monitor.MonitorBank.observe_batch` call over
*every* staged row of *every* host — that is
:meth:`ServiceCore.handle_drain`, which the daemon feeds one batch of
frames per event-loop pass.  Rows are arithmetically independent in
``observe_batch``, so cross-host batching is bit-identical to the old
per-app path; the one ordering hazard — two frames of the *same* host in
one drain — is handled by flushing before the second is staged, which
preserves exact sequential semantics (**ingest → depart → decide**, the
order :func:`~repro.service.replay.offline_replay` pins).

Sessions are **lockstep and idempotent**: every sequenced frame gets
exactly one ``mask_update`` reply; a duplicated frame (``seq <=
last_seq``) is answered with the cached reply and touches nothing; a gap
is a protocol error.  The hello handshake distinguishes resume from
restart by the *boot* token:

* an **unchanged** boot means the same host incarnation reconnected (a
  dropped link, or a daemon restart with the agent still alive): the
  session resumes mid-epoch — epoch, sequence numbers and the cached
  reply survive, so the agent can replay its unacknowledged journal
  suffix and land exactly where it left off;
* a **new** boot means the host restarted: live monitors are parked, the
  epoch bumps and sequence numbers restart — and the cached duplicate
  reply is cleared, so a reply from a previous boot epoch can never be
  replayed into the new sequence space.  Parked monitors keep their
  classification, so a re-arriving application goes through
  :meth:`~repro.runtime.monitor.AppMonitor.reset_for_restart` (warm-up
  and windows restart, the sweep outcome survives) instead of a cold
  start.

:class:`ServiceCore` aggregates the sessions of all connected hosts, the
shared bank, and the shared :class:`~repro.service.replay.ReplayLog`; its
:meth:`~ServiceCore.to_state` / :meth:`~ServiceCore.from_state` give the
daemon crash-consistent snapshot/restore.  The daemon is a socket shell
around it; the offline replay oracle calls it directly — which is what
makes the live-vs-offline determinism pin meaningful.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.caching import LruDict
from repro.core.classification import AppClass, ClassificationThresholds
from repro.core.lfoc import DEFAULT_PARAMS, LfocDecisionCache, LfocParams
from repro.errors import SimulationError
from repro.hardware.platform import PlatformSpec
from repro.hardware.pmc import DerivedMetrics
from repro.metrics.aggregate import short_mean
from repro.policies.dunn import DunnPolicy
from repro.runtime.monitor import AppMonitor, BankMonitor, MonitorBank, MonitorConfig
from repro.service import protocol
from repro.service.protocol import ServiceProtocolError
from repro.service.replay import MaskDecision, ReplayLog

__all__ = ["BankIngest", "HostSession", "ServiceCore"]

POLICIES = ("lfoc", "dunn")
MONITOR_BACKENDS = ("bank", "reference")

#: Schema version of :meth:`ServiceCore.to_state` payloads.
STATE_VERSION = 1


def _metrics(llcmpkc: float, stall_fraction: float) -> DerivedMetrics:
    """Monitor-facing metrics from a streamed sample (the monitors only read
    ``llcmpkc`` and ``stall_fraction``; the other fields never left the
    host, so they travel as zeros)."""
    return DerivedMetrics(
        ipc=0.0,
        llcmpkc=float(llcmpkc),
        llcmpki=0.0,
        stall_fraction=float(stall_fraction),
        instructions=0.0,
        cycles=0.0,
    )


class _Pending:
    """One staged sequenced frame awaiting its flush + finish."""

    __slots__ = ("kind", "seq", "staged", "triggers", "bye")

    def __init__(self, kind: str, seq: int) -> None:
        self.kind = kind
        self.seq = seq
        #: ``(app, monitor)`` per staged sample, in frame order.
        self.staged: List[Tuple[str, Union[AppMonitor, BankMonitor]]] = []
        #: Trigger verdicts aligned with ``staged``; the bank path fills
        #: these at flush time, the reference path immediately.
        self.triggers: List[Optional[bool]] = []
        self.bye = kind == "host_bye"


class BankIngest:
    """One growable :class:`MonitorBank` shared by every host session,
    plus the cross-host staging buffers of the current drain.

    Rows are allocated per ``(host, app)`` on first arrival and live for
    the life of the daemon — a departed app keeps its row so a re-arrival
    restores its classification (the park/restart path).  ``stage`` queues
    one sample for one row; ``flush`` ingests *all* queued samples through
    a single :meth:`MonitorBank.observe_batch` call and writes the trigger
    verdicts back into the pending frames they came from.
    """

    def __init__(self, config: Optional[MonitorConfig] = None) -> None:
        self.config = config or MonitorConfig()
        self.bank: Optional[MonitorBank] = None  # created with the first row
        self._row_of: Dict[Tuple[str, str], int] = {}
        self._rows: List[int] = []
        self._staged: set = set()
        self._llc: List[float] = []
        self._stl: List[float] = []
        self._eff: List[float] = []
        self._sinks: List[Tuple[_Pending, int]] = []
        self.observe_batch_calls = 0
        self.samples_ingested = 0

    def monitor(self, host: str, app: str) -> BankMonitor:
        """The row view for ``(host, app)``, allocating the row on demand."""
        key = (host, app)
        row = self._row_of.get(key)
        if row is None:
            name = f"{host}/{app}"
            if self.bank is None:
                self.bank = MonitorBank([name], self.config)
                row = 0
            else:
                row = self.bank.add_row(name)
            self._row_of[key] = row
        assert self.bank is not None
        return BankMonitor(self.bank, row)

    def stage(
        self,
        pending: _Pending,
        monitor: BankMonitor,
        llcmpkc: float,
        stall_fraction: float,
        effective_ways: float,
    ) -> None:
        row = monitor.row
        if row in self._staged:
            # Defence in depth: observe_batch must see each row once.  The
            # protocol rejects duplicate apps per frame and handle_drain
            # flushes before a host's second frame, so this cannot fire on
            # the wire paths — but a direct caller must not corrupt sums.
            self.flush()
        self._staged.add(row)
        self._rows.append(row)
        self._llc.append(float(llcmpkc))
        self._stl.append(float(stall_fraction))
        self._eff.append(float(effective_ways))
        pending.triggers.append(None)
        self._sinks.append((pending, len(pending.triggers) - 1))

    def flush(self) -> None:
        """One fused ``observe_batch`` over everything staged since the last
        flush (a no-op when nothing is staged)."""
        if not self._rows:
            return
        assert self.bank is not None
        triggers = self.bank.observe_batch(
            self._llc, self._stl, self._eff, rows=self._rows
        )
        self.observe_batch_calls += 1
        self.samples_ingested += len(self._rows)
        for (pending, position), verdict in zip(self._sinks, triggers):
            pending.triggers[position] = bool(verdict)
        self._rows, self._llc, self._stl, self._eff = [], [], [], []
        self._sinks = []
        self._staged = set()

    # -- persistence --------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        if self._rows:
            raise SimulationError("cannot snapshot a bank ingest mid-drain")
        rows: Dict[str, Dict[str, int]] = {}
        for (host, app), row in self._row_of.items():
            rows.setdefault(host, {})[app] = row
        return {
            "bank": self.bank.state_dict() if self.bank is not None else None,
            "rows": rows,
            "observe_batch_calls": self.observe_batch_calls,
            "samples_ingested": self.samples_ingested,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "BankIngest":
        bank_state = state.get("bank")
        if bank_state is not None:
            bank = MonitorBank.from_state(bank_state)
            ingest = cls(bank.config)
            ingest.bank = bank
        else:
            ingest = cls()
        for host, apps in state.get("rows", {}).items():
            for app, row in apps.items():
                ingest._row_of[(str(host), str(app))] = int(row)
        if ingest._row_of and ingest.bank is None:
            raise SimulationError("bank ingest state has rows but no bank")
        for (host, app), row in ingest._row_of.items():
            if ingest.bank is not None and not 0 <= row < len(ingest.bank):
                raise SimulationError(
                    f"bank ingest row {row} of {host}/{app} out of range"
                )
        ingest.observe_batch_calls = int(state.get("observe_batch_calls", 0))
        ingest.samples_ingested = int(state.get("samples_ingested", 0))
        return ingest


class HostSession:
    """Daemon-side state for one connected host."""

    def __init__(
        self,
        host: str,
        *,
        policy: str = "lfoc",
        platform: Optional[PlatformSpec] = None,
        params: LfocParams = DEFAULT_PARAMS,
        monitor_config: Optional[MonitorConfig] = None,
        history_window: int = 5,
        replay: Optional[ReplayLog] = None,
        monitor_backend: str = "bank",
        ingest: Optional[BankIngest] = None,
    ) -> None:
        if policy not in POLICIES:
            raise SimulationError(
                f"unknown service policy {policy!r}; known: {', '.join(POLICIES)}"
            )
        if monitor_backend not in MONITOR_BACKENDS:
            raise SimulationError(
                f"unknown monitor backend {monitor_backend!r}; known: "
                f"{', '.join(MONITOR_BACKENDS)}"
            )
        self.host = host
        self.policy = policy
        self.platform = platform or PlatformSpec()
        self.monitor_config = monitor_config or MonitorConfig()
        self.replay = replay if replay is not None else ReplayLog()
        self.monitor_backend = monitor_backend
        if monitor_backend == "bank":
            self.ingest: Optional[BankIngest] = (
                ingest if ingest is not None else BankIngest(self.monitor_config)
            )
        else:
            self.ingest = None
        # -- tenant state --
        self.live: List[str] = []  # arrival order (decision input order)
        self.monitors: Dict[str, Union[AppMonitor, BankMonitor]] = {}
        self.parked: Dict[str, Union[AppMonitor, BankMonitor]] = {}
        # -- session identity / idempotence --
        self.boot: Optional[int] = None
        self.epoch = 0
        self.last_seq = 0
        self._last_reply: Optional[Tuple[str, Dict[str, Any]]] = None
        self.completed = False
        self.duplicates_dropped = 0
        self.samples_ingested = 0
        # -- decision layer (lfoc) --
        self.params = params
        self._decision_cache = LfocDecisionCache(params=params)
        self._last_versions: Optional[Tuple[Tuple[str, int], ...]] = None
        self._last_allocation_masks: Optional[Dict[str, int]] = None
        self._last_pushed: Optional[Dict[str, int]] = None
        self.decision_fast_hits = 0
        self.decisions_computed = 0
        # -- decision layer (dunn) --
        self.history_window = history_window
        self._dunn = DunnPolicy(backend="incremental")
        self._stalls: Dict[str, Deque[float]] = {}
        self._dunn_cache = LruDict(4096)

    # -- handshake ------------------------------------------------------------------

    def hello(self, boot: int) -> Tuple[int, int]:
        """Register a (re)connection; returns ``(epoch, last_seq)``.

        An *unchanged* boot token resumes the session mid-epoch: epoch,
        sequence numbering and the cached duplicate reply all survive, so
        the agent can replay its unacknowledged frames (after a dropped
        link or a daemon restore-from-snapshot) and continue.  A *changed*
        boot token is a host restart: every live monitor is parked
        (classification kept for the re-arrival path), the epoch bumps,
        sequence numbering restarts, and the cached reply is cleared —
        a reply cached under a previous boot must never leak into the new
        sequence space.
        """
        if self.boot != boot:
            self.epoch += 1
            self.boot = boot
            for app in self.live:
                self.parked[app] = self.monitors.pop(app)
            self.live = []
            self._stalls = {}
            self.last_seq = 0
            self._last_reply = None
            # The rebooted host starts from stock (full-mask) CAT state, so
            # the next decision must be pushed even if it matches what the
            # previous incarnation last saw.
            self._last_pushed = None
            self._last_versions = None
            self._last_allocation_masks = None
            self.completed = False
        return self.epoch, self.last_seq

    # -- sequenced frames -------------------------------------------------------------

    def handle(self, kind: str, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        """Process one *validated* sequenced frame; returns the reply frame.

        Single-frame path: stage, flush (one ``observe_batch`` over this
        frame's samples), finish.  The daemon's drain path amortises the
        flush over every host's frames instead — with identical results.
        """
        staged = self.stage(kind, payload)
        if not isinstance(staged, _Pending):
            return staged
        if self.ingest is not None:
            self.ingest.flush()
        return self.finish(staged)

    def stage(
        self, kind: str, payload: Mapping[str, Any]
    ) -> Union[_Pending, Tuple[str, Dict[str, Any]]]:
        """Phase 1 of a sequenced frame: checks and state mutations.

        Returns the pending record to :meth:`finish` after the shared bank
        flush — or, for duplicates, the immediate (cached) reply.
        Duplicates are answered idempotently; a gap in the sequence raises
        :class:`ServiceProtocolError` (the daemon drops the link and the
        agent re-registers).
        """
        if self.epoch == 0:
            raise ServiceProtocolError(
                f"host {self.host!r} sent {kind} before host_hello"
            )
        seq = payload["seq"]
        if seq <= self.last_seq:
            self.duplicates_dropped += 1
            if self._last_reply is None or seq != self.last_seq:
                # A stale frame from deeper in the past than the cached
                # reply (or from before a reboot): acknowledge progress
                # without replaying a reply that answered a different frame.
                return protocol.mask_update(self.epoch, self.last_seq)
            return self._last_reply
        if seq != self.last_seq + 1:
            raise ServiceProtocolError(
                f"host {self.host!r} jumped from seq {self.last_seq} to {seq}"
            )
        pending = _Pending(kind, seq)
        if kind == "app_arrive":
            self._arrive(payload["app"])
        elif kind == "app_depart":
            self._depart(payload["app"])
        elif kind == "monitor_samples":
            self._stage_samples(pending, payload["samples"], payload["classify"])
        elif kind == "host_bye":
            pass  # resolved in finish
        else:  # pragma: no cover - check_frame only admits the kinds above
            raise ServiceProtocolError(f"unexpected sequenced kind {kind!r}")
        return pending

    def finish(self, pending: _Pending) -> Tuple[str, Dict[str, Any]]:
        """Phase 2, after the bank flush: requests, decision, cached reply."""
        requests: List[str] = []
        for (app, monitor), trigger in zip(pending.staged, pending.triggers):
            if trigger and not monitor.in_sampling_mode:
                monitor.begin_sampling()
                requests.append(app)
        masks: Optional[Dict[str, int]] = None
        decision_index: Optional[int] = None
        if pending.bye:
            self.completed = True
        else:
            pushed = self._decide(pending.seq)
            if pushed is not None:
                masks, decision_index = pushed
        self.last_seq = pending.seq
        reply = protocol.mask_update(
            self.epoch, pending.seq, masks=masks, sample=requests,
            decision=decision_index,
        )
        self._last_reply = reply
        return reply

    # -- tenant churn -----------------------------------------------------------------

    def _arrive(self, app: str) -> None:
        if app in self.monitors:
            return  # duplicate arrival within one boot; idempotent
        monitor = self.parked.pop(app, None)
        if monitor is not None:
            # Session churn: the application restarted on this host.  The
            # sweep outcome (class, slowdown table, critical size) is still
            # valid; the short-term state is not.
            monitor.reset_for_restart()
        elif self.ingest is not None:
            monitor = self.ingest.monitor(self.host, app)
        else:
            monitor = AppMonitor(app, self.monitor_config)
        self.monitors[app] = monitor
        self.live.append(app)
        self._stalls[app] = deque(maxlen=self.history_window)

    def _depart(self, app: str) -> None:
        if app not in self.monitors:
            return  # departing an unknown app is a no-op, not a crash
        self.parked[app] = self.monitors.pop(app)
        self.live.remove(app)
        self._stalls.pop(app, None)

    # -- samples ----------------------------------------------------------------------

    def _stage_samples(
        self,
        pending: _Pending,
        samples: List[Mapping[str, Any]],
        classify: List[Mapping[str, Any]],
    ) -> None:
        """Install sweep outcomes and stage (or, on the reference backend,
        directly ingest) this frame's samples."""
        seen = set()
        for entry in samples:
            if entry["app"] in seen:
                # check_frame rejects this on the wire; direct callers must
                # not reach observe_batch with a duplicate row either.
                raise ServiceProtocolError(
                    f"host {self.host!r} repeated app {entry['app']!r} within "
                    "one monitor_samples batch"
                )
            seen.add(entry["app"])
        for entry in classify:
            monitor = self.monitors.get(entry["app"]) or self.parked.get(entry["app"])
            if monitor is None:
                continue  # classified app departed and never came back
            monitor.set_classification(
                AppClass(entry["class"]),
                slowdown_table=entry["slowdown_table"],
                critical_size=entry["critical_size"],
            )
        for entry in samples:
            app = entry["app"]
            monitor = self.monitors.get(app)
            if monitor is None:
                continue  # sample for an app that departed in this batch
            self.samples_ingested += 1
            pending.staged.append((app, monitor))
            if self.ingest is not None:
                self.ingest.stage(
                    pending,
                    monitor,  # type: ignore[arg-type]
                    entry["llcmpkc"],
                    entry["stall_fraction"],
                    float(entry["effective_ways"]),
                )
            else:
                pending.triggers.append(
                    monitor.observe(
                        _metrics(entry["llcmpkc"], entry["stall_fraction"]),
                        float(entry["effective_ways"]),
                    )
                )
            self._stalls[app].append(float(entry["stall_fraction"]))

    # -- the decision layer -------------------------------------------------------------

    def _decide(self, seq: int) -> Optional[Tuple[Dict[str, int], int]]:
        """Re-decide for the current tenants; returns pushed masks (if changed)."""
        masks = self._decide_masks()
        if masks is None or masks == self._last_pushed:
            return None
        self._last_pushed = masks
        decision = self.replay.append(self.host, self.epoch, seq, masks)
        return dict(masks), decision.index

    def _decide_masks(self) -> Optional[Dict[str, int]]:
        if not self.live:
            return None
        if self.policy == "dunn":
            return self._decide_dunn()
        # Algorithm 1's inputs change only when a sweep outcome lands or the
        # tenant set changes; both are visible in the version vector.
        versions = tuple(
            (app, self.monitors[app].classification_version) for app in self.live
        )
        if versions == self._last_versions and self._last_allocation_masks is not None:
            self.decision_fast_hits += 1
            return self._last_allocation_masks
        streaming: List[str] = []
        sensitive: List[str] = []
        light: List[str] = []
        tables: Dict[str, List[float]] = {}
        for app in self.live:
            monitor = self.monitors[app]
            if monitor.app_class is AppClass.STREAMING:
                streaming.append(app)
            elif monitor.app_class is AppClass.SENSITIVE and monitor.slowdown_table:
                sensitive.append(app)
                tables[app] = monitor.slowdown_table
            else:
                light.append(app)
        allocation = self._decision_cache.allocation_for(
            streaming, sensitive, light, self.platform.llc_ways, tables
        )
        self._last_versions = versions
        self._last_allocation_masks = dict(allocation.masks)
        self.decisions_computed += 1
        return self._last_allocation_masks

    def _decide_dunn(self) -> Optional[Dict[str, int]]:
        if any(not self._stalls[app] for app in self.live):
            return None  # not every tenant has been sampled yet
        apps = list(self.live)
        values = np.array(
            [short_mean(self._stalls[app]) for app in apps], dtype=float
        )
        key = (tuple(apps), values.tobytes())
        masks = self._dunn_cache.get(key)
        if masks is None:
            allocation = self._dunn.allocation_for_values(apps, values, self.platform)
            masks = dict(allocation.masks)
            self._dunn_cache.put(key, masks)
            self.decisions_computed += 1
        else:
            self.decision_fast_hits += 1
        return masks

    # -- observability ----------------------------------------------------------------

    def class_counts(self) -> Dict[str, int]:
        """Live applications per class (UNKNOWN included)."""
        counts = {cls.value: 0 for cls in AppClass}
        for app in self.live:
            counts[self.monitors[app].app_class.value] += 1
        return counts

    def summary(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "epoch": self.epoch,
            "last_seq": self.last_seq,
            "live": list(self.live),
            "parked": sorted(self.parked),
            "completed": self.completed,
            "decisions_computed": self.decisions_computed,
            "decision_fast_hits": self.decision_fast_hits,
            "duplicates_dropped": self.duplicates_dropped,
            "samples_ingested": self.samples_ingested,
        }

    # -- persistence ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """JSON image of the session (bank rows are serialized by the core)."""
        return {
            "boot": self.boot,
            "epoch": self.epoch,
            "last_seq": self.last_seq,
            "completed": self.completed,
            "duplicates_dropped": self.duplicates_dropped,
            "samples_ingested": self.samples_ingested,
            "last_reply": (
                [self._last_reply[0], self._last_reply[1]]
                if self._last_reply is not None
                else None
            ),
            "live": list(self.live),
            "parked": sorted(self.parked),
            "last_pushed": (
                dict(self._last_pushed) if self._last_pushed is not None else None
            ),
            "decision_fast_hits": self.decision_fast_hits,
            "decisions_computed": self.decisions_computed,
            "history_window": self.history_window,
            "stalls": {app: list(window) for app, window in self._stalls.items()},
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Adopt a :meth:`to_state` image (monitors must already be wired).

        Decision caches are deliberately *not* persisted: they are pure
        memoization, so the first post-restore decision recomputes and
        lands on identical masks (``last_pushed`` — which is semantic
        suppression state, not a cache — is restored).
        """
        self.boot = state["boot"]
        self.epoch = int(state["epoch"])
        self.last_seq = int(state["last_seq"])
        self.completed = bool(state["completed"])
        self.duplicates_dropped = int(state["duplicates_dropped"])
        self.samples_ingested = int(state.get("samples_ingested", 0))
        reply = state["last_reply"]
        self._last_reply = (str(reply[0]), dict(reply[1])) if reply else None
        last_pushed = state["last_pushed"]
        self._last_pushed = (
            {str(a): int(m) for a, m in last_pushed.items()} if last_pushed else None
        )
        self.decision_fast_hits = int(state["decision_fast_hits"])
        self.decisions_computed = int(state["decisions_computed"])
        self.history_window = int(state["history_window"])
        self._stalls = {}
        for app in self.live:
            window: Deque[float] = deque(maxlen=self.history_window)
            window.extend(float(v) for v in state["stalls"].get(app, ()))
            self._stalls[app] = window


class ServiceCore:
    """Transport-free multi-tenant control plane: sessions + bank + log."""

    def __init__(
        self,
        *,
        policy: str = "lfoc",
        n_ways: Optional[int] = None,
        params: LfocParams = DEFAULT_PARAMS,
        monitor_config: Optional[MonitorConfig] = None,
        replay: Optional[ReplayLog] = None,
        monitor_backend: str = "bank",
    ) -> None:
        platform = PlatformSpec()
        if n_ways is not None:
            platform = platform.with_ways(n_ways)
        self.platform = platform
        self.policy = policy
        self.params = params
        self.monitor_config = monitor_config
        self.replay = replay if replay is not None else ReplayLog()
        if monitor_backend not in MONITOR_BACKENDS:
            raise SimulationError(
                f"unknown monitor backend {monitor_backend!r}; known: "
                f"{', '.join(MONITOR_BACKENDS)}"
            )
        self.monitor_backend = monitor_backend
        self.ingest: Optional[BankIngest] = (
            BankIngest(monitor_config) if monitor_backend == "bank" else None
        )
        self.sessions: Dict[str, HostSession] = {}
        #: Hosts that have *ever* completed an orderly ``host_bye``.  Unlike
        #: ``HostSession.completed`` this survives a later reconnection (a
        #: supervisor may respawn an already-finished agent), so run loops
        #: waiting for N hosts to finish terminate exactly once.
        self.ever_completed: set = set()

    def _new_session(self, host: str) -> HostSession:
        return HostSession(
            host,
            policy=self.policy,
            platform=self.platform,
            params=self.params,
            monitor_config=self.monitor_config,
            replay=self.replay,
            monitor_backend=self.monitor_backend,
            ingest=self.ingest,
        )

    def handle_hello(self, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        """Version-checked handshake; returns the ``hello_ack`` frame."""
        protocol.check_protocol(payload, f"host_hello from {payload.get('host')!r}")
        host = payload["host"]
        session = self.sessions.get(host)
        if session is None:
            session = self._new_session(host)
            self.sessions[host] = session
        epoch, last_seq = session.hello(payload["boot"])
        return protocol.hello_ack(epoch, last_seq)

    def handle(
        self, host: str, kind: str, payload: Mapping[str, Any]
    ) -> Tuple[str, Dict[str, Any]]:
        """Process one sequenced frame (a drain of one)."""
        result = self.handle_drain([(host, kind, payload)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def handle_drain(
        self, items: Sequence[Tuple[str, str, Mapping[str, Any]]]
    ) -> List[Union[Tuple[str, Dict[str, Any]], Exception]]:
        """Process one event-loop drain of sequenced frames from many hosts.

        All frames are staged first, then **one** fused
        ``observe_batch`` ingests every staged sample across every host,
        then the pending frames finish (requests, decisions, replies) in
        arrival order.  A second frame from a host already staged in this
        drain forces an intermediate flush+finish, so per-host semantics
        stay exactly sequential — including the ingest → depart → decide
        ordering the replay oracle pins.  Per-item failures are returned
        in place (the daemon drops that link), never raised: one
        misbehaving agent cannot stall the other hosts' frames.
        """
        results: List[Union[Tuple[str, Dict[str, Any]], Exception, None]]
        results = [None] * len(items)
        pendings: List[Tuple[int, HostSession, _Pending]] = []
        staged_hosts: set = set()

        def flush_and_finish() -> None:
            if self.ingest is not None:
                self.ingest.flush()
            for index, session, pending in pendings:
                try:
                    results[index] = session.finish(pending)
                except (ServiceProtocolError, SimulationError) as exc:
                    results[index] = exc
                if session.completed:
                    self.ever_completed.add(session.host)
            pendings.clear()
            staged_hosts.clear()

        for index, (host, kind, payload) in enumerate(items):
            session = self.sessions.get(host)
            if session is None:
                results[index] = ServiceProtocolError(
                    f"sequenced frame {kind!r} from unregistered host {host!r}"
                )
                continue
            if host in staged_hosts:
                flush_and_finish()
            try:
                staged = session.stage(kind, payload)
            except (ServiceProtocolError, SimulationError) as exc:
                results[index] = exc
                continue
            if isinstance(staged, _Pending):
                pendings.append((index, session, staged))
                staged_hosts.add(host)
            else:
                results[index] = staged
        flush_and_finish()
        return results  # type: ignore[return-value]

    # -- observability ----------------------------------------------------------------

    def completed_hosts(self) -> List[str]:
        return sorted(
            host for host, session in self.sessions.items() if session.completed
        )

    def metrics(self) -> Dict[str, Any]:
        """Read-only live counters (the ``metrics`` protocol reply body)."""
        hosts: Dict[str, Any] = {}
        classes = {cls.value: 0 for cls in AppClass}
        for host, session in sorted(self.sessions.items()):
            per_class = session.class_counts()
            for cls, count in per_class.items():
                classes[cls] += count
            hosts[host] = {
                "epoch": session.epoch,
                "last_seq": session.last_seq,
                "live": len(session.live),
                "parked": len(session.parked),
                "completed": session.completed,
                "decisions_computed": session.decisions_computed,
                "decision_fast_hits": session.decision_fast_hits,
                "duplicates_dropped": session.duplicates_dropped,
                "samples_ingested": session.samples_ingested,
                "classes": per_class,
            }
        totals = {
            "hosts": len(self.sessions),
            "decisions": len(self.replay),
            "backend": self.monitor_backend,
            "monitor_rows": len(self.ingest.bank) if self.ingest and self.ingest.bank else 0,
            "observe_batch_calls": self.ingest.observe_batch_calls if self.ingest else 0,
            "samples_ingested": (
                self.ingest.samples_ingested
                if self.ingest
                else sum(s.samples_ingested for s in self.sessions.values())
            ),
        }
        return {"hosts": hosts, "classes": classes, "totals": totals}

    def handle_metrics(self, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        """Serve a read-only ``metrics`` request (no handshake required)."""
        protocol.check_protocol(payload, "metrics")
        body = self.metrics()
        return protocol.metrics_reply(body["hosts"], body["classes"], body["totals"])

    def summary(self) -> Dict[str, Any]:
        return {
            "hosts": len(self.sessions),
            "completed": self.completed_hosts(),
            "decisions": len(self.replay),
            "backend": self.monitor_backend,
            "ingest": {
                "observe_batch_calls": self.ingest.observe_batch_calls if self.ingest else 0,
                "samples_ingested": (
                    self.ingest.samples_ingested
                    if self.ingest
                    else sum(s.samples_ingested for s in self.sessions.values())
                ),
                "monitor_rows": (
                    len(self.ingest.bank) if self.ingest and self.ingest.bank else 0
                ),
            },
            "sessions": {
                host: session.summary() for host, session in sorted(self.sessions.items())
            },
        }

    # -- persistence ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Crash-consistent JSON image of the whole control plane.

        Snapshot-able state is the *semantic* state only: sessions,
        bank arrays, seq/boot counters, the replay log, and the
        last-pushed masks.  Pure memoization (the Algorithm 1 decision
        cache, the version-vector fast path, the Dunn LRU) is dropped —
        recomputation is deterministic, so a restored daemon produces
        bit-identical decisions without it.
        """
        if self.ingest is None:
            raise SimulationError(
                "snapshot/restore requires the 'bank' monitor backend "
                "(the reference backend is a test oracle)"
            )
        monitor_config = None
        if self.monitor_config is not None:
            monitor_config = {
                "warmup_samples": self.monitor_config.warmup_samples,
                "history_window": self.monitor_config.history_window,
                "thresholds": {
                    f.name: getattr(self.monitor_config.thresholds, f.name)
                    for f in ClassificationThresholds.__dataclass_fields__.values()
                },
            }
        return {
            "version": STATE_VERSION,
            "policy": self.policy,
            "llc_ways": self.platform.llc_ways,
            "params": {
                "max_streaming_way": self.params.max_streaming_way,
                "gaps_per_streaming": self.params.gaps_per_streaming,
                "max_streaming_ways_total": self.params.max_streaming_ways_total,
            },
            "monitor_config": monitor_config,
            "ingest": self.ingest.to_state(),
            "replay": [decision.to_dict() for decision in self.replay.decisions],
            "ever_completed": sorted(self.ever_completed),
            "sessions": {
                host: session.to_state()
                for host, session in sorted(self.sessions.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ServiceCore":
        """Rebuild a core from :meth:`to_state`; monitors are re-parked /
        re-wired to their bank rows so reconnecting agents resume mid-epoch."""
        if state.get("version") != STATE_VERSION:
            raise SimulationError(
                f"unsupported service state version {state.get('version')!r} "
                f"(this build speaks {STATE_VERSION})"
            )
        monitor_config = None
        cfg = state.get("monitor_config")
        if cfg is not None:
            monitor_config = MonitorConfig(
                warmup_samples=int(cfg["warmup_samples"]),
                history_window=int(cfg["history_window"]),
                thresholds=ClassificationThresholds(**cfg["thresholds"]),
            )
        core = cls(
            policy=str(state["policy"]),
            n_ways=int(state["llc_ways"]),
            params=LfocParams(**{k: int(v) for k, v in state["params"].items()}),
            monitor_config=monitor_config,
            monitor_backend="bank",
        )
        core.ingest = BankIngest.from_state(state["ingest"])
        for record in state["replay"]:
            decision = MaskDecision.from_dict(record)
            if decision.index != len(core.replay.decisions):
                raise SimulationError(
                    f"snapshot replay log is not contiguous at index "
                    f"{len(core.replay.decisions)}"
                )
            core.replay.decisions.append(decision)
        core.ever_completed = set(state.get("ever_completed", ()))
        for host, session_state in state["sessions"].items():
            session = core._new_session(host)
            session.live = [str(a) for a in session_state["live"]]
            assert core.ingest is not None
            for app in session.live:
                session.monitors[app] = core.ingest.monitor(host, app)
            for app in session_state["parked"]:
                session.parked[str(app)] = core.ingest.monitor(host, str(app))
            session.restore_state(session_state)
            core.sessions[host] = session
        return core
