"""Append-only mask-decision log and the offline replay oracle.

Every time a host session's decision layer produces an allocation that
differs from the last one pushed to that host, the daemon appends a
:class:`MaskDecision` to its :class:`ReplayLog`.  The log is the
service's source of truth for testing and auditing:

* the **determinism pin** — streaming a seeded trace through the live
  daemon over real sockets must yield a log bit-identical to
  :func:`offline_replay`, which drives the same
  :class:`~repro.service.session.ServiceCore` with no sockets at all;
* the **chaos pin** — under scripted agent kills and frame corruption
  the sequence may differ (extra epochs, replayed batches), but the
  final masks per host must converge to the clean run's.

Logs round-trip through JSONL (one decision per line) so CI can diff a
live run against a golden offline replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["MaskDecision", "ReplayLog", "offline_replay"]


@dataclass(frozen=True)
class MaskDecision:
    """One pushed mask update: which host, when in the stream, what masks."""

    host: str
    epoch: int
    seq: int
    index: int
    masks: Tuple[Tuple[str, int], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "epoch": self.epoch,
            "seq": self.seq,
            "index": self.index,
            "masks": {app: mask for app, mask in self.masks},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MaskDecision":
        try:
            masks = tuple(sorted((str(a), int(m)) for a, m in data["masks"].items()))
            return cls(
                host=str(data["host"]),
                epoch=int(data["epoch"]),
                seq=int(data["seq"]),
                index=int(data["index"]),
                masks=masks,
            )
        except (KeyError, AttributeError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed replay record {data!r}: {exc}") from exc


class ReplayLog:
    """In-order record of every mask decision the service pushed."""

    def __init__(self) -> None:
        self.decisions: List[MaskDecision] = []

    def __len__(self) -> int:
        return len(self.decisions)

    def append(
        self, host: str, epoch: int, seq: int, masks: Dict[str, int]
    ) -> MaskDecision:
        decision = MaskDecision(
            host=host,
            epoch=epoch,
            seq=seq,
            index=len(self.decisions),
            masks=tuple(sorted(masks.items())),
        )
        self.decisions.append(decision)
        return decision

    def for_host(self, host: str) -> List[MaskDecision]:
        return [d for d in self.decisions if d.host == host]

    def final_masks(self, host: str) -> Optional[Dict[str, int]]:
        """The last masks pushed to ``host`` (None if none ever were)."""
        for decision in reversed(self.decisions):
            if decision.host == host:
                return dict(decision.masks)
        return None

    def signature(self, host: Optional[str] = None) -> List[Tuple]:
        """Comparable per-host decision sequence (epoch, seq, masks)."""
        selected = self.decisions if host is None else self.for_host(host)
        return [(d.host, d.epoch, d.seq, d.masks) for d in selected]

    # -- persistence --------------------------------------------------------------

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for decision in self.decisions:
                handle.write(json.dumps(decision.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str) -> "ReplayLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError as exc:
                    raise SimulationError(
                        f"corrupt replay log line in {path}: {exc}"
                    ) from exc
                log.decisions.append(MaskDecision.from_dict(data))
        for index, decision in enumerate(log.decisions):
            if decision.index != index:
                raise SimulationError(
                    f"replay log {path} is not contiguous at index {index}"
                )
        return log


def offline_replay(
    host_ids,
    workload,
    *,
    batches: int,
    seed: int = 0,
    policy: str = "lfoc",
    n_ways: Optional[int] = None,
    monitor_backend: str = "bank",
) -> ReplayLog:
    """Socket-free oracle: run the same hosts against a fresh service core.

    Every host in ``host_ids`` is driven through a
    :class:`~repro.service.simhost.SimulatedHost` and a local (in-process)
    transport against one shared
    :class:`~repro.service.session.ServiceCore` — exactly the code the
    live daemon runs, minus the wire.  The returned log is the golden
    reference the live daemon must match bit for bit on a clean run.

    Frames are delivered strictly in each host's send order, one at a
    time — so within a batch the core sees churn before samples, and a
    departure lands (and its decision fires) before the next ingest.
    That **ingest → depart → decide** ordering is the same one the live
    daemon's drain path enforces by flushing before a host's second frame
    (see :meth:`~repro.service.session.ServiceCore.handle_drain`); the
    oracle and the daemon must never disagree on it.

    ``monitor_backend`` selects the fused-``MonitorBank`` ingest path
    (``"bank"``, the live default) or the per-``AppMonitor`` reference
    path (``"reference"``) — the parity oracle for the bank: the two
    backends must produce bit-identical logs for any trace.
    """
    from repro.service.agent import LocalTransport, drive_host
    from repro.service.session import ServiceCore
    from repro.service.simhost import SimulatedHost, churn_schedule, host_seed

    if isinstance(host_ids, str):
        host_ids = [host_ids]
    core = ServiceCore(policy=policy, n_ways=n_ways, monitor_backend=monitor_backend)
    for host_id in host_ids:
        host = SimulatedHost(
            workload, seed=host_seed(seed, host_id), n_ways=n_ways
        )
        churn = churn_schedule(host.apps, batches, host_seed(seed, host_id))
        transport = LocalTransport(core, host_id)
        drive_host(host, transport, batches=batches, churn=churn)
    return core.replay
