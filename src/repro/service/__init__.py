"""Online partitioning service: the paper's scheduler as a control plane.

Everything else in this repository is batch-shaped — a study executes a
fixed scenario list and exits.  This package lifts the LFOC/Dunn online
decision layer into a **long-lived multi-tenant service**:

* :mod:`repro.service.daemon` — ``repro.cli serve``: a single-threaded
  selectors event loop (no thread races, deterministic and replayable —
  the same non-threaded design the TCP executor uses) that accepts host
  agents, keeps per-host tenant state and pushes CAT mask updates;
* :mod:`repro.service.agent` — ``repro.cli agent``: the per-host client
  that registers applications, streams monitor samples and applies pushed
  masks, journaling every sent frame so a dropped link (or a daemon
  restart) is healed by replaying the unacknowledged suffix;
* :mod:`repro.service.session` — the transport-free core: per-host
  sessions whose monitors are rows of one shared growable
  :class:`~repro.runtime.monitor.MonitorBank` (each event-loop drain
  ingests every host's samples through a single fused ``observe_batch``
  call), fed through the incremental decision layer (fingerprint-keyed
  :class:`~repro.core.lfoc.LfocDecisionCache`, Dunn's LRU allocation
  cache) so re-deciding is O(changed apps);
* :mod:`repro.service.snapshot` — CRC-guarded, atomically-replaced
  snapshot files of the whole control plane, so ``serve --snapshot`` can
  restore after a crash and reconnecting agents resume mid-epoch;
* :mod:`repro.service.protocol` — the message schema (``host_hello``,
  ``app_arrive``, ``app_depart``, ``monitor_samples``, ``mask_update``,
  ``host_bye``, read-only ``metrics``) spoken over the safe wire codec
  under ``PROTOCOL_VERSION`` negotiation;
* :mod:`repro.service.replay` — the append-only decision log plus the
  offline replay oracle that pins live daemon decisions bit-identical to
  a socket-free run on the same trace;
* :mod:`repro.service.simhost` — a profile-backed simulated host, so the
  whole control loop is testable offline.
"""

from repro.service.agent import HostAgent, run_agent
from repro.service.daemon import PartitionDaemon
from repro.service.protocol import SERVICE_KINDS, ServiceProtocolError
from repro.service.replay import MaskDecision, ReplayLog, offline_replay
from repro.service.session import BankIngest, HostSession, ServiceCore
from repro.service.simhost import SimulatedHost, churn_schedule, host_seed
from repro.service.snapshot import load_snapshot, save_snapshot

__all__ = [
    "HostAgent",
    "run_agent",
    "PartitionDaemon",
    "SERVICE_KINDS",
    "ServiceProtocolError",
    "MaskDecision",
    "ReplayLog",
    "offline_replay",
    "BankIngest",
    "HostSession",
    "ServiceCore",
    "SimulatedHost",
    "churn_schedule",
    "host_seed",
    "load_snapshot",
    "save_snapshot",
]
