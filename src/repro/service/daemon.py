"""The partitioning daemon: a long-lived control plane over TCP.

``repro.cli serve`` runs one :class:`PartitionDaemon`: a single-threaded
``selectors`` event loop — the same non-threaded design as the TCP
executor coordinator, and for the same reasons: no locks, no races, and
every run of the loop over the same frame sequence is deterministic,
which the replay pin depends on.

Each accepted connection must open with a validated ``host_hello``
(version-negotiated; a mismatch is answered with a courtesy ``reject``
before the drop).  After the handshake the link is bound to its host id
and every sequenced frame is fed to the
:class:`~repro.service.session.ServiceCore`, whose reply — always exactly
one ``mask_update`` — goes straight back on the wire.  Failure policy is
inherited from the executor transport: **corruption or protocol
violations cost the link, never the event loop.**  A torn frame waits
for more bytes; a garbled one raises out of
:class:`~repro.runtime.executors.framing.FrameReader` and is charged to
``frame_errors``; the agent reconnects with a fresh boot and
re-registers, and the session's epoch/sequence machinery makes whatever
was in flight idempotent.

With ``supervise=N`` the daemon babysits its own host agents through
:class:`~repro.runtime.executors.supervisor.WorkerSupervisor`
(``subcommand=("agent",)``): each slot gets a stable ``--host-id`` that
survives respawns, and a scripted
:class:`~repro.runtime.executors.chaos.FaultPlan` can be handed to the
first incarnation only (``first_spawn_extra``) so one agent dies
mid-trace and its replacement comes up clean — the chaos drill CI runs.
"""

from __future__ import annotations

import json
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.lfoc import DEFAULT_PARAMS, LfocParams
from repro.errors import SimulationError
from repro.runtime.executors.framing import (
    FrameProtocolError,
    FrameReader,
    enable_keepalive,
    pack_frame,
)
from repro.service import protocol
from repro.service.protocol import SEQUENCED_KINDS, ServiceProtocolError, check_frame
from repro.service.replay import ReplayLog
from repro.service.session import ServiceCore

__all__ = ["PartitionDaemon"]


@dataclass
class _AgentLink:
    """One accepted connection and its parse state."""

    sock: socket.socket
    peer: str
    reader: FrameReader
    #: Host id, set once the handshake completes; None while pending.
    host: Optional[str] = None
    connected_at: float = 0.0
    frames: int = field(default=0)


class PartitionDaemon:
    """Accept host agents, keep tenant state, push CAT mask updates."""

    def __init__(
        self,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        policy: str = "lfoc",
        n_ways: Optional[int] = None,
        params: LfocParams = DEFAULT_PARAMS,
        replay: Optional[ReplayLog] = None,
        supervise: int = 0,
        workload: Optional[str] = None,
        batches: int = 50,
        seed: int = 0,
        agent_chaos: Optional[Mapping[str, Any]] = None,
        quiet: bool = True,
    ) -> None:
        if supervise and not workload:
            raise SimulationError(
                "supervised agents need a workload (serve --supervise N --workload W)"
            )
        self.core = ServiceCore(
            policy=policy, n_ways=n_ways, params=params, replay=replay
        )
        self.supervise = supervise
        self.workload = workload
        self.batches = batches
        self.seed = seed
        self.agent_chaos = dict(agent_chaos) if agent_chaos else None
        self.quiet = quiet
        #: Corrupt/violating frames charged to dropped links (never crashes).
        self.frame_errors = 0
        #: Every dropped link as ``(peer, reason)``, oldest first.
        self.drop_events: List[Tuple[str, str]] = []

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(bind)
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._links: List[_AgentLink] = []
        self._supervisor = None
        self._closed = False

    # -- addresses / observability -------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` agents should ``--connect`` to."""
        return self._listener.getsockname()

    @property
    def replay(self) -> ReplayLog:
        return self.core.replay

    @property
    def host_ids(self) -> List[str]:
        """Stable ids of the supervised agent slots (``host0`` .. ``hostN-1``)."""
        return [f"host{i}" for i in range(self.supervise)]

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "links": len(self._links),
            "frame_errors": self.frame_errors,
            "drops": list(self.drop_events),
            **self.core.summary(),
        }
        if self._supervisor is not None:
            out["supervisor"] = self._supervisor.summary()
        return out

    # -- the event loop -------------------------------------------------------------

    def pump(self, timeout: float = 0.05) -> None:
        """One iteration: accept / read / reply, then supervise."""
        for key, _events in self._selector.select(timeout):
            if key.data is None:
                self._accept_all()
            else:
                self._read_link(key.data)
        self._poll_supervisor()

    def run(
        self,
        *,
        until_byes: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pump until ``until_byes`` hosts completed (or the deadline/forever).

        Completion counts hosts that *ever* sent an orderly ``host_bye`` —
        a supervisor respawning an already-finished agent cannot un-finish
        it.  Returns :meth:`summary`.
        """
        deadline = time.monotonic() + max_seconds if max_seconds else None
        try:
            while True:
                if (
                    until_byes is not None
                    and len(self.core.ever_completed) >= until_byes
                ):
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    if until_byes is not None:
                        raise SimulationError(
                            f"daemon deadline after {max_seconds:.0f}s with only "
                            f"{len(self.core.ever_completed)} of {until_byes} "
                            f"host sessions completed"
                            + (
                                f" (recent drops: {self.drop_events[-3:]})"
                                if self.drop_events
                                else ""
                            )
                        )
                    break
                self.pump()
        finally:
            if self._supervisor is not None:
                self._supervisor.stop()
        return self.summary()

    def _poll_supervisor(self) -> None:
        if self.supervise < 1:
            return
        if self._supervisor is None:
            from repro.runtime.executors.supervisor import WorkerSupervisor

            extra = [
                "--workload",
                str(self.workload),
                "--batches",
                str(self.batches),
                "--seed",
                str(self.seed),
            ]
            first = (
                ("--chaos", json.dumps(self.agent_chaos)) if self.agent_chaos else ()
            )
            self._supervisor = WorkerSupervisor(
                self.address,
                count=self.supervise,
                subcommand=("agent",),
                extra_args=extra,
                slot_extra=[("--host-id", host) for host in self.host_ids],
                first_spawn_extra=first,
                quiet=self.quiet,
            )
        self._supervisor.poll()

    # -- connections -----------------------------------------------------------------

    def _accept_all(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            enable_keepalive(sock)
            link = _AgentLink(
                sock=sock,
                peer=f"{addr[0]}:{addr[1]}",
                reader=FrameReader(),
                connected_at=time.monotonic(),
            )
            self._links.append(link)
            self._selector.register(sock, selectors.EVENT_READ, link)

    def _read_link(self, link: _AgentLink) -> None:
        try:
            data = link.sock.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_link(link, reason="read error")
            return
        if not data:
            # Clean EOF: agent exited, was killed, or is reconnecting.
            self._drop_link(link, reason="connection closed")
            return
        try:
            frames = list(link.reader.feed(data))
        except Exception as exc:
            self.frame_errors += 1
            self._drop_link(link, reason=f"bad frame: {exc}")
            return
        for frame in frames:
            self._handle_frame(link, frame)
            if link not in self._links:
                return  # the handler dropped the link

    def _handle_frame(self, link: _AgentLink, frame: Any) -> None:
        try:
            kind, payload = check_frame(frame)
        except ServiceProtocolError as exc:
            self.frame_errors += 1
            self._drop_link(link, reason=f"invalid frame: {exc}")
            return
        link.frames += 1
        if link.host is None:
            if kind != "host_hello":
                self.frame_errors += 1
                self._drop_link(link, reason=f"{kind!r} before host_hello")
                return
            try:
                reply = self.core.handle_hello(payload)
            except ServiceProtocolError as exc:
                # Courtesy reject so the agent's error names the mismatch.
                try:
                    link.sock.settimeout(5.0)
                    link.sock.sendall(pack_frame(protocol.reject(str(exc))))
                except OSError:
                    pass
                self._drop_link(link, reason=f"handshake rejected: {exc}")
                return
            # One live link per host: a reconnecting agent's fresh hello
            # supersedes the old connection even before its EOF surfaces.
            for other in list(self._links):
                if other is not link and other.host == payload["host"]:
                    self._drop_link(other, reason="superseded by a newer connection")
            link.host = payload["host"]
            self._send(link, pack_frame(reply))
            return
        if kind not in SEQUENCED_KINDS:
            self.frame_errors += 1
            self._drop_link(link, reason=f"unexpected {kind!r} after handshake")
            return
        try:
            reply = self.core.handle(link.host, kind, payload)
        except (ServiceProtocolError, SimulationError) as exc:
            self.frame_errors += 1
            self._drop_link(link, reason=f"protocol violation: {exc}")
            return
        self._send(link, pack_frame(reply))

    def _send(self, link: _AgentLink, blob: bytes) -> bool:
        """Bounded-blocking send; drops the link on failure."""
        try:
            link.sock.settimeout(30.0)
            try:
                link.sock.sendall(blob)
            finally:
                link.sock.settimeout(0.0)
            return True
        except OSError as exc:
            self._drop_link(link, reason=f"send failed: {exc}")
            return False

    def _drop_link(self, link: _AgentLink, *, reason: str) -> None:
        if link not in self._links:
            return
        self._links.remove(link)
        self.drop_events.append((link.peer, reason))
        try:
            self._selector.unregister(link.sock)
        except (KeyError, ValueError):
            pass
        try:
            link.sock.close()
        except OSError:
            pass

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in list(self._links):
            self._drop_link(link, reason="daemon shutting down")
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._supervisor is not None:
            self._supervisor.stop()

    def __enter__(self) -> "PartitionDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
