"""The partitioning daemon: a long-lived control plane over TCP.

``repro.cli serve`` runs one :class:`PartitionDaemon`: a single-threaded
``selectors`` event loop — the same non-threaded design as the TCP
executor coordinator, and for the same reasons: no locks, no races, and
every run of the loop over the same frame sequence is deterministic,
which the replay pin depends on.

Each accepted connection must open with a validated ``host_hello``
(version-negotiated; a mismatch is answered with a courtesy ``reject``
before the drop) — except the read-only ``metrics`` request, which any
connection may send at any time and which never binds a host.  After the
handshake, sequenced frames are *gathered*: one pass of the event loop
reads every ready link, collects the sequenced frames, and feeds them to
:meth:`~repro.service.session.ServiceCore.handle_drain` as **one batch**
— which is what turns per-tick monitor ingestion into a single fused
``MonitorBank.observe_batch`` call across all hosts, the scaling move
that keeps this loop single-threaded and paper-faithful.  Each frame's
reply — always exactly one ``mask_update`` — goes straight back on its
wire.  Failure policy is inherited from the executor transport:
**corruption or protocol violations cost the link, never the event
loop.**  A torn frame waits for more bytes; a garbled one raises out of
:class:`~repro.runtime.executors.framing.FrameReader` and is charged to
``frame_errors``; the agent reconnects — same boot token, so the session
*resumes* and the agent replays its unacknowledged journal suffix — and
the epoch/sequence machinery makes whatever was in flight idempotent.

With ``snapshot=PATH`` the daemon is crash-recoverable: it restores from
``PATH`` at startup when the file exists (re-parking monitors so
reconnecting agents resume mid-epoch), checkpoints periodically
(``snapshot_every_s``) at pump boundaries — where the shared bank is
always flushed — and takes a final snapshot on orderly shutdown.  Files
are CRC-guarded and replaced atomically
(:mod:`repro.service.snapshot`), so a crash mid-write costs nothing but
recency.  A scripted :class:`~repro.runtime.executors.chaos.FaultPlan`
``daemon_kill_decisions`` fault simulates exactly that crash: right
after the N-th replay-log decision lands the daemon drops every link
and dies *without* a final snapshot, and the chaos drill asserts a
restored daemon regenerates a byte-identical log.

With ``supervise=N`` the daemon babysits its own host agents through
:class:`~repro.runtime.executors.supervisor.WorkerSupervisor`
(``subcommand=("agent",)``): each slot gets a stable ``--host-id`` that
survives respawns, and a scripted
:class:`~repro.runtime.executors.chaos.FaultPlan` can be handed to the
first incarnation only (``first_spawn_extra``) so one agent dies
mid-trace and its replacement comes up clean — the chaos drill CI runs.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.lfoc import DEFAULT_PARAMS, LfocParams
from repro.errors import SimulationError
from repro.runtime.executors.chaos import FaultPlan
from repro.runtime.executors.framing import (
    FrameProtocolError,
    FrameReader,
    enable_keepalive,
    pack_frame,
)
from repro.service import protocol
from repro.service.protocol import SEQUENCED_KINDS, ServiceProtocolError, check_frame
from repro.service.replay import ReplayLog
from repro.service.session import ServiceCore
from repro.service.snapshot import load_snapshot, save_snapshot

__all__ = ["PartitionDaemon"]


@dataclass
class _AgentLink:
    """One accepted connection and its parse state."""

    sock: socket.socket
    peer: str
    reader: FrameReader
    #: Host id, set once the handshake completes; None while pending.
    host: Optional[str] = None
    connected_at: float = 0.0
    frames: int = field(default=0)


class PartitionDaemon:
    """Accept host agents, keep tenant state, push CAT mask updates."""

    def __init__(
        self,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        policy: str = "lfoc",
        n_ways: Optional[int] = None,
        params: LfocParams = DEFAULT_PARAMS,
        replay: Optional[ReplayLog] = None,
        supervise: int = 0,
        workload: Optional[str] = None,
        batches: int = 50,
        seed: int = 0,
        agent_chaos: Optional[Mapping[str, Any]] = None,
        quiet: bool = True,
        monitor_backend: str = "bank",
        snapshot: Optional[str] = None,
        snapshot_every_s: float = 5.0,
    ) -> None:
        if supervise and not workload:
            raise SimulationError(
                "supervised agents need a workload (serve --supervise N --workload W)"
            )
        self.core = ServiceCore(
            policy=policy,
            n_ways=n_ways,
            params=params,
            replay=replay,
            monitor_backend=monitor_backend,
        )
        self.snapshot = snapshot
        self.snapshot_every_s = snapshot_every_s
        #: True when startup state came from an existing snapshot file.
        self.restored = False
        self.snapshots_written = 0
        if snapshot and os.path.exists(snapshot):
            restored = load_snapshot(snapshot)
            if restored.policy != policy:
                raise SimulationError(
                    f"snapshot {snapshot} was taken under policy "
                    f"{restored.policy!r}, daemon configured for {policy!r}"
                )
            if n_ways is not None and restored.platform.llc_ways != n_ways:
                raise SimulationError(
                    f"snapshot {snapshot} was taken with {restored.platform.llc_ways} "
                    f"LLC ways, daemon configured for {n_ways}"
                )
            self.core = restored
            self.restored = True
        self.supervise = supervise
        self.workload = workload
        self.batches = batches
        self.seed = seed
        self.agent_chaos = dict(agent_chaos) if agent_chaos else None
        # Daemon-side faults ride in the same chaos dict the agents get;
        # the agent side ignores the daemon keys and vice versa.
        self._kill_decisions = list(
            FaultPlan.from_dict(self.agent_chaos).daemon_kill_decisions
        )
        #: True once a scripted daemon_kill fired: links dropped, listener
        #: closed, **no** final snapshot — a simulated crash.
        self.killed = False
        self.quiet = quiet
        #: Corrupt/violating frames charged to dropped links (never crashes).
        self.frame_errors = 0
        #: Every dropped link as ``(peer, reason)``, oldest first.
        self.drop_events: List[Tuple[str, str]] = []
        self._stop_requested = False
        self._next_snapshot_due: Optional[float] = None

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(bind)
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._links: List[_AgentLink] = []
        self._supervisor = None
        self._closed = False

    # -- addresses / observability -------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` agents should ``--connect`` to."""
        return self._listener.getsockname()

    @property
    def replay(self) -> ReplayLog:
        return self.core.replay

    @property
    def host_ids(self) -> List[str]:
        """Stable ids of the supervised agent slots (``host0`` .. ``hostN-1``)."""
        return [f"host{i}" for i in range(self.supervise)]

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "links": len(self._links),
            "frame_errors": self.frame_errors,
            "drops": list(self.drop_events),
            "restored": self.restored,
            "snapshots_written": self.snapshots_written,
            **self.core.summary(),
        }
        if self._supervisor is not None:
            out["supervisor"] = self._supervisor.summary()
        return out

    def request_stop(self) -> None:
        """Ask :meth:`run` to exit at the next pump boundary (SIGTERM path)."""
        self._stop_requested = True

    # -- the event loop -------------------------------------------------------------

    def pump(self, timeout: float = 0.05) -> None:
        """One iteration: accept, gather every ready link's sequenced frames
        into one core drain (one fused ``observe_batch``), reply, then
        checkpoint / chaos / supervise."""
        drain: List[Tuple[_AgentLink, str, Dict[str, Any]]] = []
        for key, _events in self._selector.select(timeout):
            if key.data is None:
                self._accept_all()
            else:
                self._read_link(key.data, drain)
        if drain:
            self._handle_drain(drain)
        self._maybe_chaos_kill()
        if self.killed:
            return
        self._maybe_snapshot()
        self._poll_supervisor()

    def run(
        self,
        *,
        until_byes: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pump until ``until_byes`` hosts completed (or the deadline/forever).

        Completion counts hosts that *ever* sent an orderly ``host_bye`` —
        a supervisor respawning an already-finished agent cannot un-finish
        it.  Returns :meth:`summary`.
        """
        deadline = time.monotonic() + max_seconds if max_seconds else None
        try:
            while True:
                if self.killed or self._stop_requested:
                    break
                if (
                    until_byes is not None
                    and len(self.core.ever_completed) >= until_byes
                ):
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    if until_byes is not None:
                        raise SimulationError(
                            f"daemon deadline after {max_seconds:.0f}s with only "
                            f"{len(self.core.ever_completed)} of {until_byes} "
                            f"host sessions completed"
                            + (
                                f" (recent drops: {self.drop_events[-3:]})"
                                if self.drop_events
                                else ""
                            )
                        )
                    break
                self.pump()
        finally:
            if self._supervisor is not None:
                self._supervisor.stop()
        return self.summary()

    def _poll_supervisor(self) -> None:
        if self.supervise < 1:
            return
        if self._supervisor is None:
            from repro.runtime.executors.supervisor import WorkerSupervisor

            extra = [
                "--workload",
                str(self.workload),
                "--batches",
                str(self.batches),
                "--seed",
                str(self.seed),
            ]
            first = (
                ("--chaos", json.dumps(self.agent_chaos)) if self.agent_chaos else ()
            )
            self._supervisor = WorkerSupervisor(
                self.address,
                count=self.supervise,
                subcommand=("agent",),
                extra_args=extra,
                slot_extra=[("--host-id", host) for host in self.host_ids],
                first_spawn_extra=first,
                quiet=self.quiet,
            )
        self._supervisor.poll()

    # -- connections -----------------------------------------------------------------

    def _accept_all(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            enable_keepalive(sock)
            link = _AgentLink(
                sock=sock,
                peer=f"{addr[0]}:{addr[1]}",
                reader=FrameReader(),
                connected_at=time.monotonic(),
            )
            self._links.append(link)
            self._selector.register(sock, selectors.EVENT_READ, link)

    def _read_link(
        self, link: _AgentLink, drain: List[Tuple[_AgentLink, str, Dict[str, Any]]]
    ) -> None:
        try:
            data = link.sock.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_link(link, reason="read error")
            return
        if not data:
            # Clean EOF: agent exited, was killed, or is reconnecting.
            self._drop_link(link, reason="connection closed")
            return
        try:
            frames = list(link.reader.feed(data))
        except Exception as exc:
            self.frame_errors += 1
            self._drop_link(link, reason=f"bad frame: {exc}")
            return
        for frame in frames:
            self._collect_frame(link, frame, drain)
            if link not in self._links:
                return  # the handler dropped the link

    def _collect_frame(
        self,
        link: _AgentLink,
        frame: Any,
        drain: List[Tuple[_AgentLink, str, Dict[str, Any]]],
    ) -> None:
        """Handle handshake/metrics frames inline; queue sequenced frames for
        the pump's single core drain."""
        try:
            kind, payload = check_frame(frame)
        except ServiceProtocolError as exc:
            self.frame_errors += 1
            self._drop_link(link, reason=f"invalid frame: {exc}")
            return
        link.frames += 1
        if kind == "metrics":
            # Read-only observability: answered from any connection, bound
            # or not, without touching session state.
            try:
                reply = self.core.handle_metrics(payload)
            except ServiceProtocolError as exc:
                self.frame_errors += 1
                self._drop_link(link, reason=f"bad metrics request: {exc}")
                return
            self._send(link, pack_frame(reply))
            return
        if link.host is None:
            if kind != "host_hello":
                self.frame_errors += 1
                self._drop_link(link, reason=f"{kind!r} before host_hello")
                return
            try:
                reply = self.core.handle_hello(payload)
            except ServiceProtocolError as exc:
                # Courtesy reject so the agent's error names the mismatch.
                try:
                    link.sock.settimeout(5.0)
                    link.sock.sendall(pack_frame(protocol.reject(str(exc))))
                except OSError:
                    pass
                self._drop_link(link, reason=f"handshake rejected: {exc}")
                return
            # One live link per host: a reconnecting agent's fresh hello
            # supersedes the old connection even before its EOF surfaces.
            for other in list(self._links):
                if other is not link and other.host == payload["host"]:
                    self._drop_link(other, reason="superseded by a newer connection")
            link.host = payload["host"]
            self._send(link, pack_frame(reply))
            return
        if kind not in SEQUENCED_KINDS:
            self.frame_errors += 1
            self._drop_link(link, reason=f"unexpected {kind!r} after handshake")
            return
        drain.append((link, kind, payload))

    def _handle_drain(
        self, drain: List[Tuple[_AgentLink, str, Dict[str, Any]]]
    ) -> None:
        """Feed the gathered sequenced frames to the core as one batch.

        A link superseded or dropped while its frame sat in the gather
        buffer is skipped; per-frame protocol violations cost that link
        only — the other hosts' frames in the same drain still answer.
        """
        entries = [
            (link, kind, payload)
            for link, kind, payload in drain
            if link in self._links and link.host is not None
        ]
        if not entries:
            return
        results = self.core.handle_drain(
            [(link.host, kind, payload) for link, kind, payload in entries]
        )
        for (link, kind, _payload), result in zip(entries, results):
            if isinstance(result, Exception):
                self.frame_errors += 1
                self._drop_link(link, reason=f"protocol violation: {result}")
            elif link in self._links:
                self._send(link, pack_frame(result))

    # -- checkpoints and scripted crashes ---------------------------------------------

    def _maybe_snapshot(self) -> None:
        """Periodic checkpoint at a pump boundary (the bank is flushed here)."""
        if not self.snapshot or self.snapshot_every_s <= 0:
            return
        now = time.monotonic()
        if self._next_snapshot_due is None:
            self._next_snapshot_due = now + self.snapshot_every_s
            return
        if now < self._next_snapshot_due:
            return
        save_snapshot(self.core, self.snapshot)
        self.snapshots_written += 1
        self._next_snapshot_due = now + self.snapshot_every_s

    def _maybe_chaos_kill(self) -> None:
        if not self._kill_decisions or self.killed:
            return
        if len(self.core.replay) <= self._kill_decisions[0]:
            return
        # Simulated hard crash: every link dies, the port closes, and —
        # crucially — no parting snapshot is written.  Restore must make do
        # with the latest periodic one (or none at all).
        self._kill_decisions.pop(0)
        self.killed = True
        for link in list(self._links):
            self._drop_link(link, reason="daemon killed by fault plan")
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _send(self, link: _AgentLink, blob: bytes) -> bool:
        """Bounded-blocking send; drops the link on failure."""
        try:
            link.sock.settimeout(30.0)
            try:
                link.sock.sendall(blob)
            finally:
                link.sock.settimeout(0.0)
            return True
        except OSError as exc:
            self._drop_link(link, reason=f"send failed: {exc}")
            return False

    def _drop_link(self, link: _AgentLink, *, reason: str) -> None:
        if link not in self._links:
            return
        self._links.remove(link)
        self.drop_events.append((link.peer, reason))
        try:
            self._selector.unregister(link.sock)
        except (KeyError, ValueError):
            pass
        try:
            link.sock.close()
        except OSError:
            pass

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.snapshot and not self.killed:
            # Orderly shutdown (including SIGTERM) checkpoints first, so a
            # restarted daemon resumes exactly where this one stopped.
            save_snapshot(self.core, self.snapshot)
            self.snapshots_written += 1
        for link in list(self._links):
            self._drop_link(link, reason="daemon shutting down")
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._supervisor is not None:
            self._supervisor.stop()

    def __enter__(self) -> "PartitionDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
