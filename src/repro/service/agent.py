"""Host agent: the per-machine client of the partitioning service.

One agent represents one host.  It registers the host's applications
with the daemon, streams one ``monitor_samples`` batch per monitoring
interval, applies every pushed ``mask_update`` to the host's CAT
controller, and answers the daemon's classification-sweep requests.

The protocol is **lockstep**: each sequenced frame waits for its
``mask_update`` reply before the next is sent.  That sacrifices nothing
at monitoring-interval granularity (the paper samples every 400 ms; a
round trip is microseconds) and buys exact replayability — the offline
oracle can drive the very same loop with no sockets and land on a
bit-identical decision log.

Two transports implement the loop's contract:

* :class:`LocalTransport` — calls the
  :class:`~repro.service.session.ServiceCore` directly; used by
  :func:`~repro.service.replay.offline_replay` to produce golden logs.
* :class:`HostAgent` — the real client: safe-codec frames over TCP,
  validation of every reply, and a reconnect loop.  The boot token is
  **stable for the life of the agent process**: a drop (daemon restart,
  corrupted frame costing the link) makes the *next* step fail, and
  :func:`drive_host` reconnects with the *same* boot — so the daemon
  resumes the session mid-epoch and the agent replays its journal of
  sent frames from the daemon's acknowledged sequence number onward.
  That journal resync is what makes daemon snapshot/restore seamless: a
  daemon restored from an older checkpoint simply acks a smaller
  ``last_seq`` and the agent re-sends the gap, deterministically
  regenerating the decisions the crash threw away.  Only a *new agent
  process* (a supervised respawn after a host crash) carries a new boot,
  which is the signal for the daemon to park monitors, advance the epoch
  and restart sequence numbers.

Chaos hooks (``FaultPlan.agent_*``) live in :class:`HostAgent` only — the
offline oracle stays pristine.  A scripted kill is ``os._exit`` right
before a ``monitor_samples`` send, exactly what a supervised respawn
drill needs; a scripted corruption flips a byte of one outbound frame,
which the daemon detects, charges to the link, and answers by dropping
it — forcing this agent through the reconnect path.
"""

from __future__ import annotations

import itertools
import os
import socket
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.runtime.executors.chaos import FaultPlan
from repro.runtime.executors.framing import (
    enable_keepalive,
    pack_frame,
    recv_frame,
)
from repro.service import protocol
from repro.service.protocol import SEQUENCED_KINDS, ServiceProtocolError, check_frame
from repro.service.session import ServiceCore
from repro.service.simhost import SimulatedHost, churn_schedule, host_seed

__all__ = [
    "TransportDropped",
    "LocalTransport",
    "HostAgent",
    "drive_host",
    "run_agent",
]


class TransportDropped(SimulationError):
    """The daemon link died mid-session; reconnect and re-register."""


class LocalTransport:
    """In-process transport: the offline oracle's direct line to the core."""

    def __init__(self, core: ServiceCore, host_id: str) -> None:
        self.core = core
        self.host_id = host_id
        self._boot = 0

    def hello(self) -> Tuple[int, int]:
        self._boot += 1
        _, payload = protocol.host_hello(self.host_id, self._boot, 0)
        kind, reply = check_frame(self.core.handle_hello(payload))
        return reply["epoch"], reply["last_seq"]

    def exchange(self, frame: Tuple[str, Dict[str, Any]]) -> Tuple[str, Any]:
        kind, payload = check_frame(frame)
        if kind not in SEQUENCED_KINDS:
            raise ServiceProtocolError(f"cannot exchange non-sequenced frame {kind!r}")
        return check_frame(self.core.handle(self.host_id, kind, payload))

    def close(self) -> None:
        pass


class HostAgent:
    """Wire transport: safe-codec frames over TCP with reconnect and chaos."""

    def __init__(
        self,
        address: Tuple[str, int],
        host_id: str,
        *,
        chaos: Optional[FaultPlan] = None,
        connect_attempts: int = 40,
        connect_delay_s: float = 0.25,
        io_timeout_s: float = 30.0,
    ) -> None:
        self.address = address
        self.host_id = host_id
        self.plan = chaos or FaultPlan()
        self.connect_attempts = connect_attempts
        self.connect_delay_s = connect_delay_s
        self.io_timeout_s = io_timeout_s
        self._sock: Optional[socket.socket] = None
        self._connections = 0
        self._frames_sent = 0
        self._batches_sent = 0
        self.reconnects = 0
        # One boot token per agent object, stable across reconnects: the
        # daemon uses it to tell "same host incarnation, resume the
        # session" from "the host restarted, park and re-register".  The
        # low byte distinguishes agents created in one process (tests).
        self.boot = ((os.getpid() & 0x7FFFFF) << 8) | (
            next(self._boot_nonce) & 0xFF
        )

    _boot_nonce = itertools.count(1)

    # -- connection management ----------------------------------------------------

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def hello(self) -> Tuple[int, int]:
        """(Re)connect and handshake; returns the daemon's ``(epoch, last_seq)``.

        Every call presents the *same* boot token, so a reconnect resumes
        the existing session: the returned ``last_seq`` tells the caller
        how far the daemon got, and :func:`drive_host` replays its journal
        from there.
        """
        self._close_socket()
        last_error: Optional[BaseException] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.connect_delay_s)
            try:
                sock = socket.create_connection(self.address, timeout=self.io_timeout_s)
            except OSError as exc:
                last_error = exc
                continue
            enable_keepalive(sock)
            sock.settimeout(self.io_timeout_s)
            self._sock = sock
            self._connections += 1
            if self._connections > 1:
                self.reconnects += 1
            try:
                kind, payload = self._roundtrip(
                    protocol.host_hello(self.host_id, self.boot, os.getpid())
                )
            except TransportDropped as exc:
                last_error = exc
                self._close_socket()
                continue
            if kind == "reject":
                raise SimulationError(
                    f"daemon at {self.address[0]}:{self.address[1]} rejected "
                    f"host {self.host_id!r}: {payload}"
                )
            if kind != "hello_ack":
                raise ServiceProtocolError(
                    f"expected hello_ack, daemon answered {kind!r}"
                )
            protocol.check_protocol(payload, "hello_ack")
            return payload["epoch"], payload["last_seq"]
        raise SimulationError(
            f"agent {self.host_id!r} could not reach the daemon at "
            f"{self.address[0]}:{self.address[1]} after {self.connect_attempts} "
            f"attempts: {last_error}"
        )

    # -- the lockstep exchange ----------------------------------------------------

    def exchange(self, frame: Tuple[str, Dict[str, Any]]) -> Tuple[str, Any]:
        if self._sock is None:
            raise TransportDropped("not connected")
        if frame[0] == "monitor_samples":
            batch = self._batches_sent
            self._batches_sent += 1
            if batch in self.plan.agent_delay_batches:
                time.sleep(self.plan.delay_s)
            if batch in self.plan.agent_kill_batches:
                # Die abruptly, mid-protocol, without unwinding — the exit
                # code marks a scripted chaos kill for the supervisor logs.
                os._exit(17)
        return self._roundtrip(frame)

    def _roundtrip(self, frame: Tuple[str, Any]) -> Tuple[str, Any]:
        data = pack_frame(frame)
        index = self._frames_sent
        self._frames_sent += 1
        if index in self.plan.agent_corrupt_frames:
            data = self._corrupt(data)
        assert self._sock is not None
        try:
            self._sock.sendall(data)
            reply = recv_frame(self._sock)
        except (OSError, SimulationError) as exc:
            # Connection loss, a reset, a torn or garbled reply: the link is
            # gone either way.  The daemon is trusted, so a malformed reply
            # means the stream desynchronised, not that the peer is hostile —
            # reconnecting restores a clean boundary.
            self._close_socket()
            raise TransportDropped(f"daemon link lost: {exc}") from exc
        if reply is None:
            self._close_socket()
            raise TransportDropped("daemon closed the connection")
        try:
            return check_frame(reply)
        except ServiceProtocolError as exc:
            self._close_socket()
            raise TransportDropped(f"daemon sent an invalid frame: {exc}") from exc

    @staticmethod
    def _corrupt(data: bytes) -> bytes:
        """Flip one byte inside the frame payload (deterministic position).

        Offset 9 lands in the safe envelope's JSON header, which the
        daemon's decoder is guaranteed to refuse — the scripted fault always
        costs this link, never silently passes.
        """
        blob = bytearray(data)
        pos = 9 if len(blob) > 9 else len(blob) - 1
        blob[pos] ^= 0xFF
        return bytes(blob)

    def close(self) -> None:
        self._close_socket()


# -- the shared control loop ---------------------------------------------------------


def drive_host(
    host: SimulatedHost,
    transport: Union[LocalTransport, HostAgent],
    *,
    batches: int,
    churn: Sequence[Tuple[int, str, str]] = (),
) -> None:
    """Run one host's full session against a transport, to orderly ``host_bye``.

    The same loop serves the offline oracle (:class:`LocalTransport`) and
    the live agent (:class:`HostAgent`); the transport is the *only*
    difference between a golden replay and a real run, which is what makes
    the determinism pin meaningful.

    Every sent frame is kept in a **journal** (``journal[i]`` carries seq
    ``i + 1``).  On :class:`TransportDropped` the loop reconnects — same
    boot token — and the daemon's ``hello_ack`` says how far it got
    (``last_seq``): the journal suffix from there is replayed verbatim.
    A frame the daemon had already processed is answered from its
    idempotent reply cache; a frame the daemon lost (a crash restored
    from an older snapshot — possibly from *no* snapshot at all) is
    re-processed and deterministically regenerates the same reply.
    Replies the agent had already applied are re-applied masks-only:
    their classification-sweep requests were consumed into later
    journaled frames, so honouring them twice would fork the trace.
    """
    events: Dict[int, List[Tuple[str, str]]] = {}
    for batch_index, op, app in churn:
        events.setdefault(batch_index, []).append((op, app))
    live: List[str] = list(host.apps)
    pending: List[Dict[str, Any]] = []
    journal: List[Tuple[str, Dict[str, Any]]] = []
    applied = 0  # highest seq whose reply has been fully applied

    def apply_reply(reply: Tuple[str, Any], *, masks_only: bool = False) -> None:
        kind, payload = reply
        if kind != "mask_update":
            raise ServiceProtocolError(
                f"expected mask_update in lockstep reply, got {kind!r}"
            )
        if payload["masks"] is not None:
            host.apply_masks(payload["masks"])
        if masks_only:
            return
        for app in payload["sample"]:
            pending.append(host.classify(app))

    def resync() -> None:
        nonlocal applied
        while True:
            try:
                _epoch, acked = transport.hello()
                # Everything at or below both watermarks is settled on both
                # sides; everything above either is replayed in order.
                for frame in journal[min(acked, applied):]:
                    seq = frame[1]["seq"]
                    reply = transport.exchange(frame)
                    apply_reply(reply, masks_only=seq <= applied)
                    applied = max(applied, seq)
                return
            except TransportDropped:
                continue

    def step(build: Callable[[int], Tuple[str, Dict[str, Any]]]) -> None:
        nonlocal applied
        frame = build(len(journal) + 1)
        journal.append(frame)
        while True:
            try:
                reply = transport.exchange(frame)
            except TransportDropped:
                resync()
                if applied >= frame[1]["seq"]:
                    return  # the resync replay covered this frame
                continue
            applied = frame[1]["seq"]
            apply_reply(reply)
            return

    while True:
        try:
            transport.hello()
            break
        except TransportDropped:
            continue
    for app in live:
        step(lambda s, a=app: protocol.app_arrive(s, a))
    for batch in range(batches):
        for op, app in events.get(batch, ()):
            if op == "depart":
                if app in live:
                    live.remove(app)
                step(lambda s, a=app: protocol.app_depart(s, a))
            else:
                if app not in live:
                    live.append(app)
                step(lambda s, a=app: protocol.app_arrive(s, a))
        samples = [host.sample(app, batch) for app in live]
        classify = list(pending)
        pending.clear()
        step(lambda s: protocol.monitor_samples(s, samples, classify))
    # The bye reply never carries masks, but must still arrive (lockstep).
    step(lambda s: protocol.host_bye(s))
    transport.close()


# -- the CLI entry point --------------------------------------------------------------


def run_agent(
    address: Tuple[str, int],
    *,
    host_id: str,
    workload: str,
    batches: int,
    seed: int = 0,
    n_ways: Optional[int] = None,
    chaos: Optional[Mapping[str, Any]] = None,
    connect_attempts: int = 40,
    connect_delay_s: float = 0.25,
    quiet: bool = True,
) -> int:
    """``repro.cli agent``: drive one simulated host against a live daemon.

    The host seed, churn schedule and sample jitter derive from
    ``(seed, host_id)`` exactly as in
    :func:`~repro.service.replay.offline_replay`, so a clean live run is
    comparable frame for frame with the offline oracle.
    """
    plan = FaultPlan.from_dict(chaos)
    host = SimulatedHost(workload, seed=host_seed(seed, host_id), n_ways=n_ways)
    churn = churn_schedule(host.apps, batches, host_seed(seed, host_id))
    agent = HostAgent(
        address,
        host_id,
        chaos=plan,
        connect_attempts=connect_attempts,
        connect_delay_s=connect_delay_s,
    )
    drive_host(host, agent, batches=batches, churn=churn)
    if not quiet:
        print(
            f"agent {host_id}: {batches} batches, {len(host.apps)} apps, "
            f"{host.masks_applied} mask programmings, "
            f"{agent.reconnects} reconnects"
        )
    return 0
