"""CRC-guarded snapshot files for the partitioning daemon.

A snapshot is one JSON document wrapping
:meth:`~repro.service.session.ServiceCore.to_state`:

.. code-block:: json

    {"format": "repro-service-snapshot", "version": 1,
     "crc32": 123456789, "state": { ... }}

The checksum covers the canonical serialization of ``state``
(``json.dumps(..., sort_keys=True)``), and loading re-serializes the
parsed state to verify it — floats round-trip exactly through JSON
(``repr`` is shortest-round-trip), so the canonical bytes are
reproducible and a flipped bit anywhere in the state is caught before a
daemon resumes from it.  Writes go through a temp file in the target
directory followed by :func:`os.replace`, so a daemon killed mid-write
leaves the previous snapshot intact rather than a torn file — "restore
from the latest snapshot" always means the latest *complete* one.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict

from repro.errors import SimulationError
from repro.service.session import ServiceCore

__all__ = ["SNAPSHOT_FORMAT", "load_snapshot", "save_snapshot"]

SNAPSHOT_FORMAT = "repro-service-snapshot"
_ENVELOPE_VERSION = 1


def _canonical(state: Dict[str, Any]) -> bytes:
    return json.dumps(state, sort_keys=True, separators=(",", ":")).encode("utf-8")


def save_snapshot(core: ServiceCore, path: str) -> None:
    """Atomically persist ``core``'s full control-plane state to ``path``."""
    state = core.to_state()
    body = _canonical(state)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": _ENVELOPE_VERSION,
        "crc32": zlib.crc32(body) & 0xFFFFFFFF,
        "state": state,
    }
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> ServiceCore:
    """Rebuild a :class:`ServiceCore` from a snapshot file, verifying the CRC."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except ValueError as exc:
        raise SimulationError(f"corrupt service snapshot {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        raise SimulationError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    if envelope.get("version") != _ENVELOPE_VERSION:
        raise SimulationError(
            f"unsupported snapshot envelope version {envelope.get('version')!r} "
            f"in {path} (this build speaks {_ENVELOPE_VERSION})"
        )
    state = envelope.get("state")
    if not isinstance(state, dict):
        raise SimulationError(f"snapshot {path} has no state object")
    expected = envelope.get("crc32")
    actual = zlib.crc32(_canonical(state)) & 0xFFFFFFFF
    if expected != actual:
        raise SimulationError(
            f"snapshot {path} failed its CRC check "
            f"(stored {expected!r}, computed {actual})"
        )
    return ServiceCore.from_state(state)
