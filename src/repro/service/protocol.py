"""Message schema of the partitioning service.

The service speaks the executor's safe wire codec
(:mod:`repro.runtime.executors.framing`) and adds its message kinds on
top of it.  Frames are ``(kind, payload)`` tuples with a string kind and
a plain-dict payload; this module owns the builders and — more
importantly — the validators.  Everything arriving off the wire goes
through :func:`check_frame` before any state is touched, so a corrupt or
adversarial frame surfaces as a :class:`ServiceProtocolError` (and a
dropped link), never as misbehaving session state.  The corrupt-every-
byte fuzz test pins exactly that.

Agent → daemon:

* ``host_hello`` — handshake: protocol version, host id, and a *boot*
  token that changes with every (re)connection.  A new boot means the
  agent re-registers its full state from scratch; the daemon parks the
  host's monitors and bumps the session epoch, so classifications
  survive while sequence numbers restart.
* ``app_arrive`` / ``app_depart`` — tenant churn; sequenced.
* ``monitor_samples`` — one batch of per-app counter samples, plus the
  classification outcomes of any sweeps the daemon requested in its
  previous reply; sequenced.
* ``host_bye`` — orderly end of the session; sequenced.

Daemon → agent:

* ``hello_ack`` — accepts the handshake: the new session epoch and the
  last sequence number the daemon has processed for this boot.
* ``mask_update`` — the reply to *every* sequenced frame (the service is
  lockstep per host).  ``masks`` is only populated when the decision
  actually changed; ``sample`` lists applications the daemon wants the
  host to run a classification sweep on.
* ``reject`` — handshake refusal (version mismatch), mirroring the
  worker protocol.

Read-only observability (either direction of a connection, no
handshake required — a metrics scraper is not a host):

* ``metrics`` — request the daemon's live counters; carries only the
  protocol version.
* ``metrics_reply`` — per-host and per-class live counters plus service
  totals.  Purely observational: serving one never touches session
  state, so the reporting layer can poll without perturbing replay
  determinism.

Sequencing makes duplicated or stale frames idempotent: every stateful
agent frame carries ``seq``; the daemon processes ``last_seq + 1``,
answers a duplicate (``seq <= last_seq``) by re-sending its cached reply,
and treats a gap as a protocol error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.classification import AppClass
from repro.errors import SimulationError
from repro.runtime.executors.framing import PROTOCOL_VERSION

__all__ = [
    "SERVICE_KINDS",
    "SEQUENCED_KINDS",
    "ServiceProtocolError",
    "host_hello",
    "hello_ack",
    "app_arrive",
    "app_depart",
    "monitor_samples",
    "mask_update",
    "host_bye",
    "reject",
    "metrics",
    "metrics_reply",
    "check_frame",
    "check_protocol",
]


class ServiceProtocolError(SimulationError):
    """A frame violates the service schema (malformed, wrong kind, bad types)."""


#: Every message kind the service speaks, in both directions.
SERVICE_KINDS = (
    "host_hello",
    "hello_ack",
    "app_arrive",
    "app_depart",
    "monitor_samples",
    "mask_update",
    "host_bye",
    "reject",
    "metrics",
    "metrics_reply",
)

#: Agent → daemon kinds that carry a per-host sequence number.
SEQUENCED_KINDS = ("app_arrive", "app_depart", "monitor_samples", "host_bye")

_CLASS_VALUES = {cls.value for cls in AppClass}


# -- builders ---------------------------------------------------------------------


def host_hello(host: str, boot: int, pid: int) -> Tuple[str, Dict[str, Any]]:
    return (
        "host_hello",
        {"protocol": PROTOCOL_VERSION, "host": host, "boot": int(boot), "pid": int(pid)},
    )


def hello_ack(epoch: int, last_seq: int) -> Tuple[str, Dict[str, Any]]:
    return (
        "hello_ack",
        {"protocol": PROTOCOL_VERSION, "epoch": int(epoch), "last_seq": int(last_seq)},
    )


def app_arrive(seq: int, app: str) -> Tuple[str, Dict[str, Any]]:
    return ("app_arrive", {"seq": int(seq), "app": app})


def app_depart(seq: int, app: str) -> Tuple[str, Dict[str, Any]]:
    return ("app_depart", {"seq": int(seq), "app": app})


def monitor_samples(
    seq: int,
    samples: Sequence[Mapping[str, Any]],
    classify: Sequence[Mapping[str, Any]] = (),
) -> Tuple[str, Dict[str, Any]]:
    return (
        "monitor_samples",
        {"seq": int(seq), "samples": list(samples), "classify": list(classify)},
    )


def mask_update(
    epoch: int,
    ack: int,
    masks: Optional[Mapping[str, int]] = None,
    sample: Sequence[str] = (),
    decision: Optional[int] = None,
) -> Tuple[str, Dict[str, Any]]:
    return (
        "mask_update",
        {
            "epoch": int(epoch),
            "ack": int(ack),
            "masks": dict(masks) if masks is not None else None,
            "sample": list(sample),
            "decision": int(decision) if decision is not None else None,
        },
    )


def host_bye(seq: int) -> Tuple[str, Dict[str, Any]]:
    return ("host_bye", {"seq": int(seq)})


def reject(reason: str) -> Tuple[str, str]:
    return ("reject", reason)


def metrics() -> Tuple[str, Dict[str, Any]]:
    return ("metrics", {"protocol": PROTOCOL_VERSION})


def metrics_reply(
    hosts: Mapping[str, Mapping[str, Any]],
    classes: Mapping[str, int],
    totals: Mapping[str, Any],
) -> Tuple[str, Dict[str, Any]]:
    return (
        "metrics_reply",
        {
            "protocol": PROTOCOL_VERSION,
            "hosts": {h: dict(v) for h, v in hosts.items()},
            "classes": dict(classes),
            "totals": dict(totals),
        },
    )


# -- validation -------------------------------------------------------------------


def _require_str(payload: Mapping[str, Any], key: str, where: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ServiceProtocolError(f"{where}.{key} must be a non-empty string")
    return value


def _require_int(
    payload: Mapping[str, Any], key: str, where: str, minimum: int = 0
) -> int:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise ServiceProtocolError(f"{where}.{key} must be an integer >= {minimum}")
    return value


def _check_keys(payload: Any, keys: Sequence[str], where: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ServiceProtocolError(f"{where} payload must be a mapping")
    extra = sorted(set(payload) - set(keys))
    missing = sorted(set(keys) - set(payload))
    if extra or missing:
        raise ServiceProtocolError(
            f"{where} payload has wrong keys "
            f"(missing {missing or '[]'}, unexpected {extra or '[]'})"
        )
    return payload


def _check_sample(entry: Any, where: str) -> Dict[str, Any]:
    entry = _check_keys(
        entry, ("app", "llcmpkc", "stall_fraction", "effective_ways"), where
    )
    _require_str(entry, "app", where)
    for key in ("llcmpkc", "stall_fraction", "effective_ways"):
        value = entry.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceProtocolError(f"{where}.{key} must be a number")
        if value != value or value in (float("inf"), float("-inf")) or value < 0:
            raise ServiceProtocolError(f"{where}.{key} must be finite and >= 0")
    return entry


def _check_classify(entry: Any, where: str) -> Dict[str, Any]:
    entry = _check_keys(
        entry, ("app", "class", "slowdown_table", "critical_size"), where
    )
    _require_str(entry, "app", where)
    if entry["class"] not in _CLASS_VALUES:
        raise ServiceProtocolError(
            f"{where}.class must be one of {sorted(_CLASS_VALUES)}"
        )
    table = entry["slowdown_table"]
    if table is not None:
        if not isinstance(table, list) or not table:
            raise ServiceProtocolError(
                f"{where}.slowdown_table must be None or a non-empty list"
            )
        for value in table:
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value != value
                or value < 0
            ):
                raise ServiceProtocolError(
                    f"{where}.slowdown_table entries must be numbers >= 0"
                )
    critical = entry["critical_size"]
    if critical is not None and (
        isinstance(critical, bool) or not isinstance(critical, int) or critical < 1
    ):
        raise ServiceProtocolError(
            f"{where}.critical_size must be None or an integer >= 1"
        )
    return entry


def check_frame(frame: Any) -> Tuple[str, Any]:
    """Validate one decoded service frame; returns ``(kind, payload)``.

    Raises :class:`ServiceProtocolError` on any structural violation.  Only
    frames that passed this check may touch session state.
    """
    if (
        not isinstance(frame, tuple)
        or len(frame) != 2
        or not isinstance(frame[0], str)
    ):
        raise ServiceProtocolError(
            f"service frames are (kind, payload) tuples, got {type(frame).__name__}"
        )
    kind, payload = frame
    if kind not in SERVICE_KINDS:
        raise ServiceProtocolError(f"unknown service message kind {kind!r}")
    if kind == "reject":
        if not isinstance(payload, str):
            raise ServiceProtocolError("reject payload must be a reason string")
        return kind, payload
    if kind == "host_hello":
        payload = _check_keys(payload, ("protocol", "host", "boot", "pid"), kind)
        _require_int(payload, "protocol", kind, minimum=1)
        _require_str(payload, "host", kind)
        _require_int(payload, "boot", kind)
        _require_int(payload, "pid", kind)
        return kind, payload
    if kind == "hello_ack":
        payload = _check_keys(payload, ("protocol", "epoch", "last_seq"), kind)
        _require_int(payload, "protocol", kind, minimum=1)
        _require_int(payload, "epoch", kind, minimum=1)
        _require_int(payload, "last_seq", kind)
        return kind, payload
    if kind in ("app_arrive", "app_depart"):
        payload = _check_keys(payload, ("seq", "app"), kind)
        _require_int(payload, "seq", kind, minimum=1)
        _require_str(payload, "app", kind)
        return kind, payload
    if kind == "monitor_samples":
        payload = _check_keys(payload, ("seq", "samples", "classify"), kind)
        _require_int(payload, "seq", kind, minimum=1)
        samples = payload["samples"]
        classify = payload["classify"]
        if not isinstance(samples, list) or not isinstance(classify, list):
            raise ServiceProtocolError(
                "monitor_samples.samples/.classify must be lists"
            )
        seen_apps = set()
        for entry in samples:
            entry = _check_sample(entry, "monitor_samples.samples[]")
            # One sample per app per batch: a duplicate row would make the
            # fused bank ingest diverge from the sequential reference (the
            # batched partial-sum add touches each row exactly once).
            if entry["app"] in seen_apps:
                raise ServiceProtocolError(
                    f"monitor_samples.samples[] repeats app {entry['app']!r} "
                    "within one batch"
                )
            seen_apps.add(entry["app"])
        for entry in classify:
            _check_classify(entry, "monitor_samples.classify[]")
        return kind, payload
    if kind == "host_bye":
        payload = _check_keys(payload, ("seq",), kind)
        _require_int(payload, "seq", kind, minimum=1)
        return kind, payload
    if kind == "metrics":
        payload = _check_keys(payload, ("protocol",), kind)
        _require_int(payload, "protocol", kind, minimum=1)
        return kind, payload
    if kind == "metrics_reply":
        payload = _check_keys(payload, ("protocol", "hosts", "classes", "totals"), kind)
        _require_int(payload, "protocol", kind, minimum=1)
        for key in ("hosts", "classes", "totals"):
            if not isinstance(payload[key], dict):
                raise ServiceProtocolError(f"metrics_reply.{key} must be a mapping")
        for host, counters in payload["hosts"].items():
            if not isinstance(host, str) or not host or not isinstance(counters, dict):
                raise ServiceProtocolError(
                    "metrics_reply.hosts must map host ids to counter mappings"
                )
        for cls, count in payload["classes"].items():
            if cls not in _CLASS_VALUES or not isinstance(count, int):
                raise ServiceProtocolError(
                    "metrics_reply.classes must map app classes to integer counts"
                )
        return kind, payload
    # mask_update
    payload = _check_keys(
        payload, ("epoch", "ack", "masks", "sample", "decision"), kind
    )
    _require_int(payload, "epoch", kind, minimum=1)
    _require_int(payload, "ack", kind)
    masks = payload["masks"]
    if masks is not None:
        if not isinstance(masks, dict) or not masks:
            raise ServiceProtocolError(
                "mask_update.masks must be None or a non-empty mapping"
            )
        for app, mask in masks.items():
            if not isinstance(app, str) or not app:
                raise ServiceProtocolError("mask_update.masks keys must be app names")
            if isinstance(mask, bool) or not isinstance(mask, int) or mask <= 0:
                raise ServiceProtocolError(
                    "mask_update.masks values must be positive capacity bitmasks"
                )
    sample = payload["sample"]
    if not isinstance(sample, list) or any(
        not isinstance(app, str) or not app for app in sample
    ):
        raise ServiceProtocolError("mask_update.sample must be a list of app names")
    decision = payload["decision"]
    if decision is not None and (
        isinstance(decision, bool) or not isinstance(decision, int) or decision < 0
    ):
        raise ServiceProtocolError(
            "mask_update.decision must be None or an integer >= 0"
        )
    return kind, payload


def check_protocol(payload: Mapping[str, Any], where: str) -> None:
    """Refuse a handshake whose peer speaks a different protocol version."""
    if payload.get("protocol") != PROTOCOL_VERSION:
        raise ServiceProtocolError(
            f"{where}: protocol version {payload.get('protocol')!r} does not "
            f"match this peer's {PROTOCOL_VERSION}"
        )
