"""Profile-backed simulated host for the partitioning service.

The live deployment target of the service is a machine with CAT hardware
and perf counters; neither exists here, so the agent drives a
:class:`SimulatedHost` instead: a software CAT controller
(:class:`~repro.hardware.cat.CatController`) plus the offline profiles of
one catalogue workload.  Samples are read at whatever way count the
currently programmed masks give each application, with a small
deterministic jitter so the stream looks like measurements rather than a
constant — making the whole control loop (monitors, sampling-mode
requests, Algorithm 1, mask pushes) testable end to end with no hardware
and no randomness that could break replay.

Determinism is load-bearing: every quantity is a pure function of the
host seed, so two runs over the same trace — live over sockets and
offline in-process — produce bit-identical samples and therefore
bit-identical decision logs.  That is the service's determinism pin.
Jitter is derived per ``(app, tick)`` by hashing, not by drawing from a
shared RNG, so it is independent of sampling order and of how often a
connection was dropped and replayed.

:func:`churn_schedule` scripts tenant churn (an application departing
mid-run and re-arriving later) from the same seed, exercising the
monitor park/restart path on the daemon side.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.classification import (
    AppClass,
    ClassificationThresholds,
    classify_profile,
)
from repro.errors import SimulationError
from repro.hardware.cat import CatController
from repro.hardware.platform import PlatformSpec
from repro.workloads.generator import Workload
from repro.workloads.suites import workload_by_name

__all__ = ["SimulatedHost", "churn_schedule", "host_seed"]


def host_seed(seed: int, host_id: str) -> int:
    """Per-host seed derived from the run seed and the host's stable id.

    Pure and stable across processes (crc32, not ``hash()``), so the agent
    subprocess and the offline replay oracle derive the same stream.
    """
    return (int(seed) * 0x9E3779B1 + zlib.crc32(host_id.encode("utf-8"))) & 0xFFFFFFFF


def _unit(seed: int, app: str, tick: int, channel: str) -> float:
    """Deterministic uniform in [0, 1) as a pure function of its arguments."""
    token = f"{seed}:{app}:{tick}:{channel}".encode("utf-8")
    return zlib.crc32(token) / 4294967296.0


def churn_schedule(
    apps: List[str], batches: int, seed: int
) -> List[Tuple[int, str, str]]:
    """Scripted tenant churn: ``(batch_index, "depart"|"arrive", app)`` events.

    One seeded application departs a third of the way through the trace and
    re-arrives two thirds in — long enough apart that its monitor is parked
    across real decisions, which is the restart path the service must get
    right.  Traces too short (or single-tenant hosts) get no churn.
    """
    if batches < 6 or len(apps) < 2:
        return []
    victim = apps[zlib.crc32(f"churn:{seed}".encode("utf-8")) % len(apps)]
    depart_at = batches // 3
    arrive_at = (2 * batches) // 3
    return [(depart_at, "depart", victim), (arrive_at, "arrive", victim)]


class SimulatedHost:
    """One multi-tenant host: offline profiles behind a software CAT model."""

    def __init__(
        self,
        workload: Union[str, Workload],
        *,
        seed: int = 0,
        n_ways: Optional[int] = None,
        platform: Optional[PlatformSpec] = None,
        jitter: float = 0.02,
        thresholds: Optional[ClassificationThresholds] = None,
    ) -> None:
        if isinstance(workload, str):
            workload = workload_by_name(workload)
        self.workload = workload
        platform = platform or PlatformSpec()
        if n_ways is not None:
            platform = platform.with_ways(n_ways)
        self.platform = platform
        self.seed = int(seed)
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        self.jitter = float(jitter)
        self.thresholds = thresholds or ClassificationThresholds()
        self.profiles = workload.profiles(platform.llc_ways)
        #: Instance names in workload order; the agent registers these.
        self.apps: List[str] = list(self.profiles)
        self.cat = CatController(platform)
        self.masks_applied = 0

    # -- measurement ------------------------------------------------------------------

    def effective_ways(self, app: str) -> int:
        return self.cat.effective_ways(app)

    def sample(self, app: str, tick: int) -> Dict[str, Any]:
        """One monitoring-interval sample for ``app`` under the current masks."""
        profile = self.profiles.get(app)
        if profile is None:
            raise SimulationError(
                f"host has no application {app!r}; known: {', '.join(self.apps)}"
            )
        ways = self.cat.effective_ways(app)
        wiggle = lambda channel: 1.0 + self.jitter * (
            2.0 * _unit(self.seed, app, tick, channel) - 1.0
        )
        llcmpkc = max(0.0, profile.llcmpkc_at(ways) * wiggle("mpkc"))
        stall = profile.stall_fraction_at(ways, self.platform) * wiggle("stall")
        return {
            "app": app,
            "llcmpkc": llcmpkc,
            "stall_fraction": min(0.95, max(0.0, stall)),
            "effective_ways": ways,
        }

    # -- classification sweeps ----------------------------------------------------------

    def classify(self, app: str) -> Dict[str, Any]:
        """Outcome of a sampling-mode sweep, straight from the offline profile.

        A real host would walk the application through shrinking masks and
        measure; the profile *is* those measurements, so the sweep collapses
        to a pure function — which keeps live and offline replays identical.
        Only sensitive applications ship a slowdown table and critical size,
        mirroring what LFOC's sampling mode retains (Section 4.2).
        """
        profile = self.profiles.get(app)
        if profile is None:
            raise SimulationError(f"cannot classify unknown application {app!r}")
        app_class = classify_profile(profile, self.thresholds)
        table: Optional[List[float]] = None
        critical: Optional[int] = None
        if app_class is AppClass.SENSITIVE:
            table = [float(x) for x in profile.slowdown_table()]
            critical = self.platform.llc_ways
            for w, slowdown in enumerate(table, start=1):
                if slowdown <= self.thresholds.critical_slowdown:
                    critical = w
                    break
        return {
            "app": app,
            "class": app_class.value,
            "slowdown_table": table,
            "critical_size": critical,
        }

    # -- actuation ---------------------------------------------------------------------

    def apply_masks(self, masks: Mapping[str, int]) -> None:
        """Program a pushed allocation; unlisted tasks fall back to CLOS 0."""
        self.cat.apply_allocation(dict(masks))
        self.masks_applied += 1
