"""Phased application profiles.

Section 4.2 / Fig. 4 of the paper: applications are not stationary.
``fotonik3d`` starts with a short light-sharing phase before settling into a
long streaming phase; ``xz``, ``astar``, ``mcf`` and ``xalancbmk`` alternate
between memory-intensive and compute phases.  The dynamic study (Fig. 7) is
precisely about how well the online policies track such phase changes.

A :class:`PhasedProfile` is an ordered sequence of :class:`PhaseSegment`
objects, each pairing an instruction count with a (single-phase)
:class:`~repro.apps.profile.AppProfile`.  The sequence repeats cyclically when
the application is restarted, matching the paper's run-until-longest-finishes
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.apps.curves import CurveSet
from repro.apps.profile import AppProfile
from repro.errors import ProfileError

__all__ = ["PhaseSegment", "PhasedProfile"]


@dataclass(frozen=True)
class PhaseSegment:
    """One program phase: ``instructions`` retired while behaving like ``profile``."""

    instructions: float
    profile: AppProfile

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ProfileError(
                f"phase of {self.profile.name!r} must retire a positive number "
                f"of instructions, got {self.instructions}"
            )


@dataclass(frozen=True)
class PhasedProfile:
    """A cyclic sequence of program phases for one application."""

    name: str
    segments: Tuple[PhaseSegment, ...]
    suite: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.segments:
            raise ProfileError(f"phased profile {self.name!r} needs at least one segment")
        object.__setattr__(self, "segments", tuple(self.segments))
        n_ways = {seg.profile.n_ways for seg in self.segments}
        if len(n_ways) != 1:
            raise ProfileError(
                f"all phases of {self.name!r} must cover the same way count, got {n_ways}"
            )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def single(cls, profile: AppProfile, instructions: float = 1e12) -> "PhasedProfile":
        """Wrap a stationary profile as a one-segment phased profile."""
        return cls(
            name=profile.name,
            segments=(PhaseSegment(instructions=instructions, profile=profile),),
            suite=profile.suite,
        )

    # -- geometry --------------------------------------------------------------

    @property
    def n_ways(self) -> int:
        return self.segments[0].profile.n_ways

    @property
    def n_phases(self) -> int:
        return len(self.segments)

    @property
    def is_phased(self) -> bool:
        """True when the application exhibits more than one behavioural phase."""
        return len(self.segments) > 1

    @property
    def cycle_instructions(self) -> float:
        """Instructions retired over one full pass through the phase sequence."""
        return float(sum(seg.instructions for seg in self.segments))

    # -- phase lookup -----------------------------------------------------------

    def phase_index_at(self, instructions_retired: float) -> int:
        """Index of the phase active after ``instructions_retired`` instructions.

        The phase sequence repeats cyclically (the benchmark is restarted over
        and over in the paper's methodology).
        """
        if instructions_retired < 0:
            raise ProfileError("instructions_retired must be non-negative")
        position = instructions_retired % self.cycle_instructions
        for index, segment in enumerate(self.segments):
            if position < segment.instructions:
                return index
            position -= segment.instructions
        return len(self.segments) - 1  # pragma: no cover - numeric edge

    def profile_at(self, instructions_retired: float) -> AppProfile:
        """Profile of the phase active after ``instructions_retired`` instructions."""
        return self.segments[self.phase_index_at(instructions_retired)].profile

    def instructions_until_phase_change(self, instructions_retired: float) -> float:
        """Instructions left before the next phase boundary (cyclic)."""
        position = instructions_retired % self.cycle_instructions
        for segment in self.segments:
            if position < segment.instructions:
                return segment.instructions - position
            position -= segment.instructions
        return self.segments[0].instructions  # pragma: no cover - numeric edge

    def phase_boundaries(self) -> List[float]:
        """Cumulative instruction counts of the phase boundaries of one cycle."""
        boundaries: List[float] = []
        total = 0.0
        for segment in self.segments:
            total += segment.instructions
            boundaries.append(total)
        return boundaries

    # -- aggregation -------------------------------------------------------------

    def dominant_profile(self) -> AppProfile:
        """Profile of the phase covering the most instructions (used when a
        single static profile is required, e.g. Table 1 classification)."""
        longest = max(self.segments, key=lambda seg: seg.instructions)
        return longest.profile

    def average_profile(self) -> AppProfile:
        """Instruction-weighted average profile.

        This is what an offline profiling pass over the whole execution (the
        paper's 1500-billion-instruction collection) would observe; the static
        study of Section 5.1 uses it.
        """
        weights = np.array([seg.instructions for seg in self.segments], dtype=float)
        weights /= weights.sum()
        ipc = np.zeros(self.n_ways, dtype=float)
        mpkc = np.zeros(self.n_ways, dtype=float)
        # Average the *time* per instruction (CPI), not the IPC: phases execute a
        # fixed number of instructions, so the average IPC over the execution is
        # the harmonic, instruction-weighted mean.
        cpi = np.zeros(self.n_ways, dtype=float)
        for weight, segment in zip(weights, self.segments):
            cpi += weight / segment.profile.curves.ipc
            # Misses per cycle weighted by the cycles spent in the phase is
            # approximated by instruction weighting of the per-phase rate.
            mpkc += weight * segment.profile.curves.llcmpkc
        ipc = 1.0 / cpi
        bytes_per_miss = float(
            sum(w * seg.profile.bytes_per_miss for w, seg in zip(weights, self.segments))
        )
        base = self.segments[0].profile
        return AppProfile(
            name=self.name,
            curves=CurveSet(ipc=ipc, llcmpkc=mpkc),
            bytes_per_miss=bytes_per_miss,
            suite=self.suite,
            metadata=dict(base.metadata),
        )

    def renamed(self, name: str) -> "PhasedProfile":
        """Copy under a different name (for multi-instance workloads)."""
        return PhasedProfile(
            name=name,
            segments=tuple(
                PhaseSegment(seg.instructions, seg.profile.renamed(name))
                for seg in self.segments
            ),
            suite=self.suite,
        )
