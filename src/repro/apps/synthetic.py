"""Random synthetic application generators.

The property-based tests and several ablation benchmarks need application
profiles beyond the fixed catalogue: randomly drawn sensitive / streaming /
light programs with controlled class proportions.  Everything here is
deterministic given a :class:`numpy.random.Generator` (or an integer seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apps.curves import light_curves, sensitive_curves, streaming_curves
from repro.apps.phases import PhasedProfile, PhaseSegment
from repro.apps.profile import AppProfile
from repro.errors import ProfileError

__all__ = [
    "random_sensitive_profile",
    "random_streaming_profile",
    "random_light_profile",
    "random_profile",
    "random_workload_profiles",
    "random_phased_profile",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_sensitive_profile(
    n_ways: int,
    rng: RngLike = None,
    name: str = "synthetic-sensitive",
) -> AppProfile:
    """Random cache-sensitive profile (steep slowdown knee, decaying misses)."""
    gen = _rng(rng)
    curves = sensitive_curves(
        n_ways,
        ipc_full=float(gen.uniform(0.5, 1.6)),
        slowdown_at_1=float(gen.uniform(1.15, 1.9)),
        knee_ways=float(gen.uniform(1.5, 4.5)),
        llcmpkc_at_1=float(gen.uniform(6.0, 25.0)),
        llcmpkc_full=float(gen.uniform(0.2, 2.0)),
    )
    return AppProfile(name=name, curves=curves, suite="synthetic")


def random_streaming_profile(
    n_ways: int,
    rng: RngLike = None,
    name: str = "synthetic-streaming",
) -> AppProfile:
    """Random streaming profile (flat slowdown, high miss rate)."""
    gen = _rng(rng)
    curves = streaming_curves(
        n_ways,
        ipc_full=float(gen.uniform(0.4, 0.9)),
        slowdown_at_1=float(gen.uniform(1.005, 1.045)),
        llcmpkc=float(gen.uniform(12.0, 45.0)),
        llcmpkc_slope=float(gen.uniform(0.0, 0.5)),
    )
    return AppProfile(
        name=name,
        curves=curves,
        suite="synthetic",
        bytes_per_miss=float(gen.uniform(64.0, 110.0)),
    )


def random_light_profile(
    n_ways: int,
    rng: RngLike = None,
    name: str = "synthetic-light",
) -> AppProfile:
    """Random light-sharing profile (flat slowdown, negligible misses)."""
    gen = _rng(rng)
    curves = light_curves(
        n_ways,
        ipc_full=float(gen.uniform(0.9, 1.8)),
        slowdown_at_1=float(gen.uniform(1.0, 1.02)),
        llcmpkc=float(gen.uniform(0.05, 3.0)),
    )
    return AppProfile(name=name, curves=curves, suite="synthetic")


_GENERATORS = {
    "sensitive": random_sensitive_profile,
    "streaming": random_streaming_profile,
    "light": random_light_profile,
}


def random_profile(
    n_ways: int,
    klass: str,
    rng: RngLike = None,
    name: Optional[str] = None,
) -> AppProfile:
    """Random profile of the requested behavioural class."""
    try:
        generator = _GENERATORS[klass]
    except KeyError as exc:
        raise ProfileError(
            f"unknown class {klass!r}; expected one of {sorted(_GENERATORS)}"
        ) from exc
    return generator(n_ways, rng=rng, name=name or f"synthetic-{klass}")


def random_workload_profiles(
    n_apps: int,
    n_ways: int,
    rng: RngLike = None,
    class_mix: Optional[Dict[str, float]] = None,
) -> List[AppProfile]:
    """Draw ``n_apps`` random profiles with the given class proportions.

    ``class_mix`` maps class name to sampling weight; the default mirrors the
    paper's observation that most SPEC programs are light sharing, with a
    meaningful minority of sensitive and streaming codes.
    """
    if n_apps < 1:
        raise ProfileError("a workload needs at least one application")
    gen = _rng(rng)
    mix = class_mix or {"light": 0.45, "sensitive": 0.35, "streaming": 0.20}
    classes = sorted(mix)
    weights = np.array([mix[c] for c in classes], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ProfileError(f"invalid class mix {mix!r}")
    weights = weights / weights.sum()
    profiles: List[AppProfile] = []
    for index in range(n_apps):
        klass = str(gen.choice(classes, p=weights))
        profiles.append(
            random_profile(n_ways, klass, rng=gen, name=f"syn{index}-{klass}")
        )
    return profiles


def random_phased_profile(
    n_ways: int,
    rng: RngLike = None,
    name: str = "synthetic-phased",
    n_phases: int = 3,
    cycle_instructions: float = 1.0e9,
) -> PhasedProfile:
    """Random multi-phase profile alternating between behavioural classes."""
    if n_phases < 1:
        raise ProfileError("n_phases must be >= 1")
    gen = _rng(rng)
    classes = ["sensitive", "light", "streaming"]
    fractions = gen.dirichlet(np.ones(n_phases) * 2.0)
    segments = []
    for index in range(n_phases):
        klass = classes[int(gen.integers(0, len(classes)))]
        profile = random_profile(n_ways, klass, rng=gen, name=name)
        segments.append(
            PhaseSegment(
                instructions=float(max(fractions[index], 0.05) * cycle_instructions),
                profile=profile,
            )
        )
    return PhasedProfile(name=name, segments=tuple(segments), suite="synthetic")
