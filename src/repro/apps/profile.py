"""Application performance profiles.

An :class:`AppProfile` is the per-application record the whole system is built
on: IPC and LLC-miss-rate curves over every possible way allocation, measured
(in the paper: profiled offline on the Skylake machine; here: synthesised by
:mod:`repro.apps.catalog`) when the application runs *alone*.

From the two stored curves everything else the policies need is derived:

* the slowdown table (Eq. 2) — input to the LFOC/UCP lookahead allocation;
* LLC misses per kilo-instruction (MPKI) — input to UCP and KPart;
* the memory-stall fraction — the ``STALLS_L2_MISS`` proxy used by Dunn and by
  LFOC's phase-change heuristics;
* DRAM bandwidth demand — input to the bandwidth-contention model.

Profiles support evaluation at *fractional* way counts (by monotone linear
interpolation): the contention estimator models space sharing inside a cluster
as each application effectively owning a fractional number of ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.apps.curves import CurveSet
from repro.errors import ProfileError
from repro.hardware.platform import PlatformSpec

__all__ = ["AppProfile", "FastProfileView", "CACHE_LINE_BYTES"]

#: Bytes transferred from DRAM per LLC miss (one cache line).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class AppProfile:
    """Single-phase behavioural profile of one application.

    Parameters
    ----------
    name:
        Benchmark name (``lbm06``, ``xalancbmk17``...).
    curves:
        Per-way IPC and LLCMPKC curves (index ``w-1`` holds the value for
        ``w`` ways), measured running alone.
    bytes_per_miss:
        DRAM traffic per LLC miss.  64 for a plain demand miss; streaming
        codes with aggressive prefetching move more.
    suite:
        Originating suite label (``spec2006`` / ``spec2017`` / ``synthetic``).
    """

    name: str
    curves: CurveSet
    bytes_per_miss: float = CACHE_LINE_BYTES
    suite: str = "synthetic"
    metadata: Dict[str, float] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("an application profile needs a non-empty name")
        if self.bytes_per_miss <= 0:
            raise ProfileError("bytes_per_miss must be positive")

    # -- basic geometry -----------------------------------------------------

    @property
    def n_ways(self) -> int:
        """Number of way points the profile was collected for."""
        return self.curves.n_ways

    @property
    def ipc_alone(self) -> float:
        """IPC with the entire LLC available (the ``alone`` configuration)."""
        return float(self.curves.ipc[-1])

    # -- curve access (integer ways) -----------------------------------------

    def ipc_table(self) -> np.ndarray:
        """IPC for 1..n ways (copy)."""
        return self.curves.ipc.copy()

    def llcmpkc_table(self) -> np.ndarray:
        """LLC misses per kilo-cycle for 1..n ways (copy)."""
        return self.curves.llcmpkc.copy()

    def slowdown_table(self) -> np.ndarray:
        """Slowdown (Eq. 2) for 1..n ways relative to the full LLC (copy)."""
        return self.curves.slowdown()

    def mpki_table(self) -> np.ndarray:
        """LLC misses per kilo-instruction for 1..n ways."""
        return self.curves.llcmpkc / np.maximum(self.curves.ipc, 1e-9)

    # -- curve access (fractional ways) ---------------------------------------

    def _interp(self, table: np.ndarray, ways: float) -> float:
        ways = float(ways)
        if ways <= 0:
            raise ProfileError(f"cannot evaluate {self.name!r} at {ways} ways")
        axis = np.arange(1, self.n_ways + 1, dtype=float)
        clipped = min(max(ways, 1.0), float(self.n_ways))
        return float(np.interp(clipped, axis, table))

    def ipc_at(self, ways: float) -> float:
        """IPC when running alone with a (possibly fractional) way allocation."""
        return self._interp(self.curves.ipc, ways)

    def llcmpkc_at(self, ways: float) -> float:
        """LLC misses per kilo-cycle at a (possibly fractional) way allocation."""
        return self._interp(self.curves.llcmpkc, ways)

    def mpki_at(self, ways: float) -> float:
        """LLC misses per kilo-instruction at a fractional way allocation."""
        return self.llcmpkc_at(ways) / max(self.ipc_at(ways), 1e-9)

    def slowdown_at(self, ways: float) -> float:
        """Slowdown relative to the full LLC at a fractional way allocation."""
        return self.ipc_alone / max(self.ipc_at(ways), 1e-12)

    def stall_fraction_at(self, ways: float, platform: PlatformSpec) -> float:
        """Fraction of cycles stalled on LLC misses (``STALLS_L2_MISS`` proxy).

        With ``m`` misses per kilo-cycle each exposing roughly
        ``mem_latency_cycles`` of latency, the raw stall pressure is
        ``x = m * latency / 1000`` *stall cycles per cycle*; since misses
        overlap with each other and with useful work, the observable stalled
        fraction saturates as ``x / (1 + x)`` (capped at 0.95).  The saturating
        form keeps streaming programs (very high miss rates) distinguishable
        from moderately memory-bound ones, which matters for policies — like
        Dunn — that cluster on this single metric.
        """
        pressure = self.llcmpkc_at(ways) * platform.mem_latency_cycles / 1000.0
        return min(0.95, pressure / (1.0 + pressure))

    def bandwidth_gbs_at(self, ways: float, platform: PlatformSpec) -> float:
        """DRAM bandwidth demand in GB/s at a fractional way allocation.

        Misses per cycle × cycles per second × bytes per miss.
        """
        misses_per_cycle = self.llcmpkc_at(ways) / 1000.0
        return misses_per_cycle * platform.cycles_per_second * self.bytes_per_miss / 1e9

    # -- transformations ------------------------------------------------------

    def resampled(self, n_ways: int) -> "AppProfile":
        """Return the profile re-expressed over a platform with ``n_ways`` ways.

        The curves are resampled on a normalised cache-fraction axis, so a
        profile collected for an 11-way LLC can drive experiments on, say, a
        20-way platform.  The full-cache IPC is preserved.
        """
        if n_ways < 1:
            raise ProfileError(f"n_ways must be >= 1, got {n_ways}")
        if n_ways == self.n_ways:
            return self
        old_axis = np.arange(1, self.n_ways + 1, dtype=float) / self.n_ways
        new_axis = np.arange(1, n_ways + 1, dtype=float) / n_ways
        ipc = np.interp(new_axis, old_axis, self.curves.ipc)
        mpkc = np.interp(new_axis, old_axis, self.curves.llcmpkc)
        return AppProfile(
            name=self.name,
            curves=CurveSet(ipc=ipc, llcmpkc=mpkc),
            bytes_per_miss=self.bytes_per_miss,
            suite=self.suite,
            metadata=dict(self.metadata),
        )

    def scaled_ipc(self, factor: float) -> "AppProfile":
        """Return a copy with the whole IPC curve scaled by ``factor``.

        Useful to build synthetic variants of a benchmark without changing its
        cache behaviour (slowdown tables are invariant under this scaling).
        """
        if factor <= 0:
            raise ProfileError("IPC scale factor must be positive")
        return AppProfile(
            name=self.name,
            curves=CurveSet(ipc=self.curves.ipc * factor, llcmpkc=self.curves.llcmpkc),
            bytes_per_miss=self.bytes_per_miss,
            suite=self.suite,
            metadata=dict(self.metadata),
        )

    def renamed(self, name: str) -> "AppProfile":
        """Return a copy under a different name (used for multi-instance mixes)."""
        return AppProfile(
            name=name,
            curves=self.curves,
            bytes_per_miss=self.bytes_per_miss,
            suite=self.suite,
            metadata=dict(self.metadata),
        )

    # -- identity --------------------------------------------------------------

    def value_fingerprint(self) -> tuple:
        """Hashable fingerprint of everything the contention models read.

        Two profiles with equal fingerprints are arithmetically
        interchangeable inside the estimator (the name only labels results),
        which is what lets the incremental evaluation layer share cached
        tables across runs that rebuild their profile objects from scratch.
        """
        return (
            self.curves.ipc.tobytes(),
            self.curves.llcmpkc.tobytes(),
            float(self.bytes_per_miss),
        )

    # -- convenience ----------------------------------------------------------

    def describe(self) -> Dict[str, float]:
        """Summary statistics used in reports and examples."""
        slowdown = self.slowdown_table()
        return {
            "n_ways": float(self.n_ways),
            "ipc_alone": self.ipc_alone,
            "max_slowdown": float(slowdown.max()),
            "llcmpkc_at_1": float(self.curves.llcmpkc[0]),
            "llcmpkc_full": float(self.curves.llcmpkc[-1]),
        }


class FastProfileView:
    """Allocation-free scalar curve evaluator, bit-identical to :class:`AppProfile`.

    ``AppProfile``'s fractional-way accessors go through :func:`numpy.interp`,
    which costs microseconds per call in array setup — painful inside the
    occupancy fixed point, which interpolates per application per iteration.
    This view caches the curves as plain lists and evaluates the same linear
    interpolation with pure float arithmetic.  Because the way axis is the
    uniform unit-step grid ``1..n_ways``, the slope division is by exactly
    1.0 and the formula reproduces ``np.interp`` bit for bit (asserted by the
    test suite over dense random grids); the derived quantities replicate the
    ``AppProfile`` method bodies operation for operation.
    """

    __slots__ = ("ipc", "llcmpkc", "n_ways", "ipc_alone", "bytes_per_miss")

    def __init__(self, profile: AppProfile) -> None:
        self.ipc = profile.curves.ipc.tolist()
        self.llcmpkc = profile.curves.llcmpkc.tolist()
        self.n_ways = profile.n_ways
        self.ipc_alone = profile.ipc_alone
        self.bytes_per_miss = profile.bytes_per_miss

    @classmethod
    def from_arrays(
        cls, ipc: Sequence[float], llcmpkc: Sequence[float], bytes_per_miss: float
    ) -> "FastProfileView":
        """Rebuild a view from raw curve values (persisted-table warm start).

        Equivalent to ``FastProfileView(AppProfile(...))`` over the same
        curves: ``ipc_alone`` is the last IPC point, exactly as
        :attr:`AppProfile.ipc_alone` reads it.
        """
        view = cls.__new__(cls)
        view.ipc = [float(v) for v in ipc]
        view.llcmpkc = [float(v) for v in llcmpkc]
        if not view.ipc or len(view.ipc) != len(view.llcmpkc):
            raise ProfileError(
                "curve arrays must be non-empty and of equal length, got "
                f"{len(view.ipc)} IPC / {len(view.llcmpkc)} LLCMPKC points"
            )
        view.n_ways = len(view.ipc)
        view.ipc_alone = view.ipc[-1]
        view.bytes_per_miss = float(bytes_per_miss)
        return view

    def _interp(self, table: list, ways: float) -> float:
        if ways <= 0:
            raise ProfileError(f"cannot evaluate a profile at {ways} ways")
        n = self.n_ways
        clipped = min(max(ways, 1.0), float(n))
        if clipped >= n:
            return table[-1]
        j = int(clipped - 1.0)
        return (table[j + 1] - table[j]) * (clipped - (j + 1.0)) + table[j]

    def ipc_at(self, ways: float) -> float:
        return self._interp(self.ipc, ways)

    def llcmpkc_at(self, ways: float) -> float:
        return self._interp(self.llcmpkc, ways)

    def stall_fraction_at(self, ways: float, platform: PlatformSpec) -> float:
        pressure = self.llcmpkc_at(ways) * platform.mem_latency_cycles / 1000.0
        return min(0.95, pressure / (1.0 + pressure))

    def bandwidth_gbs_at(self, ways: float, platform: PlatformSpec) -> float:
        misses_per_cycle = self.llcmpkc_at(ways) / 1000.0
        return misses_per_cycle * platform.cycles_per_second * self.bytes_per_miss / 1e9
