"""Application model: per-way performance curves, SPEC-like catalogue, phases."""

from repro.apps.curves import (
    CurveSet,
    blend_curves,
    light_curves,
    sensitive_curves,
    streaming_curves,
)
from repro.apps.profile import AppProfile, CACHE_LINE_BYTES
from repro.apps.phases import PhasedProfile, PhaseSegment
from repro.apps.catalog import (
    REFERENCE_WAYS,
    BenchmarkSpec,
    benchmark_names,
    benchmark_spec,
    benchmarks_by_class,
    build_catalog,
    build_phased_profile,
    build_profile,
    expected_class,
)
from repro.apps.synthetic import (
    random_light_profile,
    random_phased_profile,
    random_profile,
    random_sensitive_profile,
    random_streaming_profile,
    random_workload_profiles,
)

__all__ = [
    "CurveSet",
    "blend_curves",
    "light_curves",
    "sensitive_curves",
    "streaming_curves",
    "AppProfile",
    "CACHE_LINE_BYTES",
    "PhasedProfile",
    "PhaseSegment",
    "REFERENCE_WAYS",
    "BenchmarkSpec",
    "benchmark_names",
    "benchmark_spec",
    "benchmarks_by_class",
    "build_catalog",
    "build_phased_profile",
    "build_profile",
    "expected_class",
    "random_light_profile",
    "random_phased_profile",
    "random_profile",
    "random_sensitive_profile",
    "random_streaming_profile",
    "random_workload_profiles",
]
