"""Parametric per-way performance-curve archetypes.

The paper's entire analysis rests on two offline-collected curves per
application (Fig. 1): the *slowdown* as a function of the number of LLC ways
allotted, and the *LLC misses per kilo-cycle* (LLCMPKC).  Three behavioural
archetypes emerge (Table 1):

* **cache-sensitive** applications lose a lot of performance when squeezed —
  the IPC curve has a steep knee, and the miss rate explodes below the knee;
* **streaming** applications have an essentially flat IPC curve but a very
  high miss rate at every size (their working set never fits);
* **light-sharing** applications have both a flat IPC curve and a low miss
  rate (their working set fits in the private levels).

Since we cannot profile SPEC CPU on a CAT machine, the catalogue in
:mod:`repro.apps.catalog` builds each benchmark's curves from these
archetypes with per-benchmark parameters.  The generator functions here are
pure NumPy and deterministic, so the same parameters always produce the same
curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ProfileError

__all__ = [
    "CurveSet",
    "sensitive_curves",
    "streaming_curves",
    "light_curves",
    "blend_curves",
]


@dataclass(frozen=True)
class CurveSet:
    """Per-way performance curves over ``1..n_ways`` ways.

    ``ipc[w-1]`` is the average instructions-per-cycle the application achieves
    running *alone* with ``w`` ways; ``llcmpkc[w-1]`` the LLC misses per
    thousand cycles in the same configuration.
    """

    ipc: np.ndarray
    llcmpkc: np.ndarray

    def __post_init__(self) -> None:
        ipc = np.asarray(self.ipc, dtype=float)
        llcmpkc = np.asarray(self.llcmpkc, dtype=float)
        if ipc.ndim != 1 or llcmpkc.ndim != 1:
            raise ProfileError("curves must be one-dimensional")
        if ipc.shape != llcmpkc.shape:
            raise ProfileError(
                f"curve length mismatch: ipc has {ipc.shape[0]} points, "
                f"llcmpkc has {llcmpkc.shape[0]}"
            )
        if ipc.shape[0] < 1:
            raise ProfileError("curves need at least one way point")
        if np.any(ipc <= 0):
            raise ProfileError("IPC curve must be strictly positive")
        if np.any(llcmpkc < 0):
            raise ProfileError("LLCMPKC curve must be non-negative")
        object.__setattr__(self, "ipc", ipc)
        object.__setattr__(self, "llcmpkc", llcmpkc)

    @property
    def n_ways(self) -> int:
        return int(self.ipc.shape[0])

    def slowdown(self) -> np.ndarray:
        """Slowdown table relative to the full-cache configuration (Eq. 2)."""
        return self.ipc[-1] / self.ipc


def _way_axis(n_ways: int) -> np.ndarray:
    if n_ways < 1:
        raise ProfileError(f"n_ways must be >= 1, got {n_ways}")
    return np.arange(1, n_ways + 1, dtype=float)


def sensitive_curves(
    n_ways: int,
    *,
    ipc_full: float,
    slowdown_at_1: float,
    knee_ways: float,
    llcmpkc_at_1: float,
    llcmpkc_full: float = 0.8,
) -> CurveSet:
    """Curves for a cache-sensitive benchmark (e.g. ``xalancbmk`` in Fig. 1).

    Parameters
    ----------
    ipc_full:
        IPC with the whole LLC available.
    slowdown_at_1:
        Slowdown suffered with a single way (>= 1).  ``xalancbmk`` in Fig. 1
        reaches roughly 1.8.
    knee_ways:
        Exponential decay constant (in ways) of the performance loss: the
        smaller the knee, the faster the application recovers as it gains
        space.
    llcmpkc_at_1 / llcmpkc_full:
        Miss rate with one way and with the full cache.  The miss curve decays
        with the same knee as the slowdown (misses are what cause the
        slowdown).
    """
    if slowdown_at_1 < 1.0:
        raise ProfileError(f"slowdown_at_1 must be >= 1, got {slowdown_at_1}")
    if knee_ways <= 0:
        raise ProfileError("knee_ways must be positive")
    ways = _way_axis(n_ways)
    # Slowdown decays exponentially from `slowdown_at_1` (at w=1) to 1 (at w=n).
    decay = np.exp(-(ways - 1.0) / knee_ways)
    edge = np.exp(-(n_ways - 1.0) / knee_ways)
    # Normalise so the last point is exactly 1.0 regardless of the knee.
    shape = (decay - edge) / max(1.0 - edge, 1e-12)
    slowdown = 1.0 + (slowdown_at_1 - 1.0) * shape
    ipc = ipc_full / slowdown
    miss_shape = shape
    llcmpkc = llcmpkc_full + (llcmpkc_at_1 - llcmpkc_full) * miss_shape
    return CurveSet(ipc=ipc, llcmpkc=np.maximum(llcmpkc, 0.0))


def streaming_curves(
    n_ways: int,
    *,
    ipc_full: float,
    slowdown_at_1: float = 1.02,
    llcmpkc: float = 30.0,
    llcmpkc_slope: float = 0.0,
) -> CurveSet:
    """Curves for a streaming (aggressor, cache-insensitive) benchmark.

    The IPC curve is almost flat: the working set does not fit in the LLC at
    any allocation, so extra ways barely help (``lbm`` in Fig. 1 stays under a
    1.03 slowdown).  The miss rate is high everywhere — these applications
    keep inserting lines and evicting their neighbours'.
    """
    if not (1.0 <= slowdown_at_1 < 1.2):
        raise ProfileError(
            f"streaming apps have a nearly flat slowdown curve, got {slowdown_at_1}"
        )
    ways = _way_axis(n_ways)
    span = max(n_ways - 1, 1)
    slowdown = 1.0 + (slowdown_at_1 - 1.0) * (n_ways - ways) / span
    ipc = ipc_full / slowdown
    mpkc = llcmpkc - llcmpkc_slope * (ways - 1.0)
    return CurveSet(ipc=ipc, llcmpkc=np.maximum(mpkc, 0.0))


def light_curves(
    n_ways: int,
    *,
    ipc_full: float,
    slowdown_at_1: float = 1.01,
    llcmpkc: float = 0.5,
) -> CurveSet:
    """Curves for a light-sharing benchmark: flat IPC, negligible LLC misses.

    The working set fits in the per-core private levels, so the application is
    neither hurt by a small allocation nor aggressive towards co-runners.
    """
    if llcmpkc >= 10.0:
        raise ProfileError(
            "a light-sharing benchmark must stay well below the streaming miss "
            f"threshold (LLCMPKC >= 10); got {llcmpkc}"
        )
    ways = _way_axis(n_ways)
    span = max(n_ways - 1, 1)
    slowdown = 1.0 + (slowdown_at_1 - 1.0) * (n_ways - ways) / span
    ipc = ipc_full / slowdown
    mpkc = np.full_like(ways, float(llcmpkc))
    return CurveSet(ipc=ipc, llcmpkc=mpkc)


def blend_curves(a: CurveSet, b: CurveSet, weight_a: float) -> CurveSet:
    """Blend two curve sets (e.g. to model a benchmark that sits between two
    archetypes).  ``weight_a`` is the weight of ``a`` in ``[0, 1]``."""
    if a.n_ways != b.n_ways:
        raise ProfileError("cannot blend curves with different way counts")
    if not (0.0 <= weight_a <= 1.0):
        raise ProfileError(f"weight_a must be in [0, 1], got {weight_a}")
    wb = 1.0 - weight_a
    return CurveSet(
        ipc=weight_a * a.ipc + wb * b.ipc,
        llcmpkc=weight_a * a.llcmpkc + wb * b.llcmpkc,
    )
