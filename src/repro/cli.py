"""Command-line interface: ``lfoc-repro``.

A thin front-end over the analysis builders so the experiments can be
regenerated without writing Python:

.. code-block:: console

   $ lfoc-repro fig1                 # slowdown / LLCMPKC curves (Fig. 1)
   $ lfoc-repro table1               # benchmark classification (Table 1)
   $ lfoc-repro fig3 --sizes 4 5 6   # optimal clustering vs partitioning
   $ lfoc-repro fig6 --max-size 8    # static clustering study
   $ lfoc-repro fig7 --quick         # dynamic study on the 8-app workloads
   $ lfoc-repro table2               # LFOC vs KPart algorithm cost

and over the declarative study API, so *arbitrary* studies run from a spec
file with no Python at all:

.. code-block:: console

   $ lfoc-repro run examples/study_fig7.toml --jobs 2 --out rows.jsonl
   $ lfoc-repro sweep --kind dynamic --policies dunn lfoc \\
         --workloads P1 S1 --seeds 0 1 --out sweep.jsonl

Execution is pluggable (see ``repro.runtime.executors``): ``run`` accepts
``--executor serial|pool|tcp|supervised`` plus ``--workers``/``--bind``.
The ``supervised`` executor spawns and babysits its own local workers
(crash → respawn with backoff), so a distributed study is one command:

.. code-block:: console

   $ lfoc-repro run study.toml --executor supervised --workers 2 \\
         --checkpoint rows.jsonl

For remote hosts, the ``worker`` subcommand still turns any machine into a
run worker for a ``tcp`` coordinator:

.. code-block:: console

   $ lfoc-repro worker --connect 127.0.0.1:7070            # terminal 1 & 2
   $ lfoc-repro run study.toml --executor tcp \\
         --bind 127.0.0.1:7070 --workers 2 \\
         --checkpoint rows.jsonl                           # terminal 3

The wire protocol is schema-versioned and safe by default; the legacy
pickle codec needs ``--unsafe-pickle`` on *both* sides.  ``--chaos`` takes
a JSON fault plan for deterministic resilience drills.

The online partitioning service (see ``repro.service``) reuses the same
wire stack as a long-lived control plane: ``serve`` runs the daemon,
``agent`` a per-host client, and ``serve --supervise N --workload S1``
spawns and babysits N local agents in one command:

.. code-block:: console

   $ lfoc-repro serve --bind 127.0.0.1:7080                # terminal 1
   $ lfoc-repro agent --connect 127.0.0.1:7080 \\
         --host-id host0 --workload S1 --batches 50        # terminal 2

``--checkpoint``/``--resume`` make long studies crash-safe: completed
scenarios are appended durably (with per-line checksums) and a re-run
skips them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

from repro.analysis import (
    default_static_policies,
    fig1_curves,
    fig2_optimal_breakdown,
    fig3_clustering_vs_partitioning,
    fig4_fotonik3d_trace,
    fig5_workload_matrix,
    fig6_static_study,
    fig7_dynamic_study,
    format_table,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig6,
    render_fig7,
    render_table1,
    render_table2,
    summarize_dynamic_study,
    summarize_static_study,
    table1_classification,
    table2_algorithm_cost,
)
from repro.experiments import (
    DYNAMIC_ROW_FIELDS,
    EXECUTORS,
    STATIC_ROW_FIELDS,
    EngineSpec,
    ExecutorSpec,
    SolverSpec,
    StudyResult,
    build_sweep_study,
    dump_study_spec,
    load_study_spec,
    run_study,
)
from repro.runtime import EngineConfig
from repro.version import PAPER, __version__
from repro.workloads import dynamic_study_workloads, static_study_workloads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lfoc-repro",
        description=f"Reproduction harness for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="slowdown and LLCMPKC curves (Fig. 1)")
    sub.add_parser("table1", help="benchmark classification (Table 1)")

    backend_kwargs = dict(
        choices=("tabulated", "reference"),
        default="tabulated",
        help="optimal-solver scoring engine (tabulated batch scoring is the "
        "fast default; reference is the per-candidate cached objective)",
    )

    fig2 = sub.add_parser("fig2", help="optimal clustering breakdown (Fig. 2)")
    fig2.add_argument("--workloads", type=int, default=8, help="number of random mixes")
    fig2.add_argument("--size", type=int, default=8, help="applications per mix")
    fig2.add_argument("--backend", **backend_kwargs)

    fig3 = sub.add_parser("fig3", help="optimal clustering vs partitioning (Fig. 3)")
    fig3.add_argument("--sizes", type=int, nargs="+", default=[4, 5, 6, 7, 8])
    fig3.add_argument("--per-size", type=int, default=3, help="workloads per size")
    fig3.add_argument("--backend", **backend_kwargs)

    sub.add_parser("fig4", help="LLCMPKC phase trace of fotonik3d (Fig. 4)")
    sub.add_parser("fig5", help="workload composition matrix (Fig. 5)")

    jobs_kwargs = dict(
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run batch (0 = all available CPUs; "
        "results are independent of this knob)",
    )

    fig6 = sub.add_parser("fig6", help="static clustering study (Fig. 6)")
    fig6.add_argument("--max-size", type=int, default=None, help="largest workload size")
    fig6.add_argument("--backend", **backend_kwargs)
    fig6.add_argument("--jobs", **jobs_kwargs)

    fig7 = sub.add_parser("fig7", help="dynamic policy study (Fig. 7)")
    fig7.add_argument("--quick", action="store_true", help="only the 8-app workloads")
    fig7.add_argument(
        "--instructions", type=float, default=1.0e9, help="instructions per completion"
    )
    fig7.add_argument(
        "--backend",
        choices=("incremental", "reference"),
        default="incremental",
        help="runtime-engine evaluation backend (incremental = cached tables "
        "and vectorized state, the fast default; reference = the original "
        "per-event estimator; results are bit-identical)",
    )
    fig7.add_argument("--jobs", **jobs_kwargs)

    table2 = sub.add_parser("table2", help="algorithm execution cost (Table 2)")
    table2.add_argument("--sizes", type=int, nargs="+", default=[4, 5, 6, 7, 8, 9, 10, 11])
    table2.add_argument("--repetitions", type=int, default=5)

    run = sub.add_parser(
        "run", help="run a declarative study from a .toml/.json spec file"
    )
    run.add_argument("spec", help="path to the study spec (.toml or .json)")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's worker-process count (0 = all available CPUs)",
    )
    run.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="execution backend (registered executors: "
        f"{', '.join(EXECUTORS.names())}); overrides the spec and --jobs",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="executor worker count: pool size (pool) or workers required "
        "before dispatch (tcp)",
    )
    run.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help="tcp coordinator listen address (default 127.0.0.1:0 = any free "
        "port); workers join with `worker --connect HOST:PORT`",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="tcp: declare a worker lost when one run takes longer than S "
        "seconds and resubmit it (default: no bound)",
    )
    run.add_argument(
        "--heartbeat-grace",
        type=float,
        default=None,
        metavar="S",
        help="tcp: drop a worker whose ping goes unanswered for S seconds "
        "(default: max(3 * heartbeat, 10))",
    )
    run.add_argument(
        "--unsafe-pickle",
        action="store_true",
        help="tcp: use the legacy pickle wire codec (arbitrary code "
        "execution; trusted networks only; workers need --unsafe-pickle too)",
    )
    run.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help="tcp: coordinator-side fault plan as JSON, e.g. "
        '\'{"corrupt_frames": [1], "drop_frames": [3]}\' '
        "(deterministic resilience drills)",
    )
    run.add_argument(
        "--fault-tolerance",
        default=None,
        metavar="JSON",
        help="retry/quarantine policy as JSON, e.g. "
        '\'{"max_attempts": 3, "backoff_s": 0.5}\' (or "true" for the '
        "defaults, \"false\" to disable): failed runs are retried with "
        "backoff and then quarantined as structured failure records "
        "instead of aborting the study",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="durably append each completed scenario to this JSONL file "
        "(crash-safe; the file doubles as a result store)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already completed in --checkpoint instead of "
        "starting fresh",
    )
    run.add_argument(
        "--out", default=None, metavar="FILE", help="save the result rows as JSONL"
    )

    worker = sub.add_parser(
        "worker",
        help="serve runs for a tcp-executor coordinator (repro run --executor tcp)",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to join",
    )
    worker.add_argument(
        "--max-runs",
        type=int,
        default=None,
        metavar="N",
        help="disconnect cleanly after N runs (rolling restarts, tests)",
    )
    worker.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: die without replying when run N+1 arrives "
        "(exercises the coordinator's retry path)",
    )
    worker.add_argument(
        "--unsafe-pickle",
        action="store_true",
        help="speak the legacy pickle wire codec (arbitrary code execution; "
        "trusted networks only; the coordinator must opt in too)",
    )
    worker.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help="worker-side fault plan as JSON, e.g. "
        '\'{"kill_runs": [0], "duplicate_results": [2]}\'',
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-run log lines"
    )

    serve = sub.add_parser(
        "serve",
        help="run the online partitioning daemon (long-lived control plane)",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="listen address (default 127.0.0.1:0 = any free port, printed "
        "at startup); host agents join with `agent --connect HOST:PORT`",
    )
    serve.add_argument(
        "--policy",
        choices=("lfoc", "dunn"),
        default="lfoc",
        help="online partitioning policy driving mask decisions",
    )
    serve.add_argument(
        "--ways", type=int, default=None, metavar="N", help="LLC way count"
    )
    serve.add_argument(
        "--supervise",
        type=int,
        default=0,
        metavar="N",
        help="spawn and babysit N local host agents (crash -> respawn with "
        "backoff); requires --workload",
    )
    serve.add_argument(
        "--workload",
        default=None,
        metavar="W",
        help="workload the supervised agents simulate (S7, P12...)",
    )
    serve.add_argument(
        "--batches",
        type=int,
        default=50,
        metavar="N",
        help="monitoring batches each supervised agent streams",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="seed for the supervised agents"
    )
    serve.add_argument(
        "--agent-chaos",
        default=None,
        metavar="JSON",
        help="fault plan handed to the FIRST supervised agent incarnation "
        'only, e.g. \'{"agent_kill_batches": [3]}\' (its respawn comes up '
        "clean — a deterministic supervision drill)",
    )
    serve.add_argument(
        "--replay-log",
        default=None,
        metavar="FILE",
        help="save the mask-decision log as JSONL on exit",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="CRC-guarded daemon state snapshot: restored at startup when "
        "FILE exists, refreshed periodically and on SIGTERM/clean exit, so "
        "a restarted daemon resumes every host session mid-epoch",
    )
    serve.add_argument(
        "--snapshot-every",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds between periodic snapshots (<= 0: only on exit)",
    )
    serve.add_argument(
        "--monitor-backend",
        choices=("bank", "reference"),
        default="bank",
        help="monitor ingest path: the fused MonitorBank (default) or the "
        "per-AppMonitor reference oracle (parity testing; no snapshots)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="without --supervise: exit after the first host session "
        "completes (with --supervise the daemon always exits once every "
        "supervised agent finished)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="hard deadline for the whole serve run",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )

    agent = sub.add_parser(
        "agent",
        help="run one simulated-host agent against a partitioning daemon",
    )
    agent.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="daemon address to join (from `serve`)",
    )
    agent.add_argument(
        "--host-id",
        default="host0",
        metavar="ID",
        help="stable host identity; the same agent process reconnecting "
        "resumes its daemon-side session mid-epoch, a respawned process "
        "(new boot token) restarts it with a bumped epoch",
    )
    agent.add_argument(
        "--workload",
        required=True,
        metavar="W",
        help="workload this host simulates (S7, P12...)",
    )
    agent.add_argument(
        "--batches",
        type=int,
        default=50,
        metavar="N",
        help="monitoring batches to stream before the orderly host_bye",
    )
    agent.add_argument("--seed", type=int, default=0, help="run seed")
    agent.add_argument(
        "--ways", type=int, default=None, metavar="N", help="LLC way count"
    )
    agent.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help="agent-side fault plan as JSON, e.g. "
        '\'{"agent_kill_batches": [3], "agent_corrupt_frames": [5]}\'',
    )
    agent.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )

    tournament = sub.add_parser(
        "tournament",
        help="policy tournaments: seeded scenario grids, paired statistical "
        "verdicts, CI regression gates",
    )
    tsub = tournament.add_subparsers(dest="tournament_command", required=True)

    trun = tsub.add_parser(
        "run", help="run a tournament from a .toml/.json spec and judge it"
    )
    trun.add_argument("spec", help="path to the tournament spec (.toml or .json)")
    trun.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's worker-process count (0 = all available CPUs)",
    )
    trun.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="execution backend (registered executors: "
        f"{', '.join(EXECUTORS.names())}); overrides the spec and --jobs; "
        "finer executor knobs live in the spec's [executor] table",
    )
    trun.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="executor worker count (pool size, or tcp/supervised workers)",
    )
    trun.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help="tcp/supervised coordinator listen address",
    )
    trun.add_argument(
        "--fault-tolerance",
        default=None,
        metavar="JSON",
        help="retry/quarantine policy as JSON (or \"true\"/\"false\"); "
        "quarantined runs drop their paired units from the statistics",
    )
    trun.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="durably append each completed scenario replica to this JSONL "
        "file (crash-safe)",
    )
    trun.add_argument(
        "--resume",
        action="store_true",
        help="skip scenario replicas already completed in --checkpoint",
    )
    trun.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="save the full verdict (standings, head-to-head, rows) as JSONL",
    )
    trun.add_argument(
        "--markdown",
        default=None,
        metavar="FILE",
        help="also write the rendered leaderboard as Markdown",
    )

    treport = tsub.add_parser(
        "report", help="re-render a saved tournament verdict"
    )
    treport.add_argument("result", help="verdict JSONL from `tournament run --out`")
    treport.add_argument(
        "--markdown", default=None, metavar="FILE", help="write the Markdown render"
    )
    treport.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable report (standings + head-to-head)",
    )

    tgate = tsub.add_parser(
        "gate",
        help="check a verdict against a committed baseline; exit 1 on "
        "regression beyond the bootstrap noise band",
    )
    tgate.add_argument("result", help="verdict JSONL from `tournament run --out`")
    tgate.add_argument(
        "--baseline",
        required=True,
        metavar="FILE",
        help="baseline JSON file (commit it next to the spec)",
    )
    tgate.add_argument(
        "--update",
        action="store_true",
        help="bless this verdict: (re)write the baseline instead of checking",
    )
    tgate.add_argument(
        "--margin",
        type=float,
        default=0.0,
        metavar="X",
        help="extra absolute slack beyond the CI non-overlap test",
    )
    tgate.add_argument(
        "--nerf",
        default=None,
        metavar="POLICY",
        help="drill knob: degrade POLICY's rows by --nerf-factor before "
        "judging, to prove the gate trips (CI uses this)",
    )
    tgate.add_argument(
        "--nerf-factor",
        type=float,
        default=1.25,
        metavar="F",
        help="degradation factor for --nerf (unfairness x F, STP / F)",
    )

    sweep = sub.add_parser(
        "sweep", help="run a policy x workload x ways x seeds parameter sweep"
    )
    sweep.add_argument("--name", default="sweep", help="study name")
    sweep.add_argument(
        "--kind", choices=("static", "dynamic"), default="static",
        help="scenario kind: estimator evaluation (static) or engine runs (dynamic)",
    )
    sweep.add_argument(
        "--policies", nargs="+", default=["dunn", "lfoc"], metavar="POLICY",
        help="registered policy/driver names (stock Linux is the implicit baseline)",
    )
    sweep.add_argument(
        "--workloads", nargs="+", default=["S1"], metavar="W",
        help="workload names (S7, P12...) or registered suite names (s, p, "
        "dynamic_study...)",
    )
    sweep.add_argument(
        "--ways", type=int, nargs="+", default=None, metavar="N",
        help="LLC way counts to sweep (one scenario per value; default: "
        "the platform's native 11)",
    )
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="S",
        help="seed replicas per scenario (offsets random workload specs)",
    )
    sweep.add_argument(
        "--instructions", type=float, default=1.0e9,
        help="instructions per completion (dynamic scenarios)",
    )
    sweep.add_argument(
        "--min-completions", type=int, default=2,
        help="completions per application before a run ends (dynamic scenarios)",
    )
    sweep.add_argument(
        "--engine-backend", choices=("incremental", "reference"),
        default="incremental", help="runtime-engine evaluation backend",
    )
    sweep.add_argument(
        "--solver-backend", choices=("tabulated", "reference"),
        default="tabulated", help="optimal-solver scoring engine",
    )
    sweep.add_argument("--jobs", **jobs_kwargs)
    sweep.add_argument(
        "--out", default=None, metavar="FILE", help="save the result rows as JSONL"
    )
    sweep.add_argument(
        "--dump-spec", default=None, metavar="FILE",
        help="also write the generated study spec (.toml or .json)",
    )
    return parser


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _print_degraded(failures: Sequence[Any]) -> None:
    """Surface quarantined runs loudly: a degraded study must not look clean.

    The per-scenario quarantine lines scroll away on long studies; this
    summary sits right next to the aggregate table so missing rows are
    impossible to miss before anyone trusts the means.
    """
    if not failures:
        return
    preview = ", ".join(
        f"{f.get('label')} ({f.get('scenario_id')})" for f in failures[:3]
    )
    if len(failures) > 3:
        preview += f", ... {len(failures) - 3} more"
    print(
        f"\n! DEGRADED STUDY: {len(failures)} run(s) quarantined after "
        f"exhausting retries — {preview}. Their rows are missing from every "
        "aggregate above."
    )


def _print_study(result: StudyResult) -> None:
    """Render every scenario's rows plus the cross-seed policy aggregate."""
    for scenario in result.scenarios:
        fields = STATIC_ROW_FIELDS if scenario.kind == "static" else DYNAMIC_ROW_FIELDS
        print(f"# scenario {scenario.scenario_id} ({scenario.kind}, seed {scenario.seed})")
        rows = [[_format_cell(row.get(f, "")) for f in fields] for row in scenario.rows]
        print(format_table(list(fields), rows))
        for failure in scenario.failures:
            print(
                f"! quarantined {failure.get('label')}: {failure.get('kind')} "
                f"after {failure.get('attempts')} attempts — "
                f"{failure.get('message')}"
            )
        print()
    summary = result.aggregate()
    print("# aggregate (mean over workloads, scenarios and seeds)")
    print(
        format_table(
            ["policy", "mean norm. unfairness", "mean norm. STP"],
            [
                [
                    policy,
                    f"{stats.get('mean_normalized_unfairness', float('nan')):.3f}",
                    f"{stats.get('mean_normalized_stp', float('nan')):.3f}",
                ]
                for policy, stats in summary.items()
            ],
        )
    )
    _print_degraded(result.failures())


def _report_study(result: StudyResult, out: Optional[str]) -> int:
    _print_study(result)
    if out:
        result.save(out)
        print(f"\nsaved {len(result.rows())} rows to {out}")
    return 0


def _parse_chaos(text: Optional[str]):
    if text is None:
        return None
    import json

    from repro.errors import SpecError
    from repro.runtime.executors import FaultPlan

    try:
        data = json.loads(text)
    except ValueError as exc:
        raise SpecError(f"--chaos is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(data)


def _run_study_command(args: argparse.Namespace) -> int:
    from repro.errors import SpecError

    spec = load_study_spec(args.spec)
    executor = None
    chaos = _parse_chaos(args.chaos)
    if args.executor is not None:
        executor = ExecutorSpec(
            name=args.executor,
            workers=args.workers,
            bind=args.bind,
            task_timeout_s=args.task_timeout,
            heartbeat_grace_s=args.heartbeat_grace,
            unsafe_pickle=args.unsafe_pickle,
            chaos=chaos.to_dict() if chaos is not None else None,
        )
    elif any(
        v is not None
        for v in (
            args.workers,
            args.bind,
            args.task_timeout,
            args.heartbeat_grace,
            args.chaos,
        )
    ) or args.unsafe_pickle:
        raise SpecError(
            "--workers/--bind/--task-timeout/--heartbeat-grace/"
            "--unsafe-pickle/--chaos configure the executor selected by "
            "--executor; pass --executor as well (or set them in the "
            "spec's [executor] table)"
        )
    if args.resume and args.checkpoint is None:
        raise SpecError(
            "--resume reads completed scenarios from --checkpoint; pass "
            "--checkpoint FILE as well"
        )
    extra = dict(
        executor=executor, checkpoint=args.checkpoint, resume=args.resume
    )
    if args.fault_tolerance is not None:
        import json

        from repro.experiments.specs import FaultToleranceSpec

        try:
            data = json.loads(args.fault_tolerance)
        except ValueError as exc:
            raise SpecError(
                f"--fault-tolerance is not valid JSON: {exc}"
            ) from exc
        extra["fault_tolerance"] = FaultToleranceSpec.coerce(
            data, where="--fault-tolerance"
        )
    if args.jobs is None:
        result = run_study(spec, **extra)  # the spec's own jobs setting
    else:
        result = run_study(spec, jobs=args.jobs or None, **extra)
    return _report_study(result, args.out)


def _worker_command(args: argparse.Namespace) -> int:
    from repro.runtime.executors import run_worker
    from repro.runtime.executors.framing import CODEC_PICKLE, CODEC_SAFE

    return run_worker(
        args.connect,
        max_runs=args.max_runs,
        crash_after=args.crash_after,
        quiet=args.quiet,
        codec=CODEC_PICKLE if args.unsafe_pickle else CODEC_SAFE,
        chaos=_parse_chaos(args.chaos),
    )


def _serve_command(args: argparse.Namespace) -> int:
    import signal

    from repro.runtime.executors.tcp import parse_address
    from repro.service.daemon import PartitionDaemon

    chaos = _parse_chaos(args.agent_chaos)
    daemon = PartitionDaemon(
        parse_address(args.bind),
        policy=args.policy,
        n_ways=args.ways,
        supervise=args.supervise,
        workload=args.workload,
        batches=args.batches,
        seed=args.seed,
        agent_chaos=chaos.to_dict() if chaos is not None else None,
        quiet=args.quiet,
        monitor_backend=args.monitor_backend,
        snapshot=args.snapshot,
        snapshot_every_s=args.snapshot_every,
    )
    host, port = daemon.address
    if not args.quiet:
        print(f"partitioning daemon listening on {host}:{port}", flush=True)
        if daemon.restored:
            print(f"restored daemon state from {args.snapshot}", flush=True)
    if daemon.supervise:
        until: Optional[int] = daemon.supervise  # exit when every agent finished
    elif args.once:
        until = 1
    else:
        until = None  # serve until --max-seconds, SIGTERM or Ctrl-C

    previous_sigterm = signal.getsignal(signal.SIGTERM)

    def _on_sigterm(_signum, _frame) -> None:  # pragma: no cover - signal path
        # Orderly shutdown: run() exits at the next pump boundary and
        # close() takes the final snapshot.
        daemon.request_stop()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (embedding)
        previous_sigterm = None
    try:
        summary = daemon.run(until_byes=until, max_seconds=args.max_seconds)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        summary = daemon.summary()
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        if args.replay_log and not daemon.killed:
            daemon.replay.save(args.replay_log)
        daemon.close()
    if not args.quiet:
        print(
            f"served {summary['hosts']} host(s), {summary['decisions']} mask "
            f"decisions, {summary['frame_errors']} frame errors"
        )
        if args.replay_log:
            print(f"saved replay log to {args.replay_log}")
    return 0


def _agent_command(args: argparse.Namespace) -> int:
    from repro.runtime.executors.tcp import parse_address
    from repro.service.agent import run_agent

    chaos = _parse_chaos(args.chaos)
    return run_agent(
        parse_address(args.connect),
        host_id=args.host_id,
        workload=args.workload,
        batches=args.batches,
        seed=args.seed,
        n_ways=args.ways,
        chaos=chaos.to_dict() if chaos is not None else None,
        quiet=args.quiet,
    )


def _tournament_run_command(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.tournament import load_tournament_spec, run_tournament

    spec = load_tournament_spec(args.spec)
    executor = None
    if args.executor is not None:
        executor = ExecutorSpec(
            name=args.executor, workers=args.workers, bind=args.bind
        )
    elif args.workers is not None or args.bind is not None:
        raise SpecError(
            "--workers/--bind configure the executor selected by --executor; "
            "pass --executor as well (or set them in the spec's [executor] "
            "table)"
        )
    if args.resume and args.checkpoint is None:
        raise SpecError(
            "--resume reads completed scenarios from --checkpoint; pass "
            "--checkpoint FILE as well"
        )
    extra: dict = dict(
        executor=executor, checkpoint=args.checkpoint, resume=args.resume
    )
    if args.fault_tolerance is not None:
        import json

        from repro.experiments.specs import FaultToleranceSpec

        try:
            data = json.loads(args.fault_tolerance)
        except ValueError as exc:
            raise SpecError(
                f"--fault-tolerance is not valid JSON: {exc}"
            ) from exc
        extra["fault_tolerance"] = FaultToleranceSpec.coerce(
            data, where="--fault-tolerance"
        )
    if args.jobs is not None:
        extra["jobs"] = args.jobs or None
    result = run_tournament(spec, **extra)
    markdown = result.render_markdown()
    print(markdown, end="")
    _print_degraded(result.failures)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"\nwrote leaderboard to {args.markdown}")
    if args.out:
        result.save(args.out)
        print(
            f"\nsaved verdict ({len(result.standings)} standings, "
            f"{len(result.rows)} rows) to {args.out}"
        )
    return 0


def _tournament_report_command(args: argparse.Namespace) -> int:
    from repro.tournament import TournamentResult

    result = TournamentResult.load(args.result)
    markdown = result.render_markdown()
    print(markdown, end="")
    _print_degraded(result.failures)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"\nwrote leaderboard to {args.markdown}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_report_dict(), handle, indent=2)
            handle.write("\n")
        print(f"\nwrote machine-readable report to {args.json}")
    return 0


def _tournament_gate_command(args: argparse.Namespace) -> int:
    from repro.tournament import (
        TournamentResult,
        check_regression,
        load_baseline,
        nerf_rows,
        rejudge,
        write_baseline,
    )

    result = TournamentResult.load(args.result)
    if args.nerf is not None:
        result = rejudge(result, nerf_rows(result.rows, args.nerf, args.nerf_factor))
        print(
            f"(drill) nerfed {args.nerf!r} by x{args.nerf_factor:g} before judging"
        )
    if args.update:
        write_baseline(result, args.baseline)
        print(
            f"blessed tournament {result.name!r} "
            f"({len(result.standings)} policies, {result.n_complete_units} "
            f"paired units) as baseline {args.baseline}"
        )
        return 0
    baseline = load_baseline(args.baseline)
    violations = check_regression(result, baseline, margin=args.margin)
    if not violations:
        print(
            f"gate OK: {len(result.standings)} policies within the noise "
            f"band of baseline {args.baseline}"
        )
        return 0
    print(f"gate FAILED: {len(violations)} regression(s) vs {args.baseline}")
    for violation in violations:
        print(f"  - [{violation['policy']}/{violation['check']}] {violation['message']}")
    return 1


def _tournament_command(args: argparse.Namespace) -> int:
    if args.tournament_command == "run":
        return _tournament_run_command(args)
    if args.tournament_command == "report":
        return _tournament_report_command(args)
    return _tournament_gate_command(args)


def _sweep_command(args: argparse.Namespace) -> int:
    engine = EngineSpec(
        instructions_per_run=args.instructions,
        min_completions=args.min_completions,
        record_traces=False,
        backend=args.engine_backend,
    )
    spec = build_sweep_study(
        args.name,
        args.kind,
        args.policies,
        args.workloads,
        ways=args.ways,
        seeds=args.seeds,
        engine=engine,
        solver=SolverSpec(backend=args.solver_backend),
        jobs=args.jobs or None,
    )
    if args.dump_spec:
        dump_study_spec(spec, args.dump_spec)
        print(f"wrote study spec to {args.dump_spec}\n")
    return _report_study(run_study(spec), args.out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig1":
        print(render_fig1(fig1_curves()))
    elif args.command == "table1":
        print(render_table1(table1_classification()))
    elif args.command == "fig2":
        print(
            render_fig2(
                fig2_optimal_breakdown(args.workloads, args.size, backend=args.backend)
            )
        )
    elif args.command == "fig3":
        print(
            render_fig3(
                fig3_clustering_vs_partitioning(
                    args.sizes, args.per_size, backend=args.backend
                )
            )
        )
    elif args.command == "fig4":
        trace = fig4_fotonik3d_trace()
        rows = [
            [f"{t:.3f}", f"{m:.1f}"] for t, m in zip(trace["time_s"], trace["llcmpkc"])
        ]
        print(format_table(["time (s)", "LLCMPKC"], rows))
    elif args.command == "fig5":
        matrix = fig5_workload_matrix()
        rows = [
            [name, ", ".join(f"{b}x{c}" for b, c in sorted(counts.items()))]
            for name, counts in matrix.items()
        ]
        print(format_table(["workload", "composition"], rows))
    elif args.command == "fig6":
        workloads = static_study_workloads(max_size=args.max_size)
        rows = fig6_static_study(
            workloads,
            policies=default_static_policies(args.backend),
            jobs=args.jobs or None,
        )
        print(render_fig6(rows))
        print()
        summary = summarize_static_study(rows)
        print(
            format_table(
                ["policy", "mean norm. unfairness", "mean norm. STP"],
                [
                    [p, f"{s['mean_norm_unfairness']:.3f}", f"{s['mean_norm_stp']:.3f}"]
                    for p, s in summary.items()
                ],
            )
        )
    elif args.command == "fig7":
        workloads = dynamic_study_workloads()
        if args.quick:
            workloads = [w for w in workloads if w.size <= 8]
        config = EngineConfig(
            instructions_per_run=args.instructions,
            min_completions=2,
            record_traces=False,
            backend=args.backend,
        )
        rows = fig7_dynamic_study(workloads, engine_config=config, jobs=args.jobs or None)
        print(render_fig7(rows))
        print()
        summary = summarize_dynamic_study(rows)
        print(
            format_table(
                ["policy", "mean norm. unfairness", "mean norm. STP"],
                [
                    [p, f"{s['mean_norm_unfairness']:.3f}", f"{s['mean_norm_stp']:.3f}"]
                    for p, s in summary.items()
                ],
            )
        )
    elif args.command == "table2":
        print(render_table2(table2_algorithm_cost(args.sizes, args.repetitions)))
    elif args.command == "run":
        return _run_study_command(args)
    elif args.command == "worker":
        return _worker_command(args)
    elif args.command == "serve":
        return _serve_command(args)
    elif args.command == "agent":
        return _agent_command(args)
    elif args.command == "sweep":
        return _sweep_command(args)
    elif args.command == "tournament":
        return _tournament_command(args)
    else:  # pragma: no cover - argparse enforces the choices
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
