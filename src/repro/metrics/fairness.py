"""Fairness and throughput metrics (Section 2.1 of the paper).

* **Slowdown** of an application (Eq. 1/2): completion time (or inverse IPC)
  under the evaluated scheme divided by the alone value.
* **Unfairness** (Eq. 3): max slowdown / min slowdown across the workload
  (lower is better; 1.0 is perfectly fair).
* **STP** — system throughput, a.k.a. weighted speedup (Eq. 4): sum of the
  reciprocal slowdowns (higher is better; equals the application count when
  nobody slows down).

The module also provides ANTT (average normalised turnaround time) and the
Jain fairness index, which are common companions in the literature and are
used by the extended analysis benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "slowdown_from_ipc",
    "slowdown_from_times",
    "unfairness",
    "stp",
    "antt",
    "jain_index",
    "WorkloadMetrics",
    "compute_metrics",
]


def slowdown_from_ipc(ipc_alone: float, ipc_shared: float) -> float:
    """Slowdown of one application from its alone and shared IPC (Eq. 2)."""
    if ipc_alone <= 0 or ipc_shared <= 0:
        raise ReproError(
            f"IPC values must be positive (alone={ipc_alone}, shared={ipc_shared})"
        )
    return ipc_alone / ipc_shared

def slowdown_from_times(time_shared: float, time_alone: float) -> float:
    """Slowdown of one application from completion times (Eq. 1)."""
    if time_alone <= 0 or time_shared <= 0:
        raise ReproError(
            f"completion times must be positive (shared={time_shared}, alone={time_alone})"
        )
    return time_shared / time_alone


def _validate_slowdowns(slowdowns: Sequence[float]) -> np.ndarray:
    values = np.asarray(list(slowdowns), dtype=float)
    if values.size == 0:
        raise ReproError("at least one slowdown value is required")
    if np.any(values <= 0):
        raise ReproError("slowdowns must be positive")
    return values


def unfairness(slowdowns: Sequence[float]) -> float:
    """Unfairness metric (Eq. 3): max slowdown over min slowdown."""
    values = _validate_slowdowns(slowdowns)
    return float(values.max() / values.min())


def stp(slowdowns: Sequence[float]) -> float:
    """System throughput / weighted speedup (Eq. 4): sum of 1/slowdown."""
    values = _validate_slowdowns(slowdowns)
    return float(np.sum(1.0 / values))


def antt(slowdowns: Sequence[float]) -> float:
    """Average normalised turnaround time: the arithmetic mean slowdown."""
    values = _validate_slowdowns(slowdowns)
    return float(values.mean())


def jain_index(slowdowns: Sequence[float]) -> float:
    """Jain fairness index over per-application *speedups* (1/slowdown).

    1.0 means perfectly even degradation; 1/n means one application absorbs
    all of it.
    """
    values = 1.0 / _validate_slowdowns(slowdowns)
    return float(values.sum() ** 2 / (values.size * np.sum(values**2)))


@dataclass(frozen=True)
class WorkloadMetrics:
    """All workload-level metrics for one evaluated configuration."""

    slowdowns: Dict[str, float]
    unfairness: float
    stp: float
    antt: float
    jain: float

    @property
    def n_apps(self) -> int:
        return len(self.slowdowns)

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns.values())

    @property
    def min_slowdown(self) -> float:
        return min(self.slowdowns.values())

    def worst_app(self) -> str:
        """Name of the application suffering the highest slowdown."""
        return max(self.slowdowns, key=self.slowdowns.get)

    def as_dict(self) -> Dict[str, float]:
        return {
            "unfairness": self.unfairness,
            "stp": self.stp,
            "antt": self.antt,
            "jain": self.jain,
            "max_slowdown": self.max_slowdown,
            "min_slowdown": self.min_slowdown,
        }


def compute_metrics(slowdowns: Mapping[str, float]) -> WorkloadMetrics:
    """Build a :class:`WorkloadMetrics` record from per-application slowdowns."""
    if not slowdowns:
        raise ReproError("cannot compute metrics for an empty workload")
    values = list(slowdowns.values())
    return WorkloadMetrics(
        slowdowns=dict(slowdowns),
        unfairness=unfairness(values),
        stp=stp(values),
        antt=antt(values),
        jain=jain_index(values),
    )
