"""Aggregation helpers used by the evaluation harness.

The paper reports per-workload unfairness and STP normalised to the stock
Linux configuration, and averages reductions across workloads.  These helpers
keep that arithmetic in one place (geometric means for ratio quantities,
normalisation, percentage improvements).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "geometric_mean",
    "normalise",
    "percent_reduction",
    "average_percent_reduction",
    "normalised_series",
    "short_mean",
    "RollingMeanWindow",
    "RollingMeanRing",
]


def short_mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a short sequence, bit-identical to ``np.mean``.

    NumPy's reduction is sequential below eight elements (it switches to an
    unrolled pairwise scheme from eight onwards), so for the short rolling
    windows the online monitors keep, a plain Python loop produces the same
    bits at a fraction of the array-conversion cost.  Longer inputs fall back
    to ``np.mean`` itself.  The equivalence is pinned by the test suite.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        raise ReproError("mean of an empty sequence")
    if n < 8:
        total = 0.0
        for value in values:
            total += value
        return total / n
    return float(np.mean(values))


class RollingMeanWindow:
    """Rolling mean over the last ``maxlen`` samples with O(1) mean reads,
    bit-identical to ``np.mean`` over the same window.

    The online monitors consult their rolling averages on *every* sample, so
    the repeated :func:`short_mean` full-window scans (deque -> list -> loop)
    sat on the driver-layer hot path.  A classic running sum (add the new
    sample, subtract the evicted one) would be O(1) but **not** bit-identical:
    float addition does not associate, and ``np.mean`` below eight elements is
    a strict left-to-right reduction.  Exactness therefore requires every
    window's sum to be *built* left-to-right — so this structure keeps one
    running partial sum per live window start (at most ``maxlen``).  Appending
    a sample advances each partial sum by one addition and opens a new one;
    the oldest partial sum is then, by construction, exactly the left-to-right
    sum of the current window, making the mean a single division.

    Appends cost ``min(len, maxlen)`` additions — the same arithmetic the
    full-window rescan performed — but reads are O(1) and no per-read list
    materialisation happens, which is what the monitors pay for today.

    For windows of eight or more samples ``np.mean`` switches to its pairwise
    (unrolled) reduction, which cannot be maintained incrementally; those
    windows fall back to :func:`short_mean` per read, preserving exactness.
    The equivalence is pinned by the test suite either way.
    """

    __slots__ = ("maxlen", "_values", "_partials")

    #: Window length below which NumPy reduces strictly left-to-right.
    _PAIRWISE_CUTOVER = 8

    def __init__(self, maxlen: int) -> None:
        if maxlen < 1:
            raise ReproError(f"window length must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._values: Deque[float] = deque(maxlen=maxlen)
        self._partials: Deque[float] = deque()

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    @property
    def full(self) -> bool:
        return len(self._values) == self.maxlen

    def append(self, value: float) -> None:
        value = float(value)
        if self.maxlen < self._PAIRWISE_CUTOVER:
            if len(self._values) == self.maxlen:
                # The evicted sample's window start dies with it.
                self._partials.popleft()
            for index in range(len(self._partials)):
                self._partials[index] += value
            # Seed with 0.0 + value (not value) to mirror the reduction's
            # zero-initialised accumulator (normalises -0.0 to +0.0).
            self._partials.append(0.0 + value)
        self._values.append(value)

    def clear(self) -> None:
        self._values.clear()
        self._partials.clear()

    def mean(self) -> float:
        """Mean of the current window; raises on an empty window."""
        n = len(self._values)
        if n == 0:
            raise ReproError("mean of an empty window")
        if self.maxlen < self._PAIRWISE_CUTOVER:
            return self._partials[0] / n
        return short_mean(self._values)


class RollingMeanRing:
    """Multi-column :class:`RollingMeanWindow` in one flat ring buffer.

    The online monitors track two rolling averages per application (LLCMPKC
    and stall fraction) over the *same* window of samples.  Keeping two
    independent :class:`RollingMeanWindow` deques doubles the bookkeeping and
    rules out array-level batching, so this structure stores the samples and
    the per-window-start partial sums for all ``columns`` side by side in two
    ``(maxlen, columns)`` arrays laid out as a ring:

    * slot ``(start + j) % maxlen`` holds the ``j``-th oldest live sample and
      the partial sum of the window beginning at that sample;
    * appending evicts the oldest partial when full, adds the new sample once
      to every live partial (the same single float addition per window start
      the deque loop performed, so every mean stays bit-identical to
      ``np.mean`` over the window) and seeds a fresh partial with
      ``0.0 + value`` (normalising -0.0, mirroring the reduction's
      zero-initialised accumulator);
    * ``means()`` is one vector divide: ``partials[start] / len``.

    Windows of :data:`RollingMeanWindow._PAIRWISE_CUTOVER` (eight) or more
    samples fall back to :func:`short_mean` per column per read, exactly like
    the deque implementation, because NumPy's pairwise reduction cannot be
    maintained incrementally.  The per-column equivalence with
    :class:`RollingMeanWindow` is pinned by the test suite.
    """

    __slots__ = ("maxlen", "columns", "_values", "_partials", "_start", "_live")

    _PAIRWISE_CUTOVER = RollingMeanWindow._PAIRWISE_CUTOVER

    def __init__(self, maxlen: int, columns: int = 2) -> None:
        if maxlen < 1:
            raise ReproError(f"window length must be >= 1, got {maxlen}")
        if columns < 1:
            raise ReproError(f"column count must be >= 1, got {columns}")
        self.maxlen = maxlen
        self.columns = columns
        self._values = np.zeros((maxlen, columns))
        self._partials = np.zeros((maxlen, columns))
        self._start = 0  # ring slot of the oldest live sample / partial
        self._live = 0  # number of live samples (== live partials)

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        return self._live == self.maxlen

    def append(self, sample: Sequence[float]) -> None:
        """Ingest one sample row (one float per column)."""
        row = np.asarray(sample, dtype=float)
        maxlen = self.maxlen
        if self._live == maxlen:
            # The evicted sample's window start dies with it.
            self._start = (self._start + 1) % maxlen
            self._live -= 1
        # One addition per live partial per column — identical arithmetic to
        # the per-column deque loop.  The live slots form a contiguous range
        # modulo maxlen, so at most two slice adds cover them.
        start, live = self._start, self._live
        end = start + live
        if end <= maxlen:
            self._partials[start:end] += row
        else:
            self._partials[start:] += row
            self._partials[: end - maxlen] += row
        slot = end % maxlen
        self._partials[slot] = row + 0.0
        self._values[slot] = row
        self._live += 1

    def clear(self) -> None:
        self._start = 0
        self._live = 0

    def window(self, column: int) -> list:
        """The live samples of ``column``, oldest first."""
        order = (self._start + np.arange(self._live)) % self.maxlen
        return [float(v) for v in self._values[order, column]]

    def means(self) -> np.ndarray:
        """Per-column means of the current window; raises when empty."""
        if self._live == 0:
            raise ReproError("mean of an empty window")
        if self.maxlen < self._PAIRWISE_CUTOVER:
            return self._partials[self._start] / self._live
        return np.array([short_mean(self.window(c)) for c in range(self.columns)])

    def mean(self, column: int) -> float:
        """Mean of one column of the current window; raises when empty."""
        if self._live == 0:
            raise ReproError("mean of an empty window")
        if self.maxlen < self._PAIRWISE_CUTOVER:
            return float(self._partials[self._start, column]) / self._live
        return short_mean(self.window(column))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for completion times in the paper's methodology)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ReproError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def normalise(value: float, baseline: float) -> float:
    """Ratio of ``value`` to ``baseline`` (e.g. unfairness vs stock Linux)."""
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return value / baseline


def percent_reduction(value: float, baseline: float) -> float:
    """Percentage reduction of ``value`` relative to ``baseline``.

    Positive numbers mean improvement for lower-is-better metrics such as
    unfairness (the paper's "20.5% reduction in unfairness" figures).
    """
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - value) / baseline


def average_percent_reduction(
    values: Mapping[str, float], baselines: Mapping[str, float]
) -> float:
    """Mean percentage reduction across workloads (keys must match)."""
    if set(values) != set(baselines):
        raise ReproError("values and baselines must cover the same workloads")
    if not values:
        raise ReproError("cannot average over zero workloads")
    reductions = [percent_reduction(values[k], baselines[k]) for k in values]
    return float(np.mean(reductions))


def normalised_series(
    values: Mapping[str, float], baselines: Mapping[str, float]
) -> Dict[str, float]:
    """Normalise a per-workload series to a per-workload baseline."""
    if set(values) != set(baselines):
        raise ReproError("values and baselines must cover the same workloads")
    return {key: normalise(values[key], baselines[key]) for key in values}
