"""Aggregation helpers used by the evaluation harness.

The paper reports per-workload unfairness and STP normalised to the stock
Linux configuration, and averages reductions across workloads.  These helpers
keep that arithmetic in one place (geometric means for ratio quantities,
normalisation, percentage improvements).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "geometric_mean",
    "normalise",
    "percent_reduction",
    "average_percent_reduction",
    "normalised_series",
    "short_mean",
]


def short_mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a short sequence, bit-identical to ``np.mean``.

    NumPy's reduction is sequential below eight elements (it switches to an
    unrolled pairwise scheme from eight onwards), so for the short rolling
    windows the online monitors keep, a plain Python loop produces the same
    bits at a fraction of the array-conversion cost.  Longer inputs fall back
    to ``np.mean`` itself.  The equivalence is pinned by the test suite.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        raise ReproError("mean of an empty sequence")
    if n < 8:
        total = 0.0
        for value in values:
            total += value
        return total / n
    return float(np.mean(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for completion times in the paper's methodology)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ReproError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def normalise(value: float, baseline: float) -> float:
    """Ratio of ``value`` to ``baseline`` (e.g. unfairness vs stock Linux)."""
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return value / baseline


def percent_reduction(value: float, baseline: float) -> float:
    """Percentage reduction of ``value`` relative to ``baseline``.

    Positive numbers mean improvement for lower-is-better metrics such as
    unfairness (the paper's "20.5% reduction in unfairness" figures).
    """
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - value) / baseline


def average_percent_reduction(
    values: Mapping[str, float], baselines: Mapping[str, float]
) -> float:
    """Mean percentage reduction across workloads (keys must match)."""
    if set(values) != set(baselines):
        raise ReproError("values and baselines must cover the same workloads")
    if not values:
        raise ReproError("cannot average over zero workloads")
    reductions = [percent_reduction(values[k], baselines[k]) for k in values]
    return float(np.mean(reductions))


def normalised_series(
    values: Mapping[str, float], baselines: Mapping[str, float]
) -> Dict[str, float]:
    """Normalise a per-workload series to a per-workload baseline."""
    if set(values) != set(baselines):
        raise ReproError("values and baselines must cover the same workloads")
    return {key: normalise(values[key], baselines[key]) for key in values}
