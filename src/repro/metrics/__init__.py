"""Fairness / throughput metrics and aggregation helpers."""

from repro.metrics.fairness import (
    WorkloadMetrics,
    antt,
    compute_metrics,
    jain_index,
    slowdown_from_ipc,
    slowdown_from_times,
    stp,
    unfairness,
)
from repro.metrics.aggregate import (
    RollingMeanWindow,
    average_percent_reduction,
    geometric_mean,
    normalise,
    normalised_series,
    percent_reduction,
    short_mean,
)

__all__ = [
    "RollingMeanWindow",
    "short_mean",
    "WorkloadMetrics",
    "antt",
    "compute_metrics",
    "jain_index",
    "slowdown_from_ipc",
    "slowdown_from_times",
    "stp",
    "unfairness",
    "average_percent_reduction",
    "geometric_mean",
    "normalise",
    "normalised_series",
    "percent_reduction",
]
