"""Plain-text rendering of the evaluation data.

The benchmark harness prints the regenerated tables/figures as aligned text
tables (the paper plots them; absolute numbers are not expected to match a
real Skylake machine, only the shapes).  Keeping the formatting here keeps the
benchmark modules tiny and makes the output unit-testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.figures import DynamicStudyRow, StaticStudyRow

__all__ = [
    "format_table",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig6",
    "render_fig7",
    "render_table1",
    "render_table2",
    "summarize_static_study",
    "summarize_dynamic_study",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(columns), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_fig1(data: Mapping[str, Mapping[str, Sequence[float]]]) -> str:
    rows = []
    benchmarks = sorted(data)
    ways = data[benchmarks[0]]["ways"]
    for index, way in enumerate(ways):
        row = [way]
        for benchmark in benchmarks:
            row.append(f"{data[benchmark]['slowdown'][index]:.3f}")
            row.append(f"{data[benchmark]['llcmpkc'][index]:.1f}")
        rows.append(row)
    headers = ["ways"]
    for benchmark in benchmarks:
        headers.extend([f"{benchmark} slowdown", f"{benchmark} LLCMPKC"])
    return format_table(headers, rows)


def render_table1(classes: Mapping[str, str]) -> str:
    return format_table(
        ["benchmark", "class"], [[name, klass] for name, klass in sorted(classes.items())]
    )


def render_fig2(breakdown: Mapping[str, Mapping[int, float]]) -> str:
    sizes = sorted(breakdown["cluster_count"])
    rows = []
    for size in sizes:
        rows.append(
            [
                size,
                f"{breakdown['cluster_count'][size]:.0f}",
                f"{breakdown['streaming'].get(size, 0.0):.2f}",
                f"{breakdown['sensitive'].get(size, 0.0):.2f}",
                f"{breakdown['light'].get(size, 0.0):.2f}",
            ]
        )
    return format_table(
        ["cluster size (ways)", "cluster count", "avg streaming", "avg sensitive", "avg light"],
        rows,
    )


def render_fig3(ratios: Mapping[int, float]) -> str:
    rows = [[count, f"{ratio:.3f}"] for count, ratio in sorted(ratios.items())]
    return format_table(["#applications", "partitioning unfairness / clustering"], rows)


def render_fig6(rows: Sequence[StaticStudyRow]) -> str:
    table_rows = [
        [
            row.workload,
            row.size,
            row.policy,
            f"{row.normalized_unfairness:.3f}",
            f"{row.normalized_stp:.3f}",
        ]
        for row in rows
    ]
    return format_table(
        ["workload", "size", "policy", "norm. unfairness", "norm. STP"], table_rows
    )


def render_fig7(rows: Sequence[DynamicStudyRow]) -> str:
    table_rows = [
        [
            row.workload,
            row.size,
            row.policy,
            f"{row.normalized_unfairness:.3f}",
            f"{row.normalized_stp:.3f}",
            row.repartitions,
            row.sampling_entries,
        ]
        for row in rows
    ]
    return format_table(
        [
            "workload",
            "size",
            "policy",
            "norm. unfairness",
            "norm. STP",
            "repartitions",
            "sampling entries",
        ],
        table_rows,
    )


def render_table2(costs: Mapping[int, Mapping[str, float]]) -> str:
    rows = []
    for count in sorted(costs):
        entry = costs[count]
        rows.append(
            [
                count,
                f"{entry['lfoc_s'] * 1e3:.4f}",
                f"{entry['kpart_s'] * 1e3:.4f}",
                f"{entry['ratio']:.0f}x",
            ]
        )
    return format_table(["#apps", "LFOC (ms)", "KPart (ms)", "KPart / LFOC"], rows)


def _per_policy(rows: Sequence, attr: str) -> Dict[str, List[float]]:
    result: Dict[str, List[float]] = {}
    for row in rows:
        result.setdefault(row.policy, []).append(getattr(row, attr))
    return result


def summarize_static_study(rows: Sequence[StaticStudyRow]) -> Dict[str, Dict[str, float]]:
    """Per-policy averages of the Fig. 6 data (normalised metrics)."""
    unfairness = _per_policy(rows, "normalized_unfairness")
    stp = _per_policy(rows, "normalized_stp")
    return {
        policy: {
            "mean_norm_unfairness": float(np.mean(unfairness[policy])),
            "min_norm_unfairness": float(np.min(unfairness[policy])),
            "max_norm_unfairness": float(np.max(unfairness[policy])),
            "mean_norm_stp": float(np.mean(stp[policy])),
            "mean_unfairness_reduction_pct": float(
                100.0 * (1.0 - np.mean(unfairness[policy]))
            ),
        }
        for policy in unfairness
    }


def summarize_dynamic_study(rows: Sequence[DynamicStudyRow]) -> Dict[str, Dict[str, float]]:
    """Per-policy averages of the Fig. 7 data (normalised metrics)."""
    unfairness = _per_policy(rows, "normalized_unfairness")
    stp = _per_policy(rows, "normalized_stp")
    summary = {}
    for policy in unfairness:
        summary[policy] = {
            "mean_norm_unfairness": float(np.mean(unfairness[policy])),
            "mean_norm_stp": float(np.mean(stp[policy])),
            "mean_unfairness_reduction_pct": float(
                100.0 * (1.0 - np.mean(unfairness[policy]))
            ),
        }
    return summary
