"""Builders for every table and figure of the paper's evaluation.

Each function regenerates the *data* behind one figure or table (the paper
plots them; we return plain dictionaries / lists so the benchmark harness can
print the same rows and the test suite can assert the headline shapes).  The
per-experiment index in DESIGN.md maps each figure to the function here and to
the benchmark module that drives it.

All functions take explicit scale knobs (number of workloads, workload sizes,
instruction budgets) so the benchmark harness can run a quick default and a
``full``-scale variant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.apps.catalog import build_catalog, build_phased_profile, build_profile
from repro.core.classification import ClassificationThresholds, classify_profile
from repro.errors import ReproError
from repro.experiments import (
    EngineSpec,
    PolicySpec,
    ScenarioSpec,
    StudySpec,
    WorkloadSpec,
    run_study,
)
from repro.hardware.platform import PlatformSpec, skylake_gold_6138
from repro.optimal import (
    branch_and_bound_clustering,
    local_search_clustering,
    optimal_partitioning,
    CachedObjective,
)
from repro.policies import (
    BestStaticPolicy,
    ClusteringPolicy,
    DunnPolicy,
    KPartPolicy,
    LfocPolicy,
)
from repro.runtime import (
    DunnUserLevelDaemon,
    EngineConfig,
    LfocSchedulerPlugin,
)
from repro.workloads import Workload, random_workload

__all__ = [
    "fig1_curves",
    "table1_classification",
    "fig2_optimal_breakdown",
    "fig3_clustering_vs_partitioning",
    "fig4_fotonik3d_trace",
    "fig5_workload_matrix",
    "fig6_static_study",
    "fig7_dynamic_study",
    "table2_algorithm_cost",
    "StaticStudyRow",
    "DynamicStudyRow",
]


# ---------------------------------------------------------------------------
# Fig. 1 — slowdown & LLCMPKC vs way count for lbm / xalancbmk
# ---------------------------------------------------------------------------


def fig1_curves(
    benchmarks: Sequence[str] = ("lbm06", "xalancbmk06"),
    platform: Optional[PlatformSpec] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-way slowdown and LLCMPKC curves for the Fig. 1 benchmarks.

    Returns ``{benchmark: {"ways": [...], "slowdown": [...], "llcmpkc": [...]}}``.
    """
    platform = platform or skylake_gold_6138()
    result: Dict[str, Dict[str, List[float]]] = {}
    for name in benchmarks:
        profile = build_profile(name, platform.llc_ways)
        result[name] = {
            "ways": list(range(1, platform.llc_ways + 1)),
            "slowdown": [float(v) for v in profile.slowdown_table()],
            "llcmpkc": [float(v) for v in profile.llcmpkc_table()],
        }
    return result


# ---------------------------------------------------------------------------
# Table 1 — classification of the catalogue
# ---------------------------------------------------------------------------


def table1_classification(
    platform: Optional[PlatformSpec] = None,
    thresholds: Optional[ClassificationThresholds] = None,
) -> Dict[str, str]:
    """Class assigned by the Table 1 criteria to every catalogued benchmark."""
    platform = platform or skylake_gold_6138()
    thresholds = thresholds or ClassificationThresholds()
    catalog = build_catalog(platform.llc_ways)
    return {
        name: classify_profile(profile, thresholds).value
        for name, profile in sorted(catalog.items())
    }


# ---------------------------------------------------------------------------
# Fig. 2 — breakdown of the fairness-optimal clustering
# ---------------------------------------------------------------------------


def fig2_optimal_breakdown(
    n_workloads: int = 8,
    workload_size: int = 8,
    platform: Optional[PlatformSpec] = None,
    seed: int = 7,
    exact_limit: int = 8,
    backend: str = "tabulated",
) -> Dict[str, Dict[int, float]]:
    """Cluster-size statistics of the fairness-optimal clustering (Fig. 2).

    For ``n_workloads`` random mixes of ``workload_size`` applications,
    computes the fairness-optimal clustering and aggregates, per cluster size
    (in ways): the number of clusters of that size and the average number of
    streaming / sensitive / light applications they hold.

    The paper uses 20 mixes of 10 applications; the default here is scaled
    down (8 mixes of 8 applications) so the benchmark completes quickly —
    pass larger values to reproduce the full configuration.
    """
    platform = platform or skylake_gold_6138()
    rng = np.random.default_rng(seed)
    cluster_count: Dict[int, float] = {}
    class_count: Dict[str, Dict[int, float]] = {
        "streaming": {},
        "sensitive": {},
        "light": {},
    }
    for index in range(n_workloads):
        workload = random_workload(f"fig2-{index}", workload_size, kind="S", rng=rng)
        profiles = workload.profiles(platform.llc_ways)
        if len(profiles) <= exact_limit:
            result = branch_and_bound_clustering(
                platform, profiles, objective="fairness", backend=backend
            )
        else:
            result = local_search_clustering(
                platform, profiles, objective="fairness", seed=seed + index
            )
        classes = {
            name: classify_profile(profile).value for name, profile in profiles.items()
        }
        for cluster in result.solution.clusters:
            size = cluster.ways
            cluster_count[size] = cluster_count.get(size, 0.0) + 1.0
            for app in cluster.apps:
                table = class_count[classes[app]]
                table[size] = table.get(size, 0.0) + 1.0
    # Average application counts per cluster of each size.
    breakdown: Dict[str, Dict[int, float]] = {"cluster_count": cluster_count}
    for klass, table in class_count.items():
        breakdown[klass] = {
            size: table.get(size, 0.0) / cluster_count[size] for size in cluster_count
        }
    return breakdown


# ---------------------------------------------------------------------------
# Fig. 3 — optimal clustering vs optimal partitioning
# ---------------------------------------------------------------------------


def fig3_clustering_vs_partitioning(
    app_counts: Sequence[int] = (4, 5, 6, 7, 8),
    workloads_per_count: int = 3,
    platform: Optional[PlatformSpec] = None,
    seed: int = 11,
    exact_limit: int = 8,
    backend: str = "tabulated",
) -> Dict[int, float]:
    """Average unfairness of optimal partitioning normalised to optimal clustering.

    The paper sweeps 4–11 applications on the 11-way platform; the exact
    search is only tractable up to ~8 applications in pure Python, so the
    default sweep stops there and larger counts use the local-search
    approximation of the optimal clustering (strict partitioning remains an
    exact search over compositions, which stays cheap).
    """
    platform = platform or skylake_gold_6138()
    rng = np.random.default_rng(seed)
    result: Dict[int, float] = {}
    for count in app_counts:
        if count > platform.llc_ways:
            raise ReproError(
                f"strict partitioning needs at most {platform.llc_ways} applications"
            )
        ratios = []
        for index in range(workloads_per_count):
            workload = random_workload(
                f"fig3-{count}-{index}", count, kind="S", rng=rng
            )
            profiles = workload.profiles(platform.llc_ways)
            if backend == "tabulated" and count <= exact_limit:
                # One table build serves both searches (the role the shared
                # CachedObjective plays on the reference path).
                from repro.optimal import (
                    TabulatedObjective,
                    tabulated_branch_and_bound,
                    tabulated_optimal_partitioning,
                )

                tables = TabulatedObjective(platform, profiles)
                clustering = tabulated_branch_and_bound(
                    platform, profiles, objective="fairness", tables=tables
                )
                partitioning = tabulated_optimal_partitioning(
                    platform, profiles, objective="fairness", tables=tables
                )
            else:
                shared = CachedObjective(platform, profiles)
                if count <= exact_limit:
                    clustering = branch_and_bound_clustering(
                        platform, profiles, objective="fairness", objective_fn=shared
                    )
                else:
                    clustering = local_search_clustering(
                        platform,
                        profiles,
                        objective="fairness",
                        seed=seed + count * 100 + index,
                        objective_fn=shared,
                    )
                partitioning = optimal_partitioning(
                    platform, profiles, objective="fairness", objective_fn=shared
                )
            ratios.append(partitioning.unfairness / clustering.unfairness)
        result[count] = float(np.mean(ratios))
    return result


# ---------------------------------------------------------------------------
# Fig. 4 — LLCMPKC over time for fotonik3d
# ---------------------------------------------------------------------------


def fig4_fotonik3d_trace(
    benchmark: str = "fotonik3d17",
    platform: Optional[PlatformSpec] = None,
    instructions: float = 1.5e9,
    sample_window: float = 25e6,
) -> Dict[str, List[float]]:
    """LLCMPKC of a phased benchmark over the start of its execution (Fig. 4).

    The benchmark runs alone with the whole LLC; the trace samples its miss
    rate every ``sample_window`` instructions, exposing the initial
    light-sharing phase followed by the long streaming phase.
    """
    platform = platform or skylake_gold_6138()
    phased = build_phased_profile(benchmark, platform.llc_ways)
    points_time: List[float] = []
    points_mpkc: List[float] = []
    retired = 0.0
    elapsed_cycles = 0.0
    while retired < instructions:
        profile = phased.profile_at(retired)
        chunk = min(sample_window, phased.instructions_until_phase_change(retired))
        chunk = max(min(chunk, instructions - retired), 1.0)
        cycles = chunk / profile.ipc_alone
        elapsed_cycles += cycles
        retired += chunk
        points_time.append(platform.cycles_to_seconds(elapsed_cycles))
        points_mpkc.append(profile.llcmpkc_at(float(platform.llc_ways)))
    return {"time_s": points_time, "llcmpkc": points_mpkc}


# ---------------------------------------------------------------------------
# Fig. 5 — workload composition matrix
# ---------------------------------------------------------------------------


def fig5_workload_matrix() -> Dict[str, Dict[str, int]]:
    """Instance counts per (workload, benchmark) for the S and P suites."""
    from repro.workloads import composition_matrix

    return composition_matrix()


# ---------------------------------------------------------------------------
# Fig. 6 — static clustering study
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticStudyRow:
    """One (workload, policy) cell of the Fig. 6 study."""

    workload: str
    size: int
    policy: str
    unfairness: float
    stp: float
    normalized_unfairness: float
    normalized_stp: float


def default_static_policies(backend: str = "tabulated") -> List[ClusteringPolicy]:
    """The policy line-up of Fig. 6 (stock Linux is the implicit baseline)."""
    return [
        DunnPolicy(),
        KPartPolicy(),
        LfocPolicy(),
        BestStaticPolicy(exact_limit=7, local_search_iterations=800, backend=backend),
    ]


def _workload_specs(workloads: Sequence[Workload]) -> tuple:
    return tuple(WorkloadSpec.from_workload(w) for w in workloads)


def fig6_static_study(
    workloads: Optional[Sequence[Workload]] = None,
    policies: Optional[Sequence[ClusteringPolicy]] = None,
    platform: Optional[PlatformSpec] = None,
    *,
    jobs: Optional[int] = 1,
    executor=None,
) -> List[StaticStudyRow]:
    """Normalised unfairness and STP of the static clustering algorithms.

    Evaluates every policy's clustering with the contention estimator and
    normalises against the unpartitioned (stock Linux) configuration, exactly
    as Fig. 6 does.  Defaults to all 21 S workloads.  ``jobs`` shards the
    workloads across a process pool; ``executor`` selects any registered
    execution backend instead (``serial``/``pool``/``tcp`` or a live
    :class:`~repro.runtime.executors.base.Executor`).  Results are
    independent of both.

    This is a thin wrapper: it lowers the arguments to a declarative
    :class:`~repro.experiments.StudySpec` and delegates to
    :func:`~repro.experiments.run_study` (bit-identical rows, pinned by the
    test suite).  Prefer the spec API directly for anything beyond Fig. 6.
    """
    if workloads is not None and not list(workloads):
        return []  # the pre-refactor builder's behaviour for an empty sweep
    scenario = ScenarioSpec(
        name="fig6",
        kind="static",
        workloads=(
            (WorkloadSpec(suite="s"),)
            if workloads is None
            else _workload_specs(workloads)
        ),
        policies=(
            tuple(PolicySpec(name) for name in ("dunn", "kpart", "lfoc", "best_static"))
            if policies is None
            else tuple(PolicySpec.inline(p) for p in policies)
        ),
        platform=platform if platform is not None else "skylake_gold_6138",
    )
    result = run_study(
        StudySpec(name="fig6", scenarios=(scenario,)), jobs=jobs, executor=executor
    )
    fields = StaticStudyRow.__dataclass_fields__
    return [StaticStudyRow(**{f: row[f] for f in fields}) for row in result.rows()]


# ---------------------------------------------------------------------------
# Fig. 7 — dynamic study
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicStudyRow:
    """One (workload, policy) cell of the Fig. 7 study."""

    workload: str
    size: int
    policy: str
    unfairness: float
    stp: float
    normalized_unfairness: float
    normalized_stp: float
    repartitions: int
    sampling_entries: int


def default_dynamic_drivers() -> Dict[str, "type"]:
    """Driver classes of the Fig. 7 study (stock Linux is the baseline)."""
    return {"Dunn": DunnUserLevelDaemon, "LFOC": LfocSchedulerPlugin}


def fig7_dynamic_study(
    workloads: Optional[Sequence[Workload]] = None,
    engine_config: Optional[EngineConfig] = None,
    platform: Optional[PlatformSpec] = None,
    drivers: Optional[Mapping[str, "type"]] = None,
    *,
    backend: Optional[str] = None,
    jobs: Optional[int] = 1,
    executor=None,
) -> List[DynamicStudyRow]:
    """Normalised unfairness and STP of the dynamic policies (Fig. 7).

    Runs every workload under stock Linux, Dunn and LFOC in the runtime engine
    and normalises against the stock run.  Defaults to the paper's Fig. 7
    workload selection and a scaled-down instruction budget.  The batch of
    (workload, driver) runs executes through a pluggable
    :class:`~repro.runtime.executors.base.Executor`: ``jobs`` selects the
    local process count, ``executor`` selects any registered backend
    (``serial``/``pool``/``tcp`` or a live instance; results are independent
    of both) and ``backend`` overrides the engine evaluation backend
    (``incremental``/``reference``, both bit-identical).

    This is a thin wrapper: it lowers the arguments to a declarative
    :class:`~repro.experiments.StudySpec` and delegates to
    :func:`~repro.experiments.run_study` (bit-identical rows, pinned by the
    test suite).  Prefer the spec API directly for anything beyond Fig. 7.
    """
    if workloads is not None and not list(workloads):
        return []  # the pre-refactor builder's behaviour for an empty sweep
    engine_config = engine_config or EngineConfig(
        instructions_per_run=1.0e9, min_completions=2, record_traces=False
    )
    if backend is not None and backend != engine_config.backend:
        engine_config = replace(engine_config, backend=backend)
    scenario = ScenarioSpec(
        name="fig7",
        kind="dynamic",
        workloads=(
            (WorkloadSpec(suite="dynamic_study"),)
            if workloads is None
            else _workload_specs(workloads)
        ),
        policies=(
            (PolicySpec("dunn", label="Dunn"), PolicySpec("lfoc", label="LFOC"))
            if drivers is None
            else tuple(
                PolicySpec.inline(cls, label=name) for name, cls in drivers.items()
            )
        ),
        engine=EngineSpec.from_config(engine_config),
        platform=platform if platform is not None else "skylake_gold_6138",
    )
    result = run_study(
        StudySpec(name="fig7", scenarios=(scenario,)), jobs=jobs, executor=executor
    )
    fields = DynamicStudyRow.__dataclass_fields__
    return [DynamicStudyRow(**{f: row[f] for f in fields}) for row in result.rows()]


# ---------------------------------------------------------------------------
# Table 2 — execution time of the clustering algorithms
# ---------------------------------------------------------------------------


def table2_algorithm_cost(
    app_counts: Sequence[int] = (4, 5, 6, 7, 8, 9, 10, 11),
    repetitions: int = 5,
    platform: Optional[PlatformSpec] = None,
    seed: int = 3,
) -> Dict[int, Dict[str, float]]:
    """Average execution time (seconds) of the LFOC and KPart algorithms.

    For each workload size, random mixes are drawn and both clustering
    algorithms are timed on the same inputs (classification / profile data is
    prepared outside the timed region, matching how the paper instruments only
    the partitioning algorithm itself).
    """
    import time as _time

    platform = platform or skylake_gold_6138()
    rng = np.random.default_rng(seed)
    lfoc = LfocPolicy()
    kpart = KPartPolicy()
    result: Dict[int, Dict[str, float]] = {}
    for count in app_counts:
        lfoc_times: List[float] = []
        kpart_times: List[float] = []
        for index in range(repetitions):
            workload = random_workload(
                f"table2-{count}-{index}", count, kind="S", rng=rng
            )
            profiles = workload.profiles(platform.llc_ways)
            start = _time.perf_counter()
            lfoc.decide(profiles, platform)
            lfoc_times.append(_time.perf_counter() - start)
            start = _time.perf_counter()
            kpart.decide(profiles, platform)
            kpart_times.append(_time.perf_counter() - start)
        result[count] = {
            "lfoc_s": float(np.mean(lfoc_times)),
            "kpart_s": float(np.mean(kpart_times)),
            "ratio": float(np.mean(kpart_times) / max(np.mean(lfoc_times), 1e-12)),
        }
    return result
