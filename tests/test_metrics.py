"""Tests for the fairness/throughput metrics and aggregation helpers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    RollingMeanWindow,
    antt,
    short_mean,
    average_percent_reduction,
    compute_metrics,
    geometric_mean,
    jain_index,
    normalise,
    normalised_series,
    percent_reduction,
    slowdown_from_ipc,
    slowdown_from_times,
    stp,
    unfairness,
)


class TestSlowdown:
    def test_from_ipc(self):
        assert slowdown_from_ipc(2.0, 1.0) == pytest.approx(2.0)

    def test_from_times(self):
        assert slowdown_from_times(30.0, 20.0) == pytest.approx(1.5)

    def test_rejects_non_positive(self):
        with pytest.raises(ReproError):
            slowdown_from_ipc(0.0, 1.0)
        with pytest.raises(ReproError):
            slowdown_from_times(1.0, 0.0)


class TestUnfairnessAndStp:
    def test_unfairness_is_max_over_min(self):
        assert unfairness([1.0, 1.5, 3.0]) == pytest.approx(3.0)

    def test_perfectly_fair_workload(self):
        assert unfairness([1.3, 1.3, 1.3]) == pytest.approx(1.0)

    def test_stp_is_sum_of_reciprocal_slowdowns(self):
        assert stp([1.0, 2.0, 4.0]) == pytest.approx(1.0 + 0.5 + 0.25)

    def test_stp_equals_n_without_slowdown(self):
        assert stp([1.0] * 8) == pytest.approx(8.0)

    def test_antt_is_mean_slowdown(self):
        assert antt([1.0, 2.0]) == pytest.approx(1.5)

    def test_jain_index_bounds(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        skewed = jain_index([1.0, 10.0, 10.0, 10.0])
        assert 0.0 < skewed < 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(ReproError):
            unfairness([])

    def test_negative_slowdowns_rejected(self):
        with pytest.raises(ReproError):
            stp([1.0, -2.0])

    def test_compute_metrics_bundle(self):
        metrics = compute_metrics({"a": 1.0, "b": 2.0})
        assert metrics.unfairness == pytest.approx(2.0)
        assert metrics.stp == pytest.approx(1.5)
        assert metrics.worst_app() == "b"
        assert metrics.n_apps == 2
        assert set(metrics.as_dict()) >= {"unfairness", "stp", "antt", "jain"}

    def test_compute_metrics_empty_rejected(self):
        with pytest.raises(ReproError):
            compute_metrics({})


class TestFairnessEdgeCases:
    """Degenerate mixes the tournament judge leans on: single-app scenarios
    and perfectly tied line-ups must produce exact, not approximate, values."""

    def test_single_app_mix_is_exactly_fair(self):
        # One app competes with nobody: max/min collapses to exactly 1.0
        # regardless of its absolute slowdown.
        for slowdown in (1.0, 1.7, 42.0):
            assert unfairness([slowdown]) == 1.0
            assert jain_index([slowdown]) == pytest.approx(1.0)

    def test_single_app_compute_metrics(self):
        metrics = compute_metrics({"solo": 2.5})
        assert metrics.unfairness == 1.0
        assert metrics.stp == pytest.approx(1.0 / 2.5)
        assert metrics.antt == pytest.approx(2.5)
        assert metrics.worst_app() == "solo"
        assert metrics.n_apps == 1

    def test_identical_slowdowns_tie_exactly(self):
        # Two policies producing identical per-app slowdowns must yield
        # bit-equal metrics — this is what makes a tournament "tie" exact
        # rather than an epsilon accident.
        mix_a = {"x": 1.4, "y": 1.4, "z": 1.4}
        mix_b = {"z": 1.4, "x": 1.4, "y": 1.4}  # ordering must not matter
        a = compute_metrics(mix_a)
        b = compute_metrics(mix_b)
        assert a.unfairness == b.unfairness == 1.0
        assert a.stp == b.stp
        assert a.antt == b.antt
        assert a.jain == b.jain == pytest.approx(1.0)

    def test_near_tie_is_not_a_tie(self):
        # An epsilon-sized imbalance must register as unfairness > 1, never
        # be rounded away.
        assert unfairness([1.0, 1.0 + 1e-9]) > 1.0

    def test_extreme_skew_stays_finite(self):
        values = [1.0, 1e6]
        assert unfairness(values) == pytest.approx(1e6)
        assert 0.0 < jain_index(values) < 1.0
        assert stp(values) == pytest.approx(1.0 + 1e-6)


class TestAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_normalise(self):
        assert normalise(0.8, 1.0) == pytest.approx(0.8)
        with pytest.raises(ReproError):
            normalise(1.0, 0.0)

    def test_percent_reduction(self):
        assert percent_reduction(0.8, 1.0) == pytest.approx(20.0)
        assert percent_reduction(1.2, 1.0) == pytest.approx(-20.0)

    def test_average_percent_reduction(self):
        values = {"w1": 0.9, "w2": 0.7}
        baselines = {"w1": 1.0, "w2": 1.0}
        assert average_percent_reduction(values, baselines) == pytest.approx(20.0)

    def test_average_requires_matching_keys(self):
        with pytest.raises(ReproError):
            average_percent_reduction({"a": 1.0}, {"b": 1.0})

    def test_normalised_series(self):
        values = {"w1": 2.0, "w2": 3.0}
        baselines = {"w1": 4.0, "w2": 6.0}
        assert normalised_series(values, baselines) == {
            "w1": pytest.approx(0.5),
            "w2": pytest.approx(0.5),
        }


class TestRollingMeanWindow:
    """The monitors' O(1)-read rolling mean must be bit-identical to np.mean."""

    def test_bit_identical_to_np_mean_across_window_sizes(self):
        rng = np.random.default_rng(42)
        for maxlen in range(1, 11):
            window = RollingMeanWindow(maxlen)
            history = []
            for value in rng.uniform(0.0, 500.0, size=64):
                window.append(value)
                history.append(float(value))
                tail = history[-maxlen:]
                assert window.mean() == float(np.mean(tail)), (maxlen, len(history))

    def test_matches_short_mean_exactly(self):
        rng = np.random.default_rng(7)
        window = RollingMeanWindow(5)
        history = []
        for value in rng.normal(100.0, 30.0, size=40):
            window.append(value)
            history.append(float(value))
            assert window.mean() == short_mean(history[-5:])

    def test_clear_restarts_the_window(self):
        window = RollingMeanWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.append(value)
        window.clear()
        assert len(window) == 0
        window.append(10.0)
        assert window.mean() == 10.0
        assert not window.full

    def test_len_iter_and_full(self):
        window = RollingMeanWindow(2)
        window.append(1.0)
        assert len(window) == 1 and not window.full
        window.append(2.0)
        window.append(3.0)
        assert len(window) == 2 and window.full
        assert list(window) == [2.0, 3.0]

    def test_negative_zero_matches_reduction_seed(self):
        window = RollingMeanWindow(4)
        window.append(-0.0)
        assert window.mean() == float(np.mean([-0.0]))

    def test_rejects_empty_reads_and_bad_lengths(self):
        with pytest.raises(ReproError):
            RollingMeanWindow(0)
        with pytest.raises(ReproError):
            RollingMeanWindow(5).mean()

    def test_large_windows_fall_back_to_short_mean(self):
        rng = np.random.default_rng(3)
        window = RollingMeanWindow(12)
        history = []
        for value in rng.uniform(0.0, 50.0, size=30):
            window.append(value)
            history.append(float(value))
            assert window.mean() == float(np.mean(history[-12:]))
