"""Tests for the fairness/throughput metrics and aggregation helpers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics import (
    antt,
    average_percent_reduction,
    compute_metrics,
    geometric_mean,
    jain_index,
    normalise,
    normalised_series,
    percent_reduction,
    slowdown_from_ipc,
    slowdown_from_times,
    stp,
    unfairness,
)


class TestSlowdown:
    def test_from_ipc(self):
        assert slowdown_from_ipc(2.0, 1.0) == pytest.approx(2.0)

    def test_from_times(self):
        assert slowdown_from_times(30.0, 20.0) == pytest.approx(1.5)

    def test_rejects_non_positive(self):
        with pytest.raises(ReproError):
            slowdown_from_ipc(0.0, 1.0)
        with pytest.raises(ReproError):
            slowdown_from_times(1.0, 0.0)


class TestUnfairnessAndStp:
    def test_unfairness_is_max_over_min(self):
        assert unfairness([1.0, 1.5, 3.0]) == pytest.approx(3.0)

    def test_perfectly_fair_workload(self):
        assert unfairness([1.3, 1.3, 1.3]) == pytest.approx(1.0)

    def test_stp_is_sum_of_reciprocal_slowdowns(self):
        assert stp([1.0, 2.0, 4.0]) == pytest.approx(1.0 + 0.5 + 0.25)

    def test_stp_equals_n_without_slowdown(self):
        assert stp([1.0] * 8) == pytest.approx(8.0)

    def test_antt_is_mean_slowdown(self):
        assert antt([1.0, 2.0]) == pytest.approx(1.5)

    def test_jain_index_bounds(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        skewed = jain_index([1.0, 10.0, 10.0, 10.0])
        assert 0.0 < skewed < 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(ReproError):
            unfairness([])

    def test_negative_slowdowns_rejected(self):
        with pytest.raises(ReproError):
            stp([1.0, -2.0])

    def test_compute_metrics_bundle(self):
        metrics = compute_metrics({"a": 1.0, "b": 2.0})
        assert metrics.unfairness == pytest.approx(2.0)
        assert metrics.stp == pytest.approx(1.5)
        assert metrics.worst_app() == "b"
        assert metrics.n_apps == 2
        assert set(metrics.as_dict()) >= {"unfairness", "stp", "antt", "jain"}

    def test_compute_metrics_empty_rejected(self):
        with pytest.raises(ReproError):
            compute_metrics({})


class TestAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_normalise(self):
        assert normalise(0.8, 1.0) == pytest.approx(0.8)
        with pytest.raises(ReproError):
            normalise(1.0, 0.0)

    def test_percent_reduction(self):
        assert percent_reduction(0.8, 1.0) == pytest.approx(20.0)
        assert percent_reduction(1.2, 1.0) == pytest.approx(-20.0)

    def test_average_percent_reduction(self):
        values = {"w1": 0.9, "w2": 0.7}
        baselines = {"w1": 1.0, "w2": 1.0}
        assert average_percent_reduction(values, baselines) == pytest.approx(20.0)

    def test_average_requires_matching_keys(self):
        with pytest.raises(ReproError):
            average_percent_reduction({"a": 1.0}, {"b": 1.0})

    def test_normalised_series(self):
        values = {"w1": 2.0, "w2": 3.0}
        baselines = {"w1": 4.0, "w2": 6.0}
        assert normalised_series(values, baselines) == {
            "w1": pytest.approx(0.5),
            "w2": pytest.approx(0.5),
        }
