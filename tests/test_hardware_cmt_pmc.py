"""Tests for the CMT occupancy monitor and the PMC model."""

import pytest

from repro.errors import ReproError, RmidExhaustedError
from repro.hardware import (
    CmtMonitor,
    CounterDelta,
    CounterSnapshot,
    PmcSampler,
    derive_metrics,
    skylake_gold_6138,
    small_test_platform,
)


class TestCmtMonitor:
    def test_assign_rmid_is_stable(self):
        cmt = CmtMonitor(skylake_gold_6138())
        rmid = cmt.assign_rmid("a")
        assert cmt.assign_rmid("a") == rmid

    def test_rmid_zero_is_reserved(self):
        cmt = CmtMonitor(skylake_gold_6138())
        assert cmt.assign_rmid("a") != 0

    def test_rmid_exhaustion(self):
        plat = small_test_platform(ways=4)
        cmt = CmtMonitor(plat)
        for index in range(plat.n_rmids - 1):
            cmt.assign_rmid(f"task-{index}")
        with pytest.raises(RmidExhaustedError):
            cmt.assign_rmid("one-too-many")

    def test_release_recycles_rmid(self):
        plat = small_test_platform(ways=4)
        cmt = CmtMonitor(plat)
        for index in range(plat.n_rmids - 1):
            cmt.assign_rmid(f"task-{index}")
        cmt.release_rmid("task-0")
        cmt.assign_rmid("fresh")  # should not raise

    def test_occupancy_update_and_read(self):
        plat = skylake_gold_6138()
        cmt = CmtMonitor(plat)
        cmt.update_occupancy("a", 2.5)
        reading = cmt.read_occupancy("a")
        assert reading.occupancy_ways == pytest.approx(2.5)
        assert reading.occupancy_kb == pytest.approx(2.5 * plat.llc_way_kb)

    def test_negative_occupancy_rejected(self):
        cmt = CmtMonitor(skylake_gold_6138())
        with pytest.raises(ReproError):
            cmt.update_occupancy("a", -1.0)

    def test_read_unmonitored_task_rejected(self):
        cmt = CmtMonitor(skylake_gold_6138())
        with pytest.raises(ReproError):
            cmt.read_occupancy("ghost")

    def test_total_occupancy(self):
        cmt = CmtMonitor(skylake_gold_6138())
        cmt.update_occupancy("a", 2.0)
        cmt.update_occupancy("b", 3.0)
        assert cmt.total_occupancy_ways() == pytest.approx(5.0)
        assert cmt.n_monitored == 2


class TestDerivedMetrics:
    def test_ipc_and_miss_rates(self):
        delta = CounterDelta(
            instructions=2_000_000, cycles=1_000_000, llc_misses=5_000, stalls_l2_miss=250_000
        )
        metrics = derive_metrics(delta)
        assert metrics.ipc == pytest.approx(2.0)
        assert metrics.llcmpkc == pytest.approx(5.0)
        assert metrics.llcmpki == pytest.approx(2.5)
        assert metrics.stall_fraction == pytest.approx(0.25)

    def test_stall_fraction_clamped(self):
        delta = CounterDelta(
            instructions=1_000, cycles=1_000, llc_misses=0, stalls_l2_miss=5_000
        )
        assert derive_metrics(delta).stall_fraction == 1.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ReproError):
            CounterDelta(instructions=-1, cycles=1, llc_misses=0, stalls_l2_miss=0)

    def test_as_dict_contains_all_metrics(self):
        delta = CounterDelta(instructions=100.0, cycles=100.0, llc_misses=1.0, stalls_l2_miss=1.0)
        keys = set(derive_metrics(delta).as_dict())
        assert {"ipc", "llcmpkc", "llcmpki", "stall_fraction"} <= keys


class TestPmcSampler:
    def test_sample_returns_window_metrics(self):
        sampler = PmcSampler()
        sampler.register_task("a")
        sampler.accumulate("a", instructions=1e6, cycles=1e6, llc_misses=1e3, stalls_l2_miss=1e5)
        first = sampler.sample("a")
        assert first.ipc == pytest.approx(1.0)
        sampler.accumulate("a", instructions=3e6, cycles=1e6, llc_misses=0, stalls_l2_miss=0)
        second = sampler.sample("a")
        assert second.ipc == pytest.approx(3.0)

    def test_snapshot_delta(self):
        before = CounterSnapshot(100, 100, 10, 5)
        after = CounterSnapshot(300, 200, 15, 10)
        delta = after.delta(before)
        assert delta.instructions == 200
        assert delta.cycles == 100
        assert delta.llc_misses == 5

    def test_read_unknown_task_rejected(self):
        with pytest.raises(ReproError):
            PmcSampler().read("ghost")

    def test_accumulate_auto_registers(self):
        sampler = PmcSampler()
        sampler.accumulate("x", instructions=10, cycles=10, llc_misses=0, stalls_l2_miss=0)
        assert "x" in list(sampler.tasks())

    def test_remove_task(self):
        sampler = PmcSampler()
        sampler.register_task("a")
        sampler.remove_task("a")
        assert "a" not in list(sampler.tasks())
