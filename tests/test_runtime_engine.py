"""Tests for the dynamic policy drivers and the event-driven runtime engine."""

import pytest

from repro.core import AppClass
from repro.errors import SimulationError
from repro.hardware import skylake_gold_6138
from repro.policies import LfocPolicy, StockLinuxPolicy
from repro.runtime import (
    DunnUserLevelDaemon,
    EngineConfig,
    LfocSchedulerPlugin,
    RuntimeEngine,
    StaticPolicyDriver,
    StockLinuxDriver,
    alone_completion_time,
)
from repro.workloads import Workload


FAST = EngineConfig(
    instructions_per_run=8.0e8,
    min_completions=2,
    partition_interval_s=0.05,
    record_traces=True,
    max_simulated_seconds=120.0,
)

#: Faster warm-up / shorter rolling windows so the online machinery converges
#: within the small instruction budgets used by the unit tests.
from repro.runtime import MonitorConfig  # noqa: E402

QUICK_MONITOR = MonitorConfig(warmup_samples=2, history_window=3)


@pytest.fixture(scope="module")
def small_workload():
    return Workload("test-mix", ("lbm06", "xalancbmk06", "soplex06", "gamess06"))


@pytest.fixture(scope="module")
def platform_skylake():
    return skylake_gold_6138()


def run(driver, workload, platform, config=FAST):
    engine = RuntimeEngine(platform, workload.phased_profiles(platform.llc_ways), driver, config)
    return engine.run(workload.name)


class TestAloneTime:
    def test_alone_time_matches_ipc(self, platform_skylake, small_workload):
        phased = small_workload.phased_profiles(platform_skylake.llc_ways)
        profile = phased["gamess06.0"]
        expected = 2.0e8 / (
            profile.segments[0].profile.ipc_alone * platform_skylake.cycles_per_second
        )
        assert alone_completion_time(profile, 2.0e8, platform_skylake) == pytest.approx(expected)

    def test_alone_time_spans_phases(self, platform_skylake):
        workload = Workload("w", ("fotonik3d17",))
        phased = workload.phased_profiles(platform_skylake.llc_ways)["fotonik3d17.0"]
        # Crossing several phase cycles still returns a positive finite time.
        assert alone_completion_time(phased, 5e9, platform_skylake) > 0

    def test_invalid_budget_rejected(self, platform_skylake, small_workload):
        phased = small_workload.phased_profiles(platform_skylake.llc_ways)
        with pytest.raises(SimulationError):
            alone_completion_time(phased["gamess06.0"], 0.0, platform_skylake)


class TestEngineConfig:
    def test_instruction_scale_reported(self):
        assert EngineConfig(instructions_per_run=1.5e9).instruction_scale == pytest.approx(100.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(SimulationError):
            EngineConfig(instructions_per_run=0)
        with pytest.raises(SimulationError):
            EngineConfig(min_completions=0)
        with pytest.raises(SimulationError):
            EngineConfig(partition_interval_s=0)


class TestStockRun:
    def test_every_app_completes_enough_times(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        for stats in result.app_stats.values():
            assert stats.completions >= FAST.min_completions
        assert result.duration_s > 0

    def test_slowdowns_are_at_least_one(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        assert all(s >= 0.99 for s in result.slowdowns().values())

    def test_sensitive_app_suffers_most_under_stock(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        slowdowns = result.slowdowns()
        assert slowdowns["xalancbmk06.0"] > slowdowns["gamess06.0"]

    def test_stock_never_repartitions_after_start(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        assert result.n_repartitions == 1  # only the initial programming

    def test_traces_recorded(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        assert all(len(points) > 0 for points in result.traces.values())

    def test_summary_fields(self, platform_skylake, small_workload):
        result = run(StockLinuxDriver(), small_workload, platform_skylake)
        summary = result.summary()
        assert set(summary) >= {"unfairness", "stp", "duration_s"}


class TestStaticDriver:
    def test_static_lfoc_improves_over_stock(self, platform_skylake, small_workload):
        profiles = small_workload.profiles(platform_skylake.llc_ways)
        stock = run(StockLinuxDriver(), small_workload, platform_skylake)
        static = run(
            StaticPolicyDriver(LfocPolicy(), profiles), small_workload, platform_skylake
        )
        assert static.unfairness < stock.unfairness

    def test_static_driver_requires_profiles(self, platform_skylake, small_workload):
        driver = StaticPolicyDriver(StockLinuxPolicy(), {})
        with pytest.raises(SimulationError):
            run(driver, small_workload, platform_skylake)


class TestLfocDriver:
    def test_lfoc_classifies_applications_online(self, platform_skylake, small_workload):
        driver = LfocSchedulerPlugin(monitor_config=QUICK_MONITOR)
        result = run(driver, small_workload, platform_skylake)
        classes = {app: m.app_class for app, m in driver.monitors.items()}
        assert classes["lbm06.0"] is AppClass.STREAMING
        assert classes["xalancbmk06.0"] is AppClass.SENSITIVE
        assert result.total_sampling_entries() >= len(small_workload.benchmarks)

    def test_lfoc_improves_fairness_over_stock(self, platform_skylake, small_workload):
        stock = run(StockLinuxDriver(), small_workload, platform_skylake)
        lfoc = run(LfocSchedulerPlugin(monitor_config=QUICK_MONITOR), small_workload, platform_skylake)
        assert lfoc.unfairness < stock.unfairness

    def test_lfoc_repartitions_periodically(self, platform_skylake, small_workload):
        result = run(LfocSchedulerPlugin(), small_workload, platform_skylake)
        assert result.n_repartitions > 3

    def test_lfoc_sample_window_shrinks_in_sampling_mode(self):
        driver = LfocSchedulerPlugin()
        driver.on_start(["a", "b"], skylake_gold_6138())
        assert driver.sample_window("a") == driver.normal_sample_window
        driver._sampling_queue.append("a")
        driver.monitors["a"].begin_sampling()
        allocation = driver._maybe_start_next_sampling()
        assert allocation is not None
        assert driver.sample_window("a") == driver.sampling_sample_window
        assert driver.sample_window("b") == driver.normal_sample_window

    def test_phase_change_triggers_resampling(self, platform_skylake):
        workload = Workload("phased", ("mcf06", "gamess06", "lbm06", "namd06"))
        config = EngineConfig(
            instructions_per_run=1.6e9,
            min_completions=1,
            partition_interval_s=0.05,
            record_traces=False,
            max_simulated_seconds=200.0,
        )
        driver = LfocSchedulerPlugin(monitor_config=QUICK_MONITOR)
        engine = RuntimeEngine(
            platform_skylake, workload.phased_profiles(platform_skylake.llc_ways), driver, config
        )
        result = engine.run(workload.name)
        # mcf alternates between sensitive and streaming phases, so it must be
        # re-sampled at least once beyond its initial classification.
        assert result.app_stats["mcf06.0"].sampling_mode_entries >= 2


class TestDunnDriver:
    def test_dunn_runs_and_repartitions(self, platform_skylake, small_workload):
        result = run(DunnUserLevelDaemon(), small_workload, platform_skylake)
        assert result.n_repartitions >= 2
        assert result.policy == "Dunn"

    def test_dunn_does_not_use_sampling_mode(self, platform_skylake, small_workload):
        result = run(DunnUserLevelDaemon(), small_workload, platform_skylake)
        assert result.total_sampling_entries() == 0


class TestEngineSafety:
    def test_runaway_simulation_detected(self, platform_skylake, small_workload):
        config = EngineConfig(
            instructions_per_run=1e12,
            min_completions=3,
            max_simulated_seconds=0.2,
        )
        engine = RuntimeEngine(
            platform_skylake,
            small_workload.phased_profiles(platform_skylake.llc_ways),
            StockLinuxDriver(),
            config,
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_empty_workload_rejected(self, platform_skylake):
        with pytest.raises(SimulationError):
            RuntimeEngine(platform_skylake, {}, StockLinuxDriver())
