"""Tests for the figure/table builders, the reporting layer and the CLI."""

import pytest

from repro.analysis import (
    fig1_curves,
    fig2_optimal_breakdown,
    fig3_clustering_vs_partitioning,
    fig4_fotonik3d_trace,
    fig5_workload_matrix,
    fig6_static_study,
    fig7_dynamic_study,
    format_table,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig6,
    render_fig7,
    render_table1,
    render_table2,
    summarize_dynamic_study,
    summarize_static_study,
    table1_classification,
    table2_algorithm_cost,
)
from repro.cli import build_parser, main
from repro.policies import DunnPolicy, LfocPolicy
from repro.runtime import EngineConfig
from repro.workloads import s_workloads, workload_by_name


class TestFigureBuilders:
    def test_fig1_contains_both_benchmarks(self):
        data = fig1_curves()
        assert set(data) == {"lbm06", "xalancbmk06"}
        assert len(data["lbm06"]["ways"]) == 11
        # Fig. 1 shape: lbm flat & miss heavy, xalancbmk steep.
        assert max(data["lbm06"]["slowdown"]) < 1.06
        assert data["xalancbmk06"]["slowdown"][0] > 1.5

    def test_table1_covers_catalogue(self):
        classes = table1_classification()
        assert len(classes) == 34
        assert classes["lbm06"] == "streaming"
        assert classes["xalancbmk06"] == "sensitive"
        assert classes["gamess06"] == "light"

    def test_fig2_breakdown_structure(self):
        breakdown = fig2_optimal_breakdown(n_workloads=2, workload_size=5)
        assert "cluster_count" in breakdown
        assert set(breakdown) == {"cluster_count", "streaming", "sensitive", "light"}
        assert sum(breakdown["cluster_count"].values()) > 0

    def test_fig3_ratio_structure(self):
        ratios = fig3_clustering_vs_partitioning(app_counts=(4, 5), workloads_per_count=2)
        assert set(ratios) == {4, 5}
        # Partitioning can never be fairer than clustering (it is a subset).
        assert all(r >= 1.0 - 1e-9 for r in ratios.values())

    def test_fig4_trace_shows_phase_transition(self):
        trace = fig4_fotonik3d_trace(instructions=1.0e9)
        assert len(trace["time_s"]) == len(trace["llcmpkc"])
        assert min(trace["llcmpkc"]) < 10.0 < max(trace["llcmpkc"])

    def test_fig5_matrix_shape(self):
        matrix = fig5_workload_matrix()
        assert len(matrix) == 36

    def test_fig6_rows_include_stock_baseline(self):
        workloads = [workload_by_name("S1")]
        rows = fig6_static_study(workloads, policies=[LfocPolicy()])
        policies = {row.policy for row in rows}
        assert policies == {"Stock-Linux", "LFOC"}
        stock = [r for r in rows if r.policy == "Stock-Linux"][0]
        assert stock.normalized_unfairness == 1.0

    def test_fig7_rows_and_summary(self):
        workloads = [workload_by_name("P1")]
        config = EngineConfig(
            instructions_per_run=6e8, min_completions=1, record_traces=False
        )
        rows = fig7_dynamic_study(workloads, engine_config=config)
        assert {row.policy for row in rows} == {"Stock-Linux", "Dunn", "LFOC"}
        summary = summarize_dynamic_study(rows)
        assert "LFOC" in summary

    def test_table2_lfoc_is_much_cheaper_than_kpart(self):
        costs = table2_algorithm_cost(app_counts=(4, 8), repetitions=2)
        for count in (4, 8):
            assert costs[count]["lfoc_s"] < costs[count]["kpart_s"]
            assert costs[count]["ratio"] > 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_renderers_produce_text(self):
        assert "lbm06" in render_fig1(fig1_curves())
        assert "streaming" in render_table1(table1_classification())
        breakdown = fig2_optimal_breakdown(n_workloads=1, workload_size=4)
        assert "cluster size" in render_fig2(breakdown)
        assert "4" in render_fig3({4: 1.1})
        costs = {4: {"lfoc_s": 1e-5, "kpart_s": 1e-3, "ratio": 100.0}}
        assert "100x" in render_table2(costs)

    def test_summarize_static_study(self):
        rows = fig6_static_study([workload_by_name("S1")], policies=[LfocPolicy(), DunnPolicy()])
        summary = summarize_static_study(rows)
        assert summary["Stock-Linux"]["mean_norm_unfairness"] == pytest.approx(1.0)
        assert "LFOC" in summary and "Dunn" in summary
        assert "mean_unfairness_reduction_pct" in summary["LFOC"]

    def test_render_fig6_and_fig7(self):
        rows = fig6_static_study([workload_by_name("S1")], policies=[LfocPolicy()])
        assert "S1" in render_fig6(rows)
        config = EngineConfig(instructions_per_run=4e8, min_completions=1, record_traces=False)
        dynamic_rows = fig7_dynamic_study(
            [workload_by_name("P1")], engine_config=config, drivers={}
        )
        assert "P1" in render_fig7(dynamic_rows)


class TestCli:
    def test_parser_knows_every_experiment(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "table2"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_fig1_command(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "xalancbmk06" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "streaming" in capsys.readouterr().out

    def test_fig5_command(self, capsys):
        assert main(["fig5"]) == 0
        assert "S1" in capsys.readouterr().out

    def test_table2_command_small(self, capsys):
        assert main(["table2", "--sizes", "4", "--repetitions", "1"]) == 0
        assert "KPart" in capsys.readouterr().out


class TestSpecCli:
    SPEC_TOML = """\
schema = 1
name = "cli-smoke"

[[scenarios]]
name = "stat"
kind = "static"

[[scenarios.workloads]]
source = "suite"
suite = "s"
names = ["S1"]

[[scenarios.policies]]
name = "lfoc"
"""

    def test_run_command_prints_rows_and_saves(self, capsys, tmp_path):
        spec_path = tmp_path / "study.toml"
        spec_path.write_text(self.SPEC_TOML, encoding="utf-8")
        out_path = tmp_path / "rows.jsonl"
        assert main(["run", str(spec_path), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario stat" in out
        assert "LFOC" in out and "Stock-Linux" in out
        from repro.experiments import StudyResult

        result = StudyResult.load(out_path)
        assert result.name == "cli-smoke"
        assert {row["policy"] for row in result.rows()} == {"Stock-Linux", "LFOC"}

    def test_run_command_with_executor_and_checkpoint(self, capsys, tmp_path):
        spec_path = tmp_path / "study.toml"
        spec_path.write_text(self.SPEC_TOML, encoding="utf-8")
        checkpoint = tmp_path / "ckpt.jsonl"
        assert (
            main(
                [
                    "run", str(spec_path),
                    "--executor", "serial",
                    "--checkpoint", str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.experiments import StudyResult

        first = StudyResult.load(checkpoint)
        assert {row["policy"] for row in first.rows()} == {"Stock-Linux", "LFOC"}
        # A resumed run skips the completed scenario and changes nothing.
        assert (
            main(
                [
                    "run", str(spec_path),
                    "--executor", "serial",
                    "--checkpoint", str(checkpoint),
                    "--resume",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert StudyResult.load(checkpoint).rows() == first.rows()

    def test_run_command_rejects_unknown_executor(self, tmp_path):
        from repro.errors import SpecError

        spec_path = tmp_path / "study.toml"
        spec_path.write_text(self.SPEC_TOML, encoding="utf-8")
        with pytest.raises(SpecError, match="unknown executor"):
            main(["run", str(spec_path), "--executor", "quantum"])

    def test_executor_flags_require_executor(self, tmp_path):
        from repro.errors import SpecError

        spec_path = tmp_path / "study.toml"
        spec_path.write_text(self.SPEC_TOML, encoding="utf-8")
        with pytest.raises(SpecError, match="--executor"):
            main(["run", str(spec_path), "--workers", "4"])

    def test_resume_requires_checkpoint(self, tmp_path):
        from repro.errors import SpecError

        spec_path = tmp_path / "study.toml"
        spec_path.write_text(self.SPEC_TOML, encoding="utf-8")
        with pytest.raises(SpecError, match="--checkpoint"):
            main(["run", str(spec_path), "--resume"])

    def test_worker_command_requires_valid_address(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="host:port"):
            main(["worker", "--connect", "nonsense"])

    def test_run_command_rejects_bad_spec(self, tmp_path):
        from repro.errors import SpecError

        spec_path = tmp_path / "study.toml"
        spec_path.write_text('name = "x"\nscnarios = []\n', encoding="utf-8")
        with pytest.raises(SpecError, match="scnarios"):
            main(["run", str(spec_path)])

    def test_sweep_command(self, capsys, tmp_path):
        spec_out = tmp_path / "sweep.toml"
        assert (
            main(
                [
                    "sweep",
                    "--kind", "static",
                    "--policies", "lfoc",
                    "--workloads", "S1",
                    "--dump-spec", str(spec_out),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LFOC" in out
        from repro.experiments import load_study_spec

        spec = load_study_spec(spec_out)
        assert spec.scenarios[0].kind == "static"
