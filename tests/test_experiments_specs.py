"""Tests for the declarative spec layer: round-trips, registries, error paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.experiments import (
    EngineSpec,
    PolicySpec,
    Registry,
    ScenarioSpec,
    SolverSpec,
    StudySpec,
    WorkloadSpec,
    grid,
    load_study_spec,
    resolve_platform,
    resolve_policy,
    study_from_json,
    study_from_toml,
    study_to_json,
    study_to_toml,
    toml_dumps,
)
from repro.policies import LfocPolicy


def rich_study() -> StudySpec:
    """A study exercising every spec type and both scenario kinds."""
    return StudySpec(
        name="rich",
        description="round-trip fixture",
        jobs=2,
        scenarios=(
            ScenarioSpec(
                name="static",
                kind="static",
                workloads=(
                    WorkloadSpec(suite="s", names=("S1", "S3"), max_size=12),
                    WorkloadSpec(
                        source="explicit",
                        name="mix",
                        benchmarks=("lbm06", "xalancbmk06", "gamess06"),
                        kind="custom",
                    ),
                ),
                policies=(
                    PolicySpec("dunn"),
                    PolicySpec("best_static", params={"exact_limit": 5}, label="Best"),
                ),
                solver=SolverSpec(backend="reference", local_search_iterations=50),
                platform={"preset": "skylake_gold_6138", "llc_ways": 8},
            ),
            ScenarioSpec(
                name="dynamic",
                kind="dynamic",
                workloads=(WorkloadSpec(source="random", size=4, kind="P", seed=3),),
                policies=(PolicySpec("lfoc", label="LFOC"),),
                engine=EngineSpec(
                    instructions_per_run=5e8,
                    min_completions=1,
                    backend="reference",
                    max_table_entries=128,
                ),
                seeds=(0, 1),
            ),
        ),
    )


class TestRoundTrips:
    def test_dict_round_trip(self):
        spec = rich_study()
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = rich_study()
        assert study_from_json(study_to_json(spec)) == spec

    def test_toml_round_trip(self):
        spec = rich_study()
        assert study_from_toml(study_to_toml(spec)) == spec

    def test_file_round_trip_both_formats(self, tmp_path):
        from repro.experiments import dump_study_spec

        spec = rich_study()
        for suffix in (".toml", ".json"):
            path = tmp_path / f"study{suffix}"
            dump_study_spec(spec, path)
            assert load_study_spec(path) == spec

    def test_toml_dumps_is_parseable_toml(self):
        from repro.experiments.io import tomllib

        if tomllib is None:  # pragma: no cover - Python 3.10 without tomli
            pytest.skip("no TOML reader available")
        data = {
            "name": "x",
            "flag": True,
            "pi": 3.25,
            "count": 4,
            "items": [1, 2, 3],
            "nested": {"a": "b", "deep": {"c": 1.5}},
            "rows": [{"k": "v1"}, {"k": "v2", "n": 2}],
        }
        assert tomllib.loads(toml_dumps(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(
        instructions=st.floats(min_value=1e6, max_value=1e12),
        completions=st.integers(min_value=1, max_value=5),
        interval=st.floats(min_value=0.01, max_value=10.0),
        traces=st.booleans(),
        backend=st.sampled_from(["incremental", "reference"]),
        max_entries=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
    )
    def test_engine_spec_property_round_trip(
        self, instructions, completions, interval, traces, backend, max_entries
    ):
        spec = EngineSpec(
            instructions_per_run=instructions,
            min_completions=completions,
            partition_interval_s=interval,
            record_traces=traces,
            backend=backend,
            max_table_entries=max_entries,
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=16),
        kind=st.sampled_from(["S", "P"]),
        seed=st.integers(min_value=0, max_value=1_000_000),
    )
    def test_workload_spec_property_round_trip(self, size, kind, seed):
        spec = WorkloadSpec(source="random", size=size, kind=kind, seed=seed)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_engine_spec_config_round_trip(self):
        spec = EngineSpec(instructions_per_run=7e8, min_completions=2, max_table_entries=9)
        config = spec.to_config()
        assert config.instructions_per_run == 7e8
        assert config.max_table_entries == 9
        assert EngineSpec.from_config(config) == spec

    def test_jobs_none_encodes_as_zero(self):
        spec = StudySpec(
            name="j",
            jobs=None,
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                ),
            ),
        )
        data = spec.to_dict()
        assert data["jobs"] == 0
        assert StudySpec.from_dict(data).jobs is None


class TestValidationErrors:
    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown key 'nam'"):
            StudySpec.from_dict({"nam": "x", "scenarios": []})

    def test_unknown_scenario_key(self):
        data = rich_study().to_dict()
        data["scenarios"][0]["policy"] = []
        with pytest.raises(SpecError, match="'policy'"):
            StudySpec.from_dict(data)

    def test_unknown_engine_key(self):
        with pytest.raises(SpecError, match="EngineSpec"):
            EngineSpec.from_dict({"instructions": 1e9})

    def test_unknown_workload_key_lists_allowed(self):
        with pytest.raises(SpecError, match="allowed keys"):
            WorkloadSpec.from_dict({"suite": "s", "benchmark": ["lbm06"]})

    def test_unknown_policy_name_lists_registered(self):
        with pytest.raises(SpecError, match="registered policy"):
            resolve_policy(PolicySpec("definitely-not-registered"))

    def test_unknown_suite_name(self):
        with pytest.raises(SpecError, match="unknown workload suite"):
            WorkloadSpec(suite="nope").resolve()

    def test_unknown_workload_in_suite(self):
        with pytest.raises(SpecError, match="S999"):
            WorkloadSpec(suite="s", names=("S999",)).resolve()

    def test_unknown_engine_backend(self):
        with pytest.raises(SpecError, match="engine backend"):
            EngineSpec(backend="warp-drive").to_config()

    def test_unknown_solver_backend(self):
        with pytest.raises(SpecError, match="solver backend"):
            SolverSpec.from_dict({"backend": "quantum"})

    def test_unknown_platform_preset(self):
        with pytest.raises(SpecError, match="platform preset"):
            resolve_platform("commodore64")

    def test_unknown_platform_override_field(self):
        with pytest.raises(SpecError, match="PlatformSpec field"):
            resolve_platform({"ways": 8})

    def test_platform_override_applies(self):
        platform = resolve_platform({"preset": "skylake_gold_6138", "llc_ways": 8})
        assert platform.llc_ways == 8

    def test_bad_scenario_kind(self):
        with pytest.raises(SpecError, match="kind"):
            ScenarioSpec(
                name="x", kind="quantum", workloads=(WorkloadSpec(suite="s"),)
            )

    def test_bad_workload_source(self):
        with pytest.raises(SpecError, match="source"):
            WorkloadSpec(source="oracle")

    def test_random_needs_size(self):
        with pytest.raises(SpecError, match="size"):
            WorkloadSpec(source="random")

    def test_explicit_needs_benchmarks(self):
        with pytest.raises(SpecError, match="benchmarks"):
            WorkloadSpec(source="explicit", name="m")

    def test_duplicate_scenario_names(self):
        scenario = ScenarioSpec(
            name="dup", kind="static", workloads=(WorkloadSpec(suite="s"),)
        )
        with pytest.raises(SpecError, match="unique"):
            StudySpec(name="x", scenarios=(scenario, scenario))

    def test_empty_scenarios(self):
        with pytest.raises(SpecError, match="no scenarios"):
            StudySpec(name="x", scenarios=())

    def test_unsupported_schema_version(self):
        data = rich_study().to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError, match="schema version"):
            StudySpec.from_dict(data)

    def test_inline_policy_refuses_to_serialize(self):
        spec = PolicySpec.inline(LfocPolicy())
        with pytest.raises(SpecError, match="inline"):
            spec.to_dict()
        # ... but resolves to the wrapped instance.
        policy = resolve_policy(spec)
        assert isinstance(policy, LfocPolicy)

    def test_bad_policy_params(self):
        with pytest.raises(SpecError, match="rejected params"):
            resolve_policy(PolicySpec("dunn", params={"warp_factor": 9}))


class TestRegistry:
    def test_decorator_and_direct_registration(self):
        reg = Registry("widget")

        @reg.register("a")
        def make_a():
            return "A"

        reg.register("b", lambda: "B")
        assert reg.resolve("a")() == "A"
        assert reg.resolve("b")() == "B"
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a", lambda: None)
        with pytest.raises(SpecError, match="duplicate"):
            reg.register("a", lambda: None)

    def test_unknown_name_lists_alternatives(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: None)
        with pytest.raises(SpecError, match="'alpha'"):
            reg.resolve("beta")

    def test_builtin_registries_are_populated(self):
        from repro.experiments import (
            DRIVERS,
            ENGINE_BACKENDS,
            PLATFORMS,
            POLICIES,
            SOLVER_BACKENDS,
            WORKLOAD_SUITES,
        )

        assert {"dunn", "kpart", "lfoc", "best_static", "stock"} <= set(POLICIES.names())
        assert {"dunn", "lfoc", "stock", "static"} <= set(DRIVERS.names())
        assert {"s", "p", "all", "dynamic_study"} <= set(WORKLOAD_SUITES.names())
        assert set(ENGINE_BACKENDS.names()) >= {"incremental", "reference"}
        assert set(SOLVER_BACKENDS.names()) >= {"tabulated", "reference"}
        assert "skylake_gold_6138" in PLATFORMS


class TestWorkloadResolution:
    def test_suite_filter_keeps_requested_order(self):
        workloads = WorkloadSpec(suite="s", names=("S3", "S1")).resolve()
        assert [w.name for w in workloads] == ["S3", "S1"]

    def test_suite_max_size_filters(self):
        workloads = WorkloadSpec(suite="s", max_size=8).resolve()
        assert workloads and all(w.size <= 8 for w in workloads)

    def test_explicit_rebuilds_the_same_workload(self):
        from repro.workloads import workload_by_name

        original = workload_by_name("S1")
        rebuilt = WorkloadSpec.from_workload(original).resolve()
        assert rebuilt == [original]

    def test_random_seed_offset_changes_the_draw(self):
        base = WorkloadSpec(source="random", size=4, seed=5)
        first = base.resolve()[0]
        replica = base.resolve(seed_offset=1)[0]
        assert first.name != replica.name
        assert first.size == replica.size == 4


class TestGrid:
    def test_cartesian_product_order(self):
        points = grid(policy=["a", "b"], seed=[0, 1])
        assert points == [
            {"policy": "a", "seed": 0},
            {"policy": "a", "seed": 1},
            {"policy": "b", "seed": 0},
            {"policy": "b", "seed": 1},
        ]

    def test_empty_axes(self):
        assert grid() == [{}]
        with pytest.raises(SpecError, match="empty"):
            grid(ways=[])


class TestEagerLoadValidation:
    """Typos must fail at load time, not after hours of scenario 1."""

    def _scenario(self, **overrides):
        data = {
            "name": "s",
            "kind": "static",
            "workloads": [{"suite": "s", "names": ["S1"]}],
            "policies": ["lfoc"],
        }
        data.update(overrides)
        return data

    def test_seeds_must_be_a_list(self):
        with pytest.raises(SpecError, match="seeds must be a list"):
            ScenarioSpec.from_dict(self._scenario(seeds=3))

    def test_seed_entries_must_be_integers(self):
        with pytest.raises(SpecError, match="seeds must be a list"):
            ScenarioSpec.from_dict(self._scenario(seeds="01"))  # strings rejected
        with pytest.raises(SpecError, match="seeds entries"):
            ScenarioSpec.from_dict(self._scenario(seeds=[0, "1"]))

    def test_unknown_policy_name_fails_at_load(self):
        with pytest.raises(SpecError, match="unknown policy 'lfcc'"):
            ScenarioSpec.from_dict(self._scenario(policies=["lfcc"]))

    def test_unknown_driver_name_fails_at_load(self):
        data = self._scenario(kind="dynamic", policies=["dunnn"])
        with pytest.raises(SpecError, match="unknown policy driver"):
            ScenarioSpec.from_dict(data)

    def test_unknown_suite_fails_at_load(self):
        data = self._scenario(workloads=[{"suite": "dynamc_study"}])
        with pytest.raises(SpecError, match="unknown workload suite"):
            ScenarioSpec.from_dict(data)

    def test_inline_driver_class_names_the_class(self):
        from repro.runtime import DunnUserLevelDaemon

        spec = PolicySpec.inline(DunnUserLevelDaemon)
        assert spec.name == "<inline:DunnUserLevelDaemon>"
        spec = PolicySpec.inline(LfocPolicy())
        assert spec.name == "<inline:LfocPolicy>"


class TestStrictWorkloadFields:
    """Fields that are dead for the chosen source are rejected, not ignored."""

    def test_explicit_rejects_suite_filters(self):
        with pytest.raises(SpecError, match="do not use 'max_size'"):
            WorkloadSpec(
                source="explicit", name="m", benchmarks=("lbm06",), max_size=4
            )

    def test_random_rejects_names_filter(self):
        with pytest.raises(SpecError, match="'names'"):
            WorkloadSpec(source="random", size=4, names=("S1",))

    def test_suite_rejects_seed(self):
        with pytest.raises(SpecError, match="'seed'"):
            WorkloadSpec(suite="s", seed=3)

    def test_explicit_benchmark_typos_fail_at_load(self):
        data = {
            "name": "s",
            "kind": "static",
            "workloads": [
                {"source": "explicit", "name": "mix", "benchmarks": ["lbm6"]}
            ],
        }
        with pytest.raises(SpecError, match="lbm6"):
            ScenarioSpec.from_dict(data)

    def test_suite_names_typos_fail_at_load(self):
        data = {
            "name": "s",
            "kind": "static",
            "workloads": [{"suite": "s", "names": ["S99"]}],
        }
        with pytest.raises(SpecError, match="S99"):
            ScenarioSpec.from_dict(data)


class TestStrictValueCoercion:
    def test_engine_spec_rejects_non_numeric_strings(self):
        with pytest.raises(SpecError, match="min_completions"):
            EngineSpec.from_dict({"min_completions": "three"})
        with pytest.raises(SpecError, match="instructions_per_run"):
            EngineSpec.from_dict({"instructions_per_run": "1e9"})
        with pytest.raises(SpecError, match="record_traces"):
            EngineSpec.from_dict({"record_traces": "yes"})

    def test_engine_spec_rejects_bools_as_numbers(self):
        with pytest.raises(SpecError, match="min_completions"):
            EngineSpec.from_dict({"min_completions": True})

    def test_solver_spec_rejects_non_integers(self):
        with pytest.raises(SpecError, match="exact_limit"):
            SolverSpec.from_dict({"exact_limit": "x"})

    def test_empty_seeds_list_is_an_error(self):
        data = {
            "name": "s",
            "kind": "static",
            "workloads": [{"suite": "s", "names": ["S1"]}],
            "seeds": [],
        }
        with pytest.raises(SpecError, match="no seeds"):
            ScenarioSpec.from_dict(data)


class TestNullAndCollisionHandling:
    def test_null_required_ints_raise_spec_error(self):
        with pytest.raises(SpecError, match="min_completions"):
            EngineSpec.from_dict({"min_completions": None})
        with pytest.raises(SpecError, match="exact_limit"):
            SolverSpec.from_dict({"exact_limit": None})

    def test_null_seed_entry_raises_spec_error(self):
        data = {
            "name": "s",
            "kind": "static",
            "workloads": [{"suite": "s", "names": ["S1"]}],
            "seeds": [None],
        }
        with pytest.raises(SpecError, match="seeds entries"):
            ScenarioSpec.from_dict(data)

    def test_bare_decorator_misuse_raises(self):
        reg = Registry("widget")
        with pytest.raises(SpecError, match="bare @register"):

            @reg.register
            def factory():
                return None

    def test_scenario_id_collision_with_seed_replicas(self):
        seeded = ScenarioSpec(
            name="dyn",
            kind="static",
            workloads=(WorkloadSpec(source="random", size=4),),
            seeds=(0, 1),
        )
        literal = ScenarioSpec(
            name="dyn#s0",
            kind="static",
            workloads=(WorkloadSpec(suite="s", names=("S1",)),),
        )
        with pytest.raises(SpecError, match="collides|named"):
            StudySpec(name="x", scenarios=(seeded, literal))
        with pytest.raises(SpecError, match="collides|named"):
            StudySpec(name="x", scenarios=(literal, seeded))


class TestEmptyWorkloadSweeps:
    def test_fig6_empty_workloads_returns_empty(self):
        from repro.analysis.figures import fig6_static_study, fig7_dynamic_study

        assert fig6_static_study([]) == []
        assert fig7_dynamic_study([]) == []
