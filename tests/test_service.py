"""Tests for the online partitioning service (``repro/service/``).

Four guarantees:

* **schema** — every frame off the wire passes :func:`check_frame` before
  touching session state, and flipping any single byte of a service frame
  stream is either detected or decodes to different-but-valid content —
  it never crashes the daemon (the corrupt-every-byte fuzz, mirroring the
  executor framing suite);
* **sessions** — sequenced frames are lockstep and idempotent: duplicates
  answer from the cached reply, gaps are protocol errors, and a departed
  application that re-arrives keeps its classification while its warm-up
  and rolling windows restart (the ``reset_for_restart`` regression);
* **determinism** — a live daemon serving real sockets produces a mask
  decision log bit-identical to :func:`offline_replay` on the same seeded
  trace, including tenant churn;
* **chaos** — scripted frame corruption and agent kills cost links and
  incarnations, never the daemon: sessions reconnect under fresh boots
  and the final masks converge to the clean run's.
"""

from __future__ import annotations

import json
import os
import socket
import threading

import pytest

from repro.core.classification import AppClass
from repro.errors import SimulationError
from repro.experiments import ServiceSpec, SpecError
from repro.runtime import PoolExecutor
from repro.runtime.executors.chaos import FaultPlan
from repro.runtime.executors.framing import (
    FrameProtocolError,
    FrameReader,
    pack_frame,
    recv_frame,
)
from repro.service import (
    HostAgent,
    HostSession,
    PartitionDaemon,
    ReplayLog,
    ServiceCore,
    ServiceProtocolError,
    SimulatedHost,
    churn_schedule,
    host_seed,
    load_snapshot,
    offline_replay,
    save_snapshot,
)
from repro.service import protocol
from repro.service.agent import LocalTransport, drive_host
from repro.service.protocol import check_frame, check_protocol

WORKLOAD = "S1"
BATCHES = 12
SEED = 3
HOSTS = ("hostA", "hostB")


def fuzz_messages():
    """Representative frames of every service kind, both directions."""
    return [
        protocol.host_hello("hostA", boot=7, pid=123),
        protocol.hello_ack(epoch=2, last_seq=5),
        protocol.app_arrive(1, "xalancbmk06-0"),
        protocol.app_depart(2, "lbm06-1"),
        protocol.monitor_samples(
            3,
            samples=[
                {
                    "app": "xalancbmk06-0",
                    "llcmpkc": 12.5,
                    "stall_fraction": 0.4,
                    "effective_ways": 11,
                }
            ],
            classify=[
                {
                    "app": "xalancbmk06-0",
                    "class": AppClass.SENSITIVE.value,
                    "slowdown_table": [1.8, 1.4, 1.1, 1.0],
                    "critical_size": 3,
                }
            ],
        ),
        protocol.mask_update(2, 3, masks={"xalancbmk06-0": 0x7}, sample=["lbm06-1"]),
        protocol.host_bye(4),
        protocol.reject("protocol version 1 does not match"),
        protocol.metrics(),
        protocol.metrics_reply(
            hosts={"hostA": {"epoch": 1, "last_seq": 3, "live": 2}},
            classes={AppClass.SENSITIVE.value: 1, AppClass.UNKNOWN.value: 1},
            totals={"hosts": 1, "decisions": 4},
        ),
    ]


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


class TestProtocolSchema:
    def test_every_builder_passes_check_frame(self):
        for frame in fuzz_messages():
            kind, payload = check_frame(frame)
            assert kind == frame[0]
            assert payload == frame[1]

    def test_structural_rejects(self):
        bad = [
            "not a frame",
            ("only-kind",),
            ("no_such_kind", {}),
            ("app_arrive", {"seq": 1}),  # missing key
            ("app_arrive", {"seq": 1, "app": "a", "extra": 1}),
            ("app_arrive", {"seq": 0, "app": "a"}),  # sequenced from 1
            ("app_arrive", {"seq": True, "app": "a"}),  # bools are not ints
            ("app_arrive", {"seq": 1, "app": ""}),
            ("host_bye", {"seq": -1}),
            ("reject", {"reason": "must be a string"}),
        ]
        for frame in bad:
            with pytest.raises(ServiceProtocolError):
                check_frame(frame)

    def test_sample_and_classify_entries_validated(self):
        def samples(entry):
            return ("monitor_samples", {"seq": 1, "samples": [entry], "classify": []})

        def classify(entry):
            return ("monitor_samples", {"seq": 1, "samples": [], "classify": [entry]})

        good = {
            "app": "a",
            "llcmpkc": 1.0,
            "stall_fraction": 0.2,
            "effective_ways": 4,
        }
        check_frame(samples(good))
        for key, value in [
            ("llcmpkc", float("nan")),
            ("llcmpkc", float("inf")),
            ("stall_fraction", -0.1),
            ("effective_ways", "four"),
            ("effective_ways", True),
        ]:
            with pytest.raises(ServiceProtocolError):
                check_frame(samples({**good, key: value}))
        sweep = {
            "app": "a",
            "class": AppClass.SENSITIVE.value,
            "slowdown_table": [1.5, 1.0],
            "critical_size": 2,
        }
        check_frame(classify(sweep))
        for key, value in [
            ("class", "mysterious"),
            ("slowdown_table", []),
            ("slowdown_table", [1.0, float("nan")]),
            ("slowdown_table", [1.0, -2.0]),
            ("critical_size", 0),
            ("critical_size", 1.5),
        ]:
            with pytest.raises(ServiceProtocolError):
                check_frame(classify({**sweep, key: value}))

    def test_mask_update_validated(self):
        check_frame(protocol.mask_update(1, 0))
        for masks in [{}, {"": 3}, {"a": 0}, {"a": -1}, {"a": True}, {"a": "0x7"}]:
            with pytest.raises(ServiceProtocolError):
                check_frame(
                    ("mask_update", {"epoch": 1, "ack": 0, "masks": masks,
                                     "sample": [], "decision": None})
                )
        with pytest.raises(ServiceProtocolError):
            check_frame(
                ("mask_update", {"epoch": 1, "ack": 0, "masks": None,
                                 "sample": ["ok", ""], "decision": None})
            )

    def test_version_negotiation(self):
        check_protocol(protocol.host_hello("h", 1, 0)[1], "host_hello")
        with pytest.raises(ServiceProtocolError, match="protocol version"):
            check_protocol({"protocol": 1}, "host_hello")

    def test_duplicate_app_within_one_sample_batch_rejected(self):
        """The fused observe_batch ingests each bank row at most once per
        call, so a frame repeating an app must die at the schema boundary."""
        entry = {
            "app": "a",
            "llcmpkc": 1.0,
            "stall_fraction": 0.2,
            "effective_ways": 4,
        }
        with pytest.raises(ServiceProtocolError, match="repeats app"):
            check_frame(
                ("monitor_samples", {"seq": 1, "samples": [entry, dict(entry)],
                                     "classify": []})
            )

    def test_metrics_frames_validated(self):
        check_frame(protocol.metrics())
        with pytest.raises(ServiceProtocolError):
            check_frame(("metrics", {}))
        good = protocol.metrics_reply(
            hosts={"h": {"live": 1}}, classes={}, totals={"hosts": 1}
        )
        check_frame(good)
        for key, value in [
            ("hosts", ["h"]),
            ("hosts", {"": {}}),
            ("hosts", {"h": 3}),
            ("classes", {"mysterious": 1}),
            ("classes", {AppClass.LIGHT.value: "one"}),
            ("totals", None),
        ]:
            with pytest.raises(ServiceProtocolError):
                check_frame(("metrics_reply", {**good[1], key: value}))

    def test_single_byte_corruption_never_crashes(self):
        """The daemon's ingest path is ``FrameReader`` then ``check_frame``;
        flipping any one byte of a service frame stream must surface as a
        framing or schema error (or decode to different-but-valid content),
        never anything else."""
        stream = b"".join(pack_frame(m) for m in fuzz_messages())
        rejected = 0
        for position in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[position] ^= 0xFF
            reader = FrameReader()
            try:
                for frame in reader.feed(bytes(corrupted)):
                    check_frame(frame)
            except FrameProtocolError:
                rejected += 1
            except ServiceProtocolError:
                rejected += 1
            except SimulationError:
                rejected += 1
        # Sanity: corruption is actually being detected, not waved through.
        assert rejected > len(stream) // 4


# ---------------------------------------------------------------------------
# Host sessions: lockstep, idempotence, restart churn
# ---------------------------------------------------------------------------


def make_session(policy="lfoc"):
    return HostSession("h0", policy=policy)


def arrive(session, seq, app):
    return session.handle("app_arrive", protocol.app_arrive(seq, app)[1])


def depart(session, seq, app):
    return session.handle("app_depart", protocol.app_depart(seq, app)[1])


def samples(session, seq, entries, classify=()):
    return session.handle(
        "monitor_samples", protocol.monitor_samples(seq, entries, classify)[1]
    )


def sample_entry(app, ways=11, llcmpkc=40.0, stall=0.5):
    return {
        "app": app,
        "llcmpkc": llcmpkc,
        "stall_fraction": stall,
        "effective_ways": ways,
    }


class TestHostSession:
    def test_rejects_unknown_policy(self):
        with pytest.raises(SimulationError, match="unknown service policy"):
            HostSession("h0", policy="fifo")

    def test_sequenced_frame_before_hello_is_an_error(self):
        session = make_session()
        with pytest.raises(ServiceProtocolError, match="before host_hello"):
            arrive(session, 1, "a")

    def test_duplicates_answer_from_the_cached_reply(self):
        session = make_session()
        session.hello(boot=1)
        first = arrive(session, 1, "a")
        again = arrive(session, 1, "a")
        assert again == first
        assert session.duplicates_dropped == 1
        assert session.last_seq == 1

    def test_sequence_gap_is_a_protocol_error(self):
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        with pytest.raises(ServiceProtocolError, match="jumped from seq 1 to 3"):
            arrive(session, 3, "b")

    def test_restart_keeps_classification_but_resets_transients(self):
        """The arrive → depart → arrive regression: a re-arriving application
        is a restart (``reset_for_restart``), not a cold start — the sweep
        outcome survives, the warm-up countdown and rolling windows do not."""
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        sweep = {
            "app": "a",
            "class": AppClass.SENSITIVE.value,
            "slowdown_table": [2.0, 1.8, 1.6, 1.45, 1.3, 1.2, 1.12, 1.06, 1.02, 1.01, 1.0],
            "critical_size": 4,
        }
        samples(session, 2, [sample_entry("a")], [sweep])
        monitor = session.monitors["a"]
        assert monitor.app_class is AppClass.SENSITIVE
        assert monitor.warmup_remaining < monitor.config.warmup_samples
        version = monitor.classification_version
        assert version == 1

        depart(session, 3, "a")
        assert "a" not in session.monitors
        assert session.parked["a"] is monitor
        assert session.live == []

        reply = arrive(session, 4, "a")
        assert session.monitors["a"] is monitor  # same lifetime state, no cold start
        assert "a" not in session.parked
        assert monitor.app_class is AppClass.SENSITIVE
        assert monitor.slowdown_table[0] == 2.0 and len(monitor.slowdown_table) == 11
        assert monitor.critical_size == 4
        assert monitor.classification_version == version
        # ... but the transient state restarted with the new incarnation.
        assert monitor.warmup_remaining == monitor.config.warmup_samples
        assert monitor.average_llcmpkc() == 0.0
        assert not monitor.in_sampling_mode
        # The known classification feeds the decision immediately — and since
        # neither the tenant set nor any sweep outcome changed relative to
        # the pre-churn state, the unchanged allocation answers from the
        # version-vector fast path and is not re-pushed to the host.
        assert reply[1]["masks"] is None
        assert session.decision_fast_hits >= 1
        assert session._last_pushed is not None and "a" in session._last_pushed

    def test_departing_unknown_app_is_a_noop(self):
        session = make_session()
        session.hello(boot=1)
        reply = depart(session, 1, "ghost")
        assert reply[0] == "mask_update"
        assert session.last_seq == 1

    def test_new_boot_restarts_sequencing_and_repushes_masks(self):
        session = make_session()
        epoch, last_seq = session.hello(boot=1)
        assert (epoch, last_seq) == (1, 0)
        first = arrive(session, 1, "a")
        assert first[1]["masks"] is not None
        samples(
            session, 2, [sample_entry("a")],
            [{"app": "a", "class": AppClass.STREAMING.value,
              "slowdown_table": None, "critical_size": None}],
        )

        # Same boot reconnect: the session *resumes* — same epoch, same
        # sequence position, so the agent can replay its journal suffix.
        assert session.hello(boot=1) == (1, 2)
        assert session.live == ["a"]

        # New boot: full restart — monitors parked, sequencing restarts.
        assert session.hello(boot=2) == (2, 0)
        assert session.live == []
        assert "a" in session.parked
        repush = arrive(session, 1, "a")
        # The rebooted host lost its CAT state, so the (unchanged) decision
        # is pushed again rather than suppressed as a duplicate.
        assert repush[1]["masks"] == first[1]["masks"]
        assert [d.epoch for d in session.replay.for_host("h0")] == [1, 2]

    def test_stale_frame_right_after_reboot_answers_bare_ack(self):
        """A duplicate arriving while the rebooted session has no cached
        reply yet is acknowledged with a bare mask_update, not a crash."""
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        session.hello(boot=2)
        reply = session.handle("app_arrive", {"seq": 0, "app": "a"})
        assert reply == protocol.mask_update(session.epoch, 0)
        assert session.duplicates_dropped == 1


class TestServiceCore:
    def test_unregistered_host_is_rejected(self):
        core = ServiceCore()
        with pytest.raises(ServiceProtocolError, match="unregistered host"):
            core.handle("ghost", "app_arrive", protocol.app_arrive(1, "a")[1])

    def test_version_mismatch_rejected_at_hello(self):
        core = ServiceCore()
        payload = dict(protocol.host_hello("h0", 1, 0)[1])
        payload["protocol"] = 1
        with pytest.raises(ServiceProtocolError, match="protocol version"):
            core.handle_hello(payload)

    def test_ever_completed_survives_respawn(self):
        core = ServiceCore()
        transport = LocalTransport(core, "h0")
        host = SimulatedHost(WORKLOAD, seed=1)
        drive_host(host, transport, batches=2)
        assert core.ever_completed == {"h0"}
        # A supervisor respawning the finished agent re-registers it ...
        transport.hello()
        assert not core.sessions["h0"].completed
        # ... without un-finishing it for the daemon's run loop.
        assert core.ever_completed == {"h0"}


# ---------------------------------------------------------------------------
# Replay log + offline oracle
# ---------------------------------------------------------------------------


class TestReplayLog:
    def test_offline_replay_is_deterministic(self):
        a = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        b = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        assert a.signature() == b.signature()
        assert len(a) > 0
        # The seeded churn is part of the trace, not an optional extra.
        host = SimulatedHost(WORKLOAD, seed=host_seed(SEED, HOSTS[0]))
        assert churn_schedule(host.apps, BATCHES, host_seed(SEED, HOSTS[0]))

    def test_different_workloads_produce_different_logs(self):
        a = offline_replay("h0", "S1", batches=6, seed=0)
        b = offline_replay("h0", "S2", batches=6, seed=0)
        assert a.signature() != b.signature()

    def test_jsonl_round_trip(self, tmp_path):
        log = offline_replay("h0", WORKLOAD, batches=6, seed=1)
        path = tmp_path / "replay.jsonl"
        log.save(str(path))
        loaded = ReplayLog.load(str(path))
        assert loaded.signature() == log.signature()
        assert loaded.final_masks("h0") == log.final_masks("h0")

    def test_load_rejects_corrupt_and_non_contiguous_logs(self, tmp_path):
        log = offline_replay("h0", WORKLOAD, batches=6, seed=1)
        assert len(log) >= 2
        path = tmp_path / "replay.jsonl"
        log.save(str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop decision 0
        with pytest.raises(SimulationError, match="not contiguous"):
            ReplayLog.load(str(path))
        path.write_text("{not json\n")
        with pytest.raises(SimulationError, match="corrupt replay log"):
            ReplayLog.load(str(path))
        path.write_text(json.dumps({"host": "h0"}) + "\n")
        with pytest.raises(SimulationError, match="malformed replay record"):
            ReplayLog.load(str(path))


# ---------------------------------------------------------------------------
# End-to-end: live daemon over sockets vs the offline oracle
# ---------------------------------------------------------------------------


def run_agents_threaded(daemon, host_ids, *, chaos=None, batches=BATCHES, seed=SEED):
    """Drive host agents in threads against an in-process daemon, which pumps
    in this thread; returns the agents (for reconnect counters)."""
    agents, errors, threads = [], [], []

    def one(host_id):
        try:
            host = SimulatedHost(WORKLOAD, seed=host_seed(seed, host_id))
            churn = churn_schedule(host.apps, batches, host_seed(seed, host_id))
            agent = HostAgent(
                daemon.address, host_id, chaos=chaos, connect_delay_s=0.05
            )
            agents.append(agent)
            drive_host(host, agent, batches=batches, churn=churn)
        except BaseException as exc:  # surfaced in the main thread below
            errors.append((host_id, exc))

    for host_id in host_ids:
        thread = threading.Thread(target=one, args=(host_id,), daemon=True)
        thread.start()
        threads.append(thread)
    daemon.run(until_byes=len(host_ids), max_seconds=120)
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, f"agent failures: {errors}"
    return agents


class TestLiveService:
    def test_live_daemon_matches_offline_oracle_bit_for_bit(self):
        golden = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        with PartitionDaemon(("127.0.0.1", 0)) as daemon:
            run_agents_threaded(daemon, HOSTS)
            assert daemon.frame_errors == 0
            for host in HOSTS:
                assert daemon.replay.signature(host) == golden.signature(host)
                assert daemon.replay.final_masks(host) == golden.final_masks(host)

    def test_frame_corruption_costs_the_link_not_the_session(self):
        golden = offline_replay(["hostA"], WORKLOAD, batches=BATCHES, seed=SEED)
        plan = FaultPlan(agent_corrupt_frames=(5,))
        with PartitionDaemon(("127.0.0.1", 0)) as daemon:
            (agent,) = run_agents_threaded(daemon, ["hostA"], chaos=plan)
            assert daemon.frame_errors >= 1
            assert agent.reconnects >= 1
            session = daemon.core.sessions["hostA"]
            # Same boot token on reconnect: the session *resumed* mid-epoch
            # (no restart) and the agent's journal replay healed the gap —
            # so the log is bit-identical to the clean oracle run, not
            # merely convergent.
            assert session.epoch == 1
            assert session.completed
            assert daemon.replay.signature("hostA") == golden.signature("hostA")
            assert daemon.replay.final_masks("hostA") == golden.final_masks("hostA")

    def test_supervised_agent_kill_and_respawn_converges(self):
        """The CI chaos drill, in-process: the daemon babysits its own agent,
        the first incarnation dies mid-trace (scripted ``os._exit``), the
        respawn re-runs the trace clean and lands on the oracle's masks."""
        golden = offline_replay(["host0"], WORKLOAD, batches=BATCHES, seed=SEED)
        daemon = PartitionDaemon(
            ("127.0.0.1", 0),
            supervise=1,
            workload=WORKLOAD,
            batches=BATCHES,
            seed=SEED,
            agent_chaos={"agent_kill_batches": [3]},
        )
        try:
            summary = daemon.run(until_byes=1, max_seconds=180)
        finally:
            daemon.close()
        assert summary["supervisor"]["restarts"] >= 1
        # A scripted kill is a clean EOF at the daemon: no frame errors.
        assert daemon.frame_errors == 0
        session = daemon.core.sessions["host0"]
        assert session.epoch >= 2
        assert daemon.replay.final_masks("host0") == golden.final_masks("host0")

    def test_supervise_requires_a_workload(self):
        with pytest.raises(SimulationError, match="need a workload"):
            PartitionDaemon(("127.0.0.1", 0), supervise=2)


# ---------------------------------------------------------------------------
# Warm pool-worker reuse across a context swap
# ---------------------------------------------------------------------------


def _pid_probe(payload, task):
    """Module-level (spawn-picklable) task: report who ran it, with what."""
    return (os.getpid(), payload, task)


class TestPoolWarmReuse:
    def test_worker_pids_survive_a_context_swap(self):
        executor = PoolExecutor(jobs=2)
        with executor:
            executor.set_context(_pid_probe, "generation-1")
            for task in range(8):
                executor.submit(task)
            first = [result for _, result in executor.as_completed()]
            pool = executor._pool
            assert pool is not None

            executor.set_context(_pid_probe, "generation-2")
            for task in range(8):
                executor.submit(task)
            second = [result for _, result in executor.as_completed()]

            # The swap reached every job in-band (a worker-side
            # reset_context), without tearing the pool down ...
            assert {payload for _, payload, _ in first} == {"generation-1"}
            assert {payload for _, payload, _ in second} == {"generation-2"}
            assert executor._pool is pool
            # ... so the processes that ran the new generation are the very
            # ones that ran the old: no respawn, no new PIDs.
            pids_before = {pid for pid, _, _ in first}
            pids_after = {pid for pid, _, _ in second}
            assert pids_after <= pids_before
            assert pids_before and pids_after


# ---------------------------------------------------------------------------
# Fault-plan agent hooks + the service spec
# ---------------------------------------------------------------------------


class TestAgentFaultPlan:
    def test_seeded_agent_faults_are_deterministic(self):
        a = FaultPlan.seeded(9, batches=20, agent_kills=1, agent_corrupt=2, agent_delays=1)
        b = FaultPlan.seeded(9, batches=20, agent_kills=1, agent_corrupt=2, agent_delays=1)
        assert a == b
        assert a.agent_kill_batches and a.agent_corrupt_frames and a.agent_delay_batches

    def test_dict_round_trip_and_validation(self):
        plan = FaultPlan(agent_kill_batches=(3,), agent_corrupt_frames=(5, 14))
        data = json.loads(json.dumps(plan.to_dict()))  # the --agent-chaos path
        assert FaultPlan.from_dict(data) == plan
        with pytest.raises(SimulationError, match="non-negative"):
            FaultPlan(agent_kill_batches=(-1,))


class TestServiceSpec:
    def test_round_trip(self):
        spec = ServiceSpec(
            supervise=2,
            workload=WORKLOAD,
            batches=20,
            seed=7,
            agent_chaos={"agent_kill_batches": [3]},
            replay_log="out.jsonl",
            snapshot="daemon.snapshot",
            snapshot_every_s=0.5,
            monitor_backend="bank",
        )
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert ServiceSpec().to_dict() == {}

    def test_validation(self):
        with pytest.raises(SpecError, match="policy"):
            ServiceSpec(policy="fifo")
        with pytest.raises(SpecError, match="needs a workload"):
            ServiceSpec(supervise=1)
        with pytest.raises(SpecError, match="batches"):
            ServiceSpec(batches=0)
        with pytest.raises(SpecError, match="agent_chaos"):
            ServiceSpec(agent_chaos={"agent_kill_batch": [3]})
        with pytest.raises(SpecError, match="monitor_backend"):
            ServiceSpec(monitor_backend="threads")
        with pytest.raises(SpecError, match="'bank' monitor backend"):
            ServiceSpec(snapshot="x.snapshot", monitor_backend="reference")

    def test_load_toml(self, tmp_path):
        path = tmp_path / "service.toml"
        path.write_text(
            "[service]\n"
            f'workload = "{WORKLOAD}"\n'
            "supervise = 2\n"
            "batches = 24\n"
            "seed = 7\n"
            'snapshot = "daemon.snapshot"\n'
            "snapshot_every_s = 0.5\n"
            'monitor_backend = "bank"\n'
            "[service.agent_chaos]\n"
            "agent_kill_batches = [3]\n"
        )
        spec = ServiceSpec.load(str(path))
        assert spec.supervise == 2
        assert spec.workload == WORKLOAD
        assert spec.snapshot == "daemon.snapshot"
        assert spec.snapshot_every_s == 0.5
        assert spec.monitor_backend == "bank"
        assert spec.fault_plan() == FaultPlan(agent_kill_batches=(3,))


# ---------------------------------------------------------------------------
# Bank-batched ingestion: parity, drain fusion, ordering
# ---------------------------------------------------------------------------


class _DrainHost:
    """One simulated host's frame stream, dispensed one frame at a time so a
    round-robin driver can assemble cross-host drains."""

    def __init__(self, host_id, *, batches, seed, workload=WORKLOAD):
        self.host_id = host_id
        self.sim = SimulatedHost(workload, seed=host_seed(seed, host_id))
        self.events = {}
        for b, op, app in churn_schedule(
            self.sim.apps, batches, host_seed(seed, host_id)
        ):
            self.events.setdefault(b, []).append((op, app))
        self.live = list(self.sim.apps)
        self.pending = []
        self.seq = 0
        self.batches = batches
        self.batch = 0
        self.queue = [("app_arrive", protocol.app_arrive(0, app)[1])
                      for app in self.live]
        self.done = False

    def next_item(self):
        """The next ``(host, kind, payload)`` to send, or None when finished."""
        if not self.queue:
            if self.batch < self.batches:
                b = self.batch
                self.batch += 1
                for op, app in self.events.get(b, ()):
                    if op == "depart":
                        if app in self.live:
                            self.live.remove(app)
                        self.queue.append(
                            ("app_depart", protocol.app_depart(0, app)[1])
                        )
                    else:
                        if app not in self.live:
                            self.live.append(app)
                        self.queue.append(
                            ("app_arrive", protocol.app_arrive(0, app)[1])
                        )
                samples_ = [self.sim.sample(app, b) for app in self.live]
                classify = list(self.pending)
                self.pending.clear()
                self.queue.append(
                    ("monitor_samples",
                     protocol.monitor_samples(0, samples_, classify)[1])
                )
            elif not self.done:
                self.done = True
                self.queue.append(("host_bye", protocol.host_bye(0)[1]))
            else:
                return None
        kind, payload = self.queue.pop(0)
        self.seq += 1
        payload = {**payload, "seq": self.seq}
        return (self.host_id, kind, payload)

    def apply(self, reply):
        kind, payload = reply
        assert kind == "mask_update"
        if payload["masks"] is not None:
            self.sim.apply_masks(payload["masks"])
        for app in payload["sample"]:
            self.pending.append(self.sim.classify(app))


def drive_drains(core, host_ids, *, batches, seed, use_drain):
    """Drive all hosts against ``core`` with a deterministic round-robin
    schedule: one frame per host per tick.  With ``use_drain`` the tick's
    frames go through one ``handle_drain`` call (the daemon's gathered event
    loop); without it they are handled one by one in the same global order
    (the sequential reference).  Returns the per-tick observe_batch deltas."""
    hosts = [
        _DrainHost(h, batches=batches, seed=seed) for h in host_ids
    ]
    deltas = []
    while True:
        items, owners = [], []
        for h in hosts:
            item = h.next_item()
            if item is not None:
                items.append(item)
                owners.append(h)
        if not items:
            return deltas
        calls_before = core.ingest.observe_batch_calls if core.ingest else 0
        if use_drain:
            results = core.handle_drain(items)
        else:
            results = [
                core.handle(host, kind, payload) for host, kind, payload in items
            ]
        for h, result in zip(owners, results):
            assert not isinstance(result, Exception), result
            h.apply(result)
        calls_after = core.ingest.observe_batch_calls if core.ingest else 0
        deltas.append(calls_after - calls_before)


class TestBankBatchedIngestion:
    HOSTS4 = ("h0", "h1", "h2", "h3")

    def _hello_all(self, core, host_ids):
        for host in host_ids:
            core.handle_hello(protocol.host_hello(host, 1, 0)[1])

    def test_bank_backend_matches_reference_backend_bit_for_bit(self):
        """The tentpole parity pin: the fused-bank offline replay equals the
        per-AppMonitor reference replay, multi-host, with churn."""
        bank = offline_replay(
            list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED,
            monitor_backend="bank",
        )
        reference = offline_replay(
            list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED,
            monitor_backend="reference",
        )
        assert len(bank) > 0
        assert bank.signature() == reference.signature()

    def test_one_observe_batch_per_drain_and_parity_with_sequential(self):
        """A cross-host drain costs at most ONE fused observe_batch call and
        answers bit-identically to handling the same frames one by one."""
        batched = ServiceCore()
        sequential = ServiceCore(monitor_backend="reference")
        self._hello_all(batched, self.HOSTS4)
        self._hello_all(sequential, self.HOSTS4)
        deltas = drive_drains(
            batched, self.HOSTS4, batches=8, seed=SEED, use_drain=True
        )
        drive_drains(
            sequential, self.HOSTS4, batches=8, seed=SEED, use_drain=False
        )
        assert max(deltas) == 1  # never more than one fused call per tick
        assert deltas.count(1) >= 8  # and the sample ticks really fuse
        # 4 hosts' samples per tick, one call: fewer calls than sample frames.
        total_sample_frames = sum(
            s.samples_ingested > 0 for s in batched.sessions.values()
        ) * 8
        assert batched.ingest.observe_batch_calls < total_sample_frames
        assert batched.replay.signature() == sequential.replay.signature()
        for host in self.HOSTS4:
            assert (
                batched.sessions[host].summary()["last_seq"]
                == sequential.sessions[host].summary()["last_seq"]
            )

    def test_same_host_twice_in_one_drain_stays_sequential(self):
        """The ingest → depart → decide ordering pin (offline_replay's
        documented order): a samples frame and the same host's depart frame
        in ONE drain must behave exactly as if handled back to back."""
        drained = ServiceCore()
        sequential = ServiceCore(monitor_backend="reference")
        sweep = {
            "app": "a",
            "class": AppClass.STREAMING.value,
            "slowdown_table": None,
            "critical_size": None,
        }
        setup = [
            ("app_arrive", protocol.app_arrive(1, "a")[1]),
            ("app_arrive", protocol.app_arrive(2, "b")[1]),
            ("monitor_samples",
             protocol.monitor_samples(
                 3,
                 [{"app": "a", "llcmpkc": 40.0, "stall_fraction": 0.5,
                   "effective_ways": 11},
                  {"app": "b", "llcmpkc": 1.0, "stall_fraction": 0.05,
                   "effective_ways": 11}],
                 [sweep],
             )[1]),
        ]
        tail = [
            ("monitor_samples",
             protocol.monitor_samples(
                 4,
                 [{"app": "a", "llcmpkc": 41.0, "stall_fraction": 0.5,
                   "effective_ways": 11},
                  {"app": "b", "llcmpkc": 1.1, "stall_fraction": 0.06,
                   "effective_ways": 11}],
                 [],
             )[1]),
            ("app_depart", protocol.app_depart(5, "b")[1]),
        ]
        for core in (drained, sequential):
            core.handle_hello(protocol.host_hello("h", 1, 0)[1])
            for kind, payload in setup:
                core.handle("h", kind, payload)
        # The drained core takes ingest + depart as one gathered batch; the
        # host-repeat rule must flush and decide between them.
        drain_results = drained.handle_drain(
            [("h", kind, payload) for kind, payload in tail]
        )
        seq_results = [sequential.handle("h", kind, payload) for kind, payload in tail]
        assert drain_results == seq_results
        assert drained.replay.signature() == sequential.replay.signature()
        # The depart itself fired a decision (the streaming app's partition
        # grew), proving "decide" came after "depart" on both paths.
        assert drained.replay.decisions[-1].seq == 5

    def test_direct_duplicate_app_in_frame_raises_in_stage(self):
        session = HostSession("h0")
        session.hello(boot=1)
        arrive(session, 1, "a")
        payload = protocol.monitor_samples(
            2,
            [sample_entry("a"), sample_entry("a")],
            [],
        )[1]
        with pytest.raises(ServiceProtocolError, match="repeated app"):
            session.handle("monitor_samples", payload)

    def test_drain_isolates_per_link_failures(self):
        """One host's protocol violation in a gathered drain must not stall
        the other hosts' frames in the same drain."""
        core = ServiceCore()
        self._hello_all(core, ("good", "bad"))
        core.handle("good", "app_arrive", protocol.app_arrive(1, "x")[1])
        core.handle("bad", "app_arrive", protocol.app_arrive(1, "y")[1])
        results = core.handle_drain([
            ("bad", "app_arrive", protocol.app_arrive(5, "z")[1]),  # seq gap
            ("good", "monitor_samples",
             protocol.monitor_samples(2, [sample_entry("x")], [])[1]),
        ])
        assert isinstance(results[0], ServiceProtocolError)
        assert results[1][0] == "mask_update"
        assert core.sessions["good"].last_seq == 2


# ---------------------------------------------------------------------------
# Idempotency-cache staleness across boot epochs
# ---------------------------------------------------------------------------


class TestEpochStaleness:
    def test_cached_reply_from_previous_boot_never_replays(self):
        """The staleness regression: a reply cached under boot 1 must be
        unreachable once boot 2 resets the sequence space."""
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        cached = samples(session, 2, [sample_entry("a")])
        old_epoch = session.epoch

        # Same boot: the session resumes, the cache stays valid and its
        # epoch stamp is still correct.
        assert session.hello(boot=1) == (old_epoch, 2)
        dup = samples(session, 2, [sample_entry("a")])
        assert dup == cached
        assert dup[1]["epoch"] == session.epoch

        # New boot: the cache is cleared with the sequence space.
        session.hello(boot=2)
        assert session._last_reply is None
        # Reusing an old in-range seq is processed FRESH in the new epoch,
        # never answered from the previous boot's cache.
        fresh = arrive(session, 1, "a")
        assert fresh != cached
        assert fresh[1]["epoch"] == session.epoch == old_epoch + 1
        # Reusing a deeper old seq is a gap in the new space: a hard error,
        # not a stale replay.
        with pytest.raises(ServiceProtocolError, match="jumped from seq"):
            samples(session, 3, [sample_entry("a")])

    def test_reconnect_mid_batch_with_old_seqs_over_local_transport(self):
        """Agent-shaped regression: reconnect mid-batch under a new boot and
        replay old sequence numbers; every reply must carry the new epoch."""
        core = ServiceCore()
        transport = LocalTransport(core, "h0")
        transport.hello()  # boot 1
        transport.exchange(protocol.app_arrive(1, "a"))
        transport.exchange(
            protocol.monitor_samples(2, [sample_entry("a")], [])
        )
        first_epoch = core.sessions["h0"].epoch
        transport.hello()  # boot 2: mid-batch reconnect, seq space resets
        kind, payload = transport.exchange(protocol.app_arrive(1, "a"))
        assert kind == "mask_update"
        assert payload["epoch"] == first_epoch + 1
        assert core.sessions["h0"].last_seq == 1


# ---------------------------------------------------------------------------
# Snapshot / restore
# ---------------------------------------------------------------------------


def _feed(core, host, items):
    out = []
    for kind, payload in items:
        out.append(core.handle(host, kind, payload))
    return out


class TestSnapshotRestore:
    def _mid_run_core(self):
        core = ServiceCore()
        core.handle_hello(protocol.host_hello("h0", 7, 0)[1])
        _feed(core, "h0", [
            ("app_arrive", protocol.app_arrive(1, "a")[1]),
            ("app_arrive", protocol.app_arrive(2, "b")[1]),
            ("monitor_samples", protocol.monitor_samples(
                3,
                [sample_entry("a"), sample_entry("b", llcmpkc=2.0, stall=0.04)],
                [{"app": "a", "class": AppClass.STREAMING.value,
                  "slowdown_table": None, "critical_size": None}],
            )[1]),
            ("app_depart", protocol.app_depart(4, "b")[1]),
        ])
        return core

    def test_state_round_trip_continues_bit_identically(self):
        original = self._mid_run_core()
        restored = ServiceCore.from_state(
            json.loads(json.dumps(original.to_state(), sort_keys=True))
        )
        # Identity facts survive: epoch, seq, tenants, parked monitors.
        assert restored.sessions["h0"].epoch == original.sessions["h0"].epoch
        assert restored.sessions["h0"].last_seq == 4
        assert restored.sessions["h0"].live == ["a"]
        assert "b" in restored.sessions["h0"].parked
        assert restored.replay.signature() == original.replay.signature()
        # The restored monitor rows are exact: identical further frames give
        # identical replies and identical decision tails on both cores.
        tail = [
            ("app_arrive", protocol.app_arrive(5, "b")[1]),
            ("monitor_samples", protocol.monitor_samples(
                6,
                [sample_entry("a", llcmpkc=41.0),
                 sample_entry("b", llcmpkc=2.5, stall=0.05)],
                [],
            )[1]),
            ("host_bye", protocol.host_bye(7)[1]),
        ]
        assert _feed(restored, "h0", tail) == _feed(original, "h0", tail)
        assert restored.replay.signature() == original.replay.signature()
        assert restored.sessions["h0"].completed
        assert "h0" in restored.ever_completed or restored.completed_hosts() == ["h0"]

    def test_reconnecting_agent_resumes_mid_epoch_after_restore(self):
        original = self._mid_run_core()
        restored = ServiceCore.from_state(original.to_state())
        # Same boot token: resume — same epoch, sequence intact.
        kind, ack = check_frame(
            restored.handle_hello(protocol.host_hello("h0", 7, 0)[1])
        )
        assert kind == "hello_ack"
        assert (ack["epoch"], ack["last_seq"]) == (1, 4)
        # New boot token: restart — parked monitors keep the classification.
        kind, ack2 = check_frame(
            restored.handle_hello(protocol.host_hello("h0", 8, 0)[1])
        )
        assert (ack2["epoch"], ack2["last_seq"]) == (2, 0)
        reply = restored.handle("h0", "app_arrive", protocol.app_arrive(1, "a")[1])
        assert restored.sessions["h0"].monitors["a"].app_class is AppClass.STREAMING

    def test_reference_backend_refuses_snapshots(self):
        core = ServiceCore(monitor_backend="reference")
        with pytest.raises(SimulationError, match="bank"):
            core.to_state()

    def test_snapshot_file_round_trip_and_crc_guard(self, tmp_path):
        core = self._mid_run_core()
        path = tmp_path / "daemon.snapshot"
        save_snapshot(core, str(path))
        restored = load_snapshot(str(path))
        assert restored.replay.signature() == core.replay.signature()
        assert restored.sessions["h0"].last_seq == 4

        # Flip one byte inside the stored state: the CRC must catch it.
        blob = path.read_bytes()
        needle = blob.find(b'"last_seq"')
        assert needle != -1
        corrupted = bytearray(blob)
        digit = blob.find(b"4", needle)
        corrupted[digit:digit + 1] = b"9"
        path.write_bytes(bytes(corrupted))
        with pytest.raises(SimulationError, match="CRC"):
            load_snapshot(str(path))

        path.write_text('{"format": "something-else"}')
        with pytest.raises(SimulationError, match="not a repro-service-snapshot"):
            load_snapshot(str(path))
        path.write_text("torn{")
        with pytest.raises(SimulationError, match="corrupt service snapshot"):
            load_snapshot(str(path))

    def test_daemon_killed_mid_run_restores_to_byte_identical_log(self, tmp_path):
        """The chaos drill: a FaultPlan hard-kills the daemon right after a
        scripted decision lands (no parting snapshot); a second daemon
        restores from the latest periodic snapshot on the same port; the
        surviving agent resumes the same boot and replays its journal.  The
        merged replay log must be byte-identical to an unkilled run's."""
        golden = offline_replay(["host0"], WORKLOAD, batches=BATCHES, seed=SEED)
        assert len(golden) >= 4
        golden_path = tmp_path / "golden.jsonl"
        golden.save(str(golden_path))
        snap = str(tmp_path / "daemon.snapshot")
        kill_after = len(golden) // 2

        daemon_a = PartitionDaemon(
            ("127.0.0.1", 0),
            snapshot=snap,
            snapshot_every_s=0.05,
            agent_chaos={"daemon_kill_decisions": [kill_after]},
        )
        port = daemon_a.address[1]
        errors = []

        def one():
            try:
                host = SimulatedHost(WORKLOAD, seed=host_seed(SEED, "host0"))
                churn = churn_schedule(host.apps, BATCHES, host_seed(SEED, "host0"))
                agent = HostAgent(
                    daemon_a.address, "host0",
                    connect_attempts=400, connect_delay_s=0.05,
                )
                drive_host(host, agent, batches=BATCHES, churn=churn)
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=one, daemon=True)
        thread.start()
        daemon_a.run(until_byes=1, max_seconds=120)
        assert daemon_a.killed, "the scripted daemon kill never fired"
        assert len(daemon_a.replay) > kill_after
        daemon_a.close()

        daemon_b = PartitionDaemon(
            ("127.0.0.1", port), snapshot=snap, snapshot_every_s=0.05
        )
        if os.path.exists(snap):
            assert daemon_b.restored
            # The periodic snapshot predates the crash: the agent journal
            # replay has to regenerate the lost tail.
            assert len(daemon_b.replay) <= len(daemon_a.replay)
        daemon_b.run(until_byes=1, max_seconds=120)
        thread.join(timeout=60)
        assert not errors, f"agent failure: {errors}"
        assert not daemon_b.killed
        assert daemon_b.frame_errors == 0

        live_path = tmp_path / "live.jsonl"
        daemon_b.replay.save(str(live_path))
        daemon_b.close()
        assert live_path.read_bytes() == golden_path.read_bytes()


# ---------------------------------------------------------------------------
# The read-only metrics message
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_core_metrics_counts_hosts_and_classes(self):
        core = ServiceCore()
        core.handle_hello(protocol.host_hello("h0", 1, 0)[1])
        _feed(core, "h0", [
            ("app_arrive", protocol.app_arrive(1, "a")[1]),
            ("app_arrive", protocol.app_arrive(2, "b")[1]),
            ("monitor_samples", protocol.monitor_samples(
                3, [sample_entry("a")],
                [{"app": "a", "class": AppClass.STREAMING.value,
                  "slowdown_table": None, "critical_size": None}],
            )[1]),
        ])
        frame = core.handle_metrics(protocol.metrics()[1])
        kind, payload = check_frame(frame)  # the reply itself is schema-valid
        assert kind == "metrics_reply"
        assert payload["totals"]["hosts"] == 1
        assert payload["totals"]["backend"] == "bank"
        assert payload["totals"]["observe_batch_calls"] >= 1
        assert payload["hosts"]["h0"]["live"] == 2
        assert payload["hosts"]["h0"]["classes"][AppClass.STREAMING.value] == 1
        assert payload["hosts"]["h0"]["classes"][AppClass.UNKNOWN.value] == 1
        assert payload["classes"][AppClass.STREAMING.value] == 1
        with pytest.raises(ServiceProtocolError, match="protocol version"):
            core.handle_metrics({"protocol": -1})

    def test_metrics_served_over_the_wire_without_a_handshake(self):
        """A metrics scraper is not a host: no hello required, no host
        binding, and the probe never perturbs session state."""
        with PartitionDaemon(("127.0.0.1", 0)) as daemon:
            with socket.create_connection(daemon.address, timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(pack_frame(protocol.metrics()))
                for _ in range(100):
                    daemon.pump(timeout=0.01)
                    sock.setblocking(False)
                    try:
                        peek = sock.recv(1, socket.MSG_PEEK)
                    except (BlockingIOError, InterruptedError):
                        peek = b""
                    finally:
                        sock.settimeout(10)
                    if peek:
                        break
                kind, payload = check_frame(recv_frame(sock))
                assert kind == "metrics_reply"
                assert payload["totals"]["hosts"] == 0
            assert daemon.frame_errors == 0
