"""Tests for the online partitioning service (``repro/service/``).

Four guarantees:

* **schema** — every frame off the wire passes :func:`check_frame` before
  touching session state, and flipping any single byte of a service frame
  stream is either detected or decodes to different-but-valid content —
  it never crashes the daemon (the corrupt-every-byte fuzz, mirroring the
  executor framing suite);
* **sessions** — sequenced frames are lockstep and idempotent: duplicates
  answer from the cached reply, gaps are protocol errors, and a departed
  application that re-arrives keeps its classification while its warm-up
  and rolling windows restart (the ``reset_for_restart`` regression);
* **determinism** — a live daemon serving real sockets produces a mask
  decision log bit-identical to :func:`offline_replay` on the same seeded
  trace, including tenant churn;
* **chaos** — scripted frame corruption and agent kills cost links and
  incarnations, never the daemon: sessions reconnect under fresh boots
  and the final masks converge to the clean run's.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.core.classification import AppClass
from repro.errors import SimulationError
from repro.experiments import ServiceSpec, SpecError
from repro.runtime import PoolExecutor
from repro.runtime.executors.chaos import FaultPlan
from repro.runtime.executors.framing import FrameProtocolError, FrameReader, pack_frame
from repro.service import (
    HostAgent,
    HostSession,
    PartitionDaemon,
    ReplayLog,
    ServiceCore,
    ServiceProtocolError,
    SimulatedHost,
    churn_schedule,
    host_seed,
    offline_replay,
)
from repro.service import protocol
from repro.service.agent import LocalTransport, drive_host
from repro.service.protocol import check_frame, check_protocol

WORKLOAD = "S1"
BATCHES = 12
SEED = 3
HOSTS = ("hostA", "hostB")


def fuzz_messages():
    """Representative frames of every service kind, both directions."""
    return [
        protocol.host_hello("hostA", boot=7, pid=123),
        protocol.hello_ack(epoch=2, last_seq=5),
        protocol.app_arrive(1, "xalancbmk06-0"),
        protocol.app_depart(2, "lbm06-1"),
        protocol.monitor_samples(
            3,
            samples=[
                {
                    "app": "xalancbmk06-0",
                    "llcmpkc": 12.5,
                    "stall_fraction": 0.4,
                    "effective_ways": 11,
                }
            ],
            classify=[
                {
                    "app": "xalancbmk06-0",
                    "class": AppClass.SENSITIVE.value,
                    "slowdown_table": [1.8, 1.4, 1.1, 1.0],
                    "critical_size": 3,
                }
            ],
        ),
        protocol.mask_update(2, 3, masks={"xalancbmk06-0": 0x7}, sample=["lbm06-1"]),
        protocol.host_bye(4),
        protocol.reject("protocol version 1 does not match"),
    ]


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


class TestProtocolSchema:
    def test_every_builder_passes_check_frame(self):
        for frame in fuzz_messages():
            kind, payload = check_frame(frame)
            assert kind == frame[0]
            assert payload == frame[1]

    def test_structural_rejects(self):
        bad = [
            "not a frame",
            ("only-kind",),
            ("no_such_kind", {}),
            ("app_arrive", {"seq": 1}),  # missing key
            ("app_arrive", {"seq": 1, "app": "a", "extra": 1}),
            ("app_arrive", {"seq": 0, "app": "a"}),  # sequenced from 1
            ("app_arrive", {"seq": True, "app": "a"}),  # bools are not ints
            ("app_arrive", {"seq": 1, "app": ""}),
            ("host_bye", {"seq": -1}),
            ("reject", {"reason": "must be a string"}),
        ]
        for frame in bad:
            with pytest.raises(ServiceProtocolError):
                check_frame(frame)

    def test_sample_and_classify_entries_validated(self):
        def samples(entry):
            return ("monitor_samples", {"seq": 1, "samples": [entry], "classify": []})

        def classify(entry):
            return ("monitor_samples", {"seq": 1, "samples": [], "classify": [entry]})

        good = {
            "app": "a",
            "llcmpkc": 1.0,
            "stall_fraction": 0.2,
            "effective_ways": 4,
        }
        check_frame(samples(good))
        for key, value in [
            ("llcmpkc", float("nan")),
            ("llcmpkc", float("inf")),
            ("stall_fraction", -0.1),
            ("effective_ways", "four"),
            ("effective_ways", True),
        ]:
            with pytest.raises(ServiceProtocolError):
                check_frame(samples({**good, key: value}))
        sweep = {
            "app": "a",
            "class": AppClass.SENSITIVE.value,
            "slowdown_table": [1.5, 1.0],
            "critical_size": 2,
        }
        check_frame(classify(sweep))
        for key, value in [
            ("class", "mysterious"),
            ("slowdown_table", []),
            ("slowdown_table", [1.0, float("nan")]),
            ("slowdown_table", [1.0, -2.0]),
            ("critical_size", 0),
            ("critical_size", 1.5),
        ]:
            with pytest.raises(ServiceProtocolError):
                check_frame(classify({**sweep, key: value}))

    def test_mask_update_validated(self):
        check_frame(protocol.mask_update(1, 0))
        for masks in [{}, {"": 3}, {"a": 0}, {"a": -1}, {"a": True}, {"a": "0x7"}]:
            with pytest.raises(ServiceProtocolError):
                check_frame(
                    ("mask_update", {"epoch": 1, "ack": 0, "masks": masks,
                                     "sample": [], "decision": None})
                )
        with pytest.raises(ServiceProtocolError):
            check_frame(
                ("mask_update", {"epoch": 1, "ack": 0, "masks": None,
                                 "sample": ["ok", ""], "decision": None})
            )

    def test_version_negotiation(self):
        check_protocol(protocol.host_hello("h", 1, 0)[1], "host_hello")
        with pytest.raises(ServiceProtocolError, match="protocol version"):
            check_protocol({"protocol": 1}, "host_hello")

    def test_single_byte_corruption_never_crashes(self):
        """The daemon's ingest path is ``FrameReader`` then ``check_frame``;
        flipping any one byte of a service frame stream must surface as a
        framing or schema error (or decode to different-but-valid content),
        never anything else."""
        stream = b"".join(pack_frame(m) for m in fuzz_messages())
        rejected = 0
        for position in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[position] ^= 0xFF
            reader = FrameReader()
            try:
                for frame in reader.feed(bytes(corrupted)):
                    check_frame(frame)
            except FrameProtocolError:
                rejected += 1
            except ServiceProtocolError:
                rejected += 1
            except SimulationError:
                rejected += 1
        # Sanity: corruption is actually being detected, not waved through.
        assert rejected > len(stream) // 4


# ---------------------------------------------------------------------------
# Host sessions: lockstep, idempotence, restart churn
# ---------------------------------------------------------------------------


def make_session(policy="lfoc"):
    return HostSession("h0", policy=policy)


def arrive(session, seq, app):
    return session.handle("app_arrive", protocol.app_arrive(seq, app)[1])


def depart(session, seq, app):
    return session.handle("app_depart", protocol.app_depart(seq, app)[1])


def samples(session, seq, entries, classify=()):
    return session.handle(
        "monitor_samples", protocol.monitor_samples(seq, entries, classify)[1]
    )


def sample_entry(app, ways=11, llcmpkc=40.0, stall=0.5):
    return {
        "app": app,
        "llcmpkc": llcmpkc,
        "stall_fraction": stall,
        "effective_ways": ways,
    }


class TestHostSession:
    def test_rejects_unknown_policy(self):
        with pytest.raises(SimulationError, match="unknown service policy"):
            HostSession("h0", policy="fifo")

    def test_sequenced_frame_before_hello_is_an_error(self):
        session = make_session()
        with pytest.raises(ServiceProtocolError, match="before host_hello"):
            arrive(session, 1, "a")

    def test_duplicates_answer_from_the_cached_reply(self):
        session = make_session()
        session.hello(boot=1)
        first = arrive(session, 1, "a")
        again = arrive(session, 1, "a")
        assert again == first
        assert session.duplicates_dropped == 1
        assert session.last_seq == 1

    def test_sequence_gap_is_a_protocol_error(self):
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        with pytest.raises(ServiceProtocolError, match="jumped from seq 1 to 3"):
            arrive(session, 3, "b")

    def test_restart_keeps_classification_but_resets_transients(self):
        """The arrive → depart → arrive regression: a re-arriving application
        is a restart (``reset_for_restart``), not a cold start — the sweep
        outcome survives, the warm-up countdown and rolling windows do not."""
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        sweep = {
            "app": "a",
            "class": AppClass.SENSITIVE.value,
            "slowdown_table": [2.0, 1.8, 1.6, 1.45, 1.3, 1.2, 1.12, 1.06, 1.02, 1.01, 1.0],
            "critical_size": 4,
        }
        samples(session, 2, [sample_entry("a")], [sweep])
        monitor = session.monitors["a"]
        assert monitor.app_class is AppClass.SENSITIVE
        assert monitor.warmup_remaining < monitor.config.warmup_samples
        version = monitor.classification_version
        assert version == 1

        depart(session, 3, "a")
        assert "a" not in session.monitors
        assert session.parked["a"] is monitor
        assert session.live == []

        reply = arrive(session, 4, "a")
        assert session.monitors["a"] is monitor  # same lifetime state, no cold start
        assert "a" not in session.parked
        assert monitor.app_class is AppClass.SENSITIVE
        assert monitor.slowdown_table[0] == 2.0 and len(monitor.slowdown_table) == 11
        assert monitor.critical_size == 4
        assert monitor.classification_version == version
        # ... but the transient state restarted with the new incarnation.
        assert monitor.warmup_remaining == monitor.config.warmup_samples
        assert monitor.average_llcmpkc() == 0.0
        assert not monitor.in_sampling_mode
        # The known classification feeds the decision immediately — and since
        # neither the tenant set nor any sweep outcome changed relative to
        # the pre-churn state, the unchanged allocation answers from the
        # version-vector fast path and is not re-pushed to the host.
        assert reply[1]["masks"] is None
        assert session.decision_fast_hits >= 1
        assert session._last_pushed is not None and "a" in session._last_pushed

    def test_departing_unknown_app_is_a_noop(self):
        session = make_session()
        session.hello(boot=1)
        reply = depart(session, 1, "ghost")
        assert reply[0] == "mask_update"
        assert session.last_seq == 1

    def test_new_boot_restarts_sequencing_and_repushes_masks(self):
        session = make_session()
        epoch, last_seq = session.hello(boot=1)
        assert (epoch, last_seq) == (1, 0)
        first = arrive(session, 1, "a")
        assert first[1]["masks"] is not None
        samples(
            session, 2, [sample_entry("a")],
            [{"app": "a", "class": AppClass.STREAMING.value,
              "slowdown_table": None, "critical_size": None}],
        )

        # Same boot reconnect: epoch bumps, sequencing continues.
        assert session.hello(boot=1) == (2, 2)
        assert session.live == ["a"]

        # New boot: full restart — monitors parked, sequencing restarts.
        assert session.hello(boot=2) == (3, 0)
        assert session.live == []
        assert "a" in session.parked
        repush = arrive(session, 1, "a")
        # The rebooted host lost its CAT state, so the (unchanged) decision
        # is pushed again rather than suppressed as a duplicate.
        assert repush[1]["masks"] == first[1]["masks"]
        assert [d.epoch for d in session.replay.for_host("h0")] == [1, 3]

    def test_stale_frame_right_after_reboot_answers_bare_ack(self):
        """A duplicate arriving while the rebooted session has no cached
        reply yet is acknowledged with a bare mask_update, not a crash."""
        session = make_session()
        session.hello(boot=1)
        arrive(session, 1, "a")
        session.hello(boot=2)
        reply = session.handle("app_arrive", {"seq": 0, "app": "a"})
        assert reply == protocol.mask_update(session.epoch, 0)
        assert session.duplicates_dropped == 1


class TestServiceCore:
    def test_unregistered_host_is_rejected(self):
        core = ServiceCore()
        with pytest.raises(ServiceProtocolError, match="unregistered host"):
            core.handle("ghost", "app_arrive", protocol.app_arrive(1, "a")[1])

    def test_version_mismatch_rejected_at_hello(self):
        core = ServiceCore()
        payload = dict(protocol.host_hello("h0", 1, 0)[1])
        payload["protocol"] = 1
        with pytest.raises(ServiceProtocolError, match="protocol version"):
            core.handle_hello(payload)

    def test_ever_completed_survives_respawn(self):
        core = ServiceCore()
        transport = LocalTransport(core, "h0")
        host = SimulatedHost(WORKLOAD, seed=1)
        drive_host(host, transport, batches=2)
        assert core.ever_completed == {"h0"}
        # A supervisor respawning the finished agent re-registers it ...
        transport.hello()
        assert not core.sessions["h0"].completed
        # ... without un-finishing it for the daemon's run loop.
        assert core.ever_completed == {"h0"}


# ---------------------------------------------------------------------------
# Replay log + offline oracle
# ---------------------------------------------------------------------------


class TestReplayLog:
    def test_offline_replay_is_deterministic(self):
        a = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        b = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        assert a.signature() == b.signature()
        assert len(a) > 0
        # The seeded churn is part of the trace, not an optional extra.
        host = SimulatedHost(WORKLOAD, seed=host_seed(SEED, HOSTS[0]))
        assert churn_schedule(host.apps, BATCHES, host_seed(SEED, HOSTS[0]))

    def test_different_workloads_produce_different_logs(self):
        a = offline_replay("h0", "S1", batches=6, seed=0)
        b = offline_replay("h0", "S2", batches=6, seed=0)
        assert a.signature() != b.signature()

    def test_jsonl_round_trip(self, tmp_path):
        log = offline_replay("h0", WORKLOAD, batches=6, seed=1)
        path = tmp_path / "replay.jsonl"
        log.save(str(path))
        loaded = ReplayLog.load(str(path))
        assert loaded.signature() == log.signature()
        assert loaded.final_masks("h0") == log.final_masks("h0")

    def test_load_rejects_corrupt_and_non_contiguous_logs(self, tmp_path):
        log = offline_replay("h0", WORKLOAD, batches=6, seed=1)
        assert len(log) >= 2
        path = tmp_path / "replay.jsonl"
        log.save(str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop decision 0
        with pytest.raises(SimulationError, match="not contiguous"):
            ReplayLog.load(str(path))
        path.write_text("{not json\n")
        with pytest.raises(SimulationError, match="corrupt replay log"):
            ReplayLog.load(str(path))
        path.write_text(json.dumps({"host": "h0"}) + "\n")
        with pytest.raises(SimulationError, match="malformed replay record"):
            ReplayLog.load(str(path))


# ---------------------------------------------------------------------------
# End-to-end: live daemon over sockets vs the offline oracle
# ---------------------------------------------------------------------------


def run_agents_threaded(daemon, host_ids, *, chaos=None, batches=BATCHES, seed=SEED):
    """Drive host agents in threads against an in-process daemon, which pumps
    in this thread; returns the agents (for reconnect counters)."""
    agents, errors, threads = [], [], []

    def one(host_id):
        try:
            host = SimulatedHost(WORKLOAD, seed=host_seed(seed, host_id))
            churn = churn_schedule(host.apps, batches, host_seed(seed, host_id))
            agent = HostAgent(
                daemon.address, host_id, chaos=chaos, connect_delay_s=0.05
            )
            agents.append(agent)
            drive_host(host, agent, batches=batches, churn=churn)
        except BaseException as exc:  # surfaced in the main thread below
            errors.append((host_id, exc))

    for host_id in host_ids:
        thread = threading.Thread(target=one, args=(host_id,), daemon=True)
        thread.start()
        threads.append(thread)
    daemon.run(until_byes=len(host_ids), max_seconds=120)
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, f"agent failures: {errors}"
    return agents


class TestLiveService:
    def test_live_daemon_matches_offline_oracle_bit_for_bit(self):
        golden = offline_replay(list(HOSTS), WORKLOAD, batches=BATCHES, seed=SEED)
        with PartitionDaemon(("127.0.0.1", 0)) as daemon:
            run_agents_threaded(daemon, HOSTS)
            assert daemon.frame_errors == 0
            for host in HOSTS:
                assert daemon.replay.signature(host) == golden.signature(host)
                assert daemon.replay.final_masks(host) == golden.final_masks(host)

    def test_frame_corruption_costs_the_link_not_the_session(self):
        golden = offline_replay(["hostA"], WORKLOAD, batches=BATCHES, seed=SEED)
        plan = FaultPlan(agent_corrupt_frames=(5,))
        with PartitionDaemon(("127.0.0.1", 0)) as daemon:
            (agent,) = run_agents_threaded(daemon, ["hostA"], chaos=plan)
            assert daemon.frame_errors >= 1
            assert agent.reconnects >= 1
            session = daemon.core.sessions["hostA"]
            assert session.epoch >= 2  # the reconnect re-registered
            assert session.completed
            # Replayed batches may shift *when* decisions land, but the
            # session converges to the clean run's final allocation.
            assert daemon.replay.final_masks("hostA") == golden.final_masks("hostA")

    def test_supervised_agent_kill_and_respawn_converges(self):
        """The CI chaos drill, in-process: the daemon babysits its own agent,
        the first incarnation dies mid-trace (scripted ``os._exit``), the
        respawn re-runs the trace clean and lands on the oracle's masks."""
        golden = offline_replay(["host0"], WORKLOAD, batches=BATCHES, seed=SEED)
        daemon = PartitionDaemon(
            ("127.0.0.1", 0),
            supervise=1,
            workload=WORKLOAD,
            batches=BATCHES,
            seed=SEED,
            agent_chaos={"agent_kill_batches": [3]},
        )
        try:
            summary = daemon.run(until_byes=1, max_seconds=180)
        finally:
            daemon.close()
        assert summary["supervisor"]["restarts"] >= 1
        # A scripted kill is a clean EOF at the daemon: no frame errors.
        assert daemon.frame_errors == 0
        session = daemon.core.sessions["host0"]
        assert session.epoch >= 2
        assert daemon.replay.final_masks("host0") == golden.final_masks("host0")

    def test_supervise_requires_a_workload(self):
        with pytest.raises(SimulationError, match="need a workload"):
            PartitionDaemon(("127.0.0.1", 0), supervise=2)


# ---------------------------------------------------------------------------
# Warm pool-worker reuse across a context swap
# ---------------------------------------------------------------------------


def _pid_probe(payload, task):
    """Module-level (spawn-picklable) task: report who ran it, with what."""
    return (os.getpid(), payload, task)


class TestPoolWarmReuse:
    def test_worker_pids_survive_a_context_swap(self):
        executor = PoolExecutor(jobs=2)
        with executor:
            executor.set_context(_pid_probe, "generation-1")
            for task in range(8):
                executor.submit(task)
            first = [result for _, result in executor.as_completed()]
            pool = executor._pool
            assert pool is not None

            executor.set_context(_pid_probe, "generation-2")
            for task in range(8):
                executor.submit(task)
            second = [result for _, result in executor.as_completed()]

            # The swap reached every job in-band (a worker-side
            # reset_context), without tearing the pool down ...
            assert {payload for _, payload, _ in first} == {"generation-1"}
            assert {payload for _, payload, _ in second} == {"generation-2"}
            assert executor._pool is pool
            # ... so the processes that ran the new generation are the very
            # ones that ran the old: no respawn, no new PIDs.
            pids_before = {pid for pid, _, _ in first}
            pids_after = {pid for pid, _, _ in second}
            assert pids_after <= pids_before
            assert pids_before and pids_after


# ---------------------------------------------------------------------------
# Fault-plan agent hooks + the service spec
# ---------------------------------------------------------------------------


class TestAgentFaultPlan:
    def test_seeded_agent_faults_are_deterministic(self):
        a = FaultPlan.seeded(9, batches=20, agent_kills=1, agent_corrupt=2, agent_delays=1)
        b = FaultPlan.seeded(9, batches=20, agent_kills=1, agent_corrupt=2, agent_delays=1)
        assert a == b
        assert a.agent_kill_batches and a.agent_corrupt_frames and a.agent_delay_batches

    def test_dict_round_trip_and_validation(self):
        plan = FaultPlan(agent_kill_batches=(3,), agent_corrupt_frames=(5, 14))
        data = json.loads(json.dumps(plan.to_dict()))  # the --agent-chaos path
        assert FaultPlan.from_dict(data) == plan
        with pytest.raises(SimulationError, match="non-negative"):
            FaultPlan(agent_kill_batches=(-1,))


class TestServiceSpec:
    def test_round_trip(self):
        spec = ServiceSpec(
            supervise=2,
            workload=WORKLOAD,
            batches=20,
            seed=7,
            agent_chaos={"agent_kill_batches": [3]},
            replay_log="out.jsonl",
        )
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert ServiceSpec().to_dict() == {}

    def test_validation(self):
        with pytest.raises(SpecError, match="policy"):
            ServiceSpec(policy="fifo")
        with pytest.raises(SpecError, match="needs a workload"):
            ServiceSpec(supervise=1)
        with pytest.raises(SpecError, match="batches"):
            ServiceSpec(batches=0)
        with pytest.raises(SpecError, match="agent_chaos"):
            ServiceSpec(agent_chaos={"agent_kill_batch": [3]})

    def test_load_toml(self, tmp_path):
        path = tmp_path / "service.toml"
        path.write_text(
            "[service]\n"
            f'workload = "{WORKLOAD}"\n'
            "supervise = 2\n"
            "batches = 24\n"
            "seed = 7\n"
            "[service.agent_chaos]\n"
            "agent_kill_batches = [3]\n"
        )
        spec = ServiceSpec.load(str(path))
        assert spec.supervise == 2
        assert spec.workload == WORKLOAD
        assert spec.fault_plan() == FaultPlan(agent_kill_batches=(3,))
