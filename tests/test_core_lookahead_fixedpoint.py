"""Tests for UCP's lookahead allocation and the fixed-point toolkit."""

import numpy as np
import pytest

from repro.core import (
    SCALE,
    fixed_div,
    fixed_mul,
    fixed_ratio,
    from_fixed,
    lookahead,
    lookahead_int,
    marginal_utility,
    slowdown_table_fixed,
    table_to_fixed,
    to_fixed,
)
from repro.errors import ClusteringError, ReproError


def declining(start, step, n=11):
    """A convex declining cost table."""
    return [max(start - step * i, 0.1) for i in range(n)]


class TestLookahead:
    def test_allocates_every_way(self):
        tables = [declining(10, 1), declining(5, 0.5), declining(2, 0.1)]
        allocation = lookahead(tables, 11)
        assert sum(allocation) == 11
        assert all(w >= 1 for w in allocation)

    def test_greedy_prefers_the_steepest_curve(self):
        steep = declining(20, 2)
        flat = declining(20, 0.01)
        allocation = lookahead([steep, flat], 11)
        assert allocation[0] > allocation[1]

    def test_flat_tables_split_evenly_ish(self):
        flat = [1.0] * 11
        allocation = lookahead([flat, flat], 11)
        assert sum(allocation) == 11
        assert min(allocation) >= 5

    def test_single_application_gets_everything(self):
        assert lookahead([declining(5, 0.5)], 11) == [11]

    def test_min_ways_respected(self):
        tables = [declining(10, 1), [1.0] * 11]
        allocation = lookahead(tables, 11, min_ways=2)
        assert min(allocation) >= 2

    def test_infeasible_minimum_rejected(self):
        with pytest.raises(ClusteringError):
            lookahead([[1.0] * 4] * 5, 4)

    def test_short_table_rejected(self):
        with pytest.raises(ClusteringError):
            lookahead([[1.0, 0.9]], 11)

    def test_empty_tables_rejected(self):
        with pytest.raises(ClusteringError):
            lookahead([], 11)

    def test_marginal_utility_definition(self):
        table = [10.0, 6.0, 5.0]
        assert marginal_utility(table, 1, 3) == pytest.approx(2.5)
        with pytest.raises(ClusteringError):
            marginal_utility(table, 2, 2)

    def test_non_convex_jump_is_found(self):
        # No benefit for the second way, large benefit at the third: lookahead
        # must consider the 2-way jump.
        table_a = [10.0, 10.0, 1.0, 1.0]
        table_b = [5.0, 4.5, 4.4, 4.3]
        allocation = lookahead([table_a, table_b], 4)
        assert allocation[0] >= 3


class TestLookaheadInt:
    def test_matches_float_version_on_scaled_tables(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            n_apps = int(rng.integers(2, 5))
            tables_int = [
                sorted((int(v) for v in rng.integers(1000, 3000, size=11)), reverse=True)
                for _ in range(n_apps)
            ]
            tables_float = [[v / SCALE for v in t] for t in tables_int]
            assert lookahead_int(tables_int, 11) == lookahead(tables_float, 11)

    def test_allocates_every_way(self):
        tables = [[3000, 2000, 1500, 1200, 1100, 1050, 1020, 1010, 1005, 1002, 1000]] * 2
        allocation = lookahead_int(tables, 11)
        assert sum(allocation) == 11

    def test_rejects_non_integer_costs(self):
        with pytest.raises(ClusteringError):
            lookahead_int([[1.5] * 11], 11)

    def test_rejects_infeasible_minimum(self):
        with pytest.raises(ClusteringError):
            lookahead_int([[1] * 4] * 5, 4)


class TestFixedPoint:
    def test_round_trip(self):
        assert from_fixed(to_fixed(1.273)) == pytest.approx(1.273)

    def test_ratio_rounds_to_nearest(self):
        assert fixed_ratio(1, 3) == 333
        assert fixed_ratio(2, 3) == 667

    def test_ratio_handles_signs(self):
        assert fixed_ratio(-1, 2) == -500
        assert fixed_ratio(1, -2) == -500
        assert fixed_ratio(-1, -2) == 500

    def test_div_and_mul_are_inverse_ish(self):
        a, b = to_fixed(1.5), to_fixed(0.75)
        assert from_fixed(fixed_mul(fixed_div(a, b), b)) == pytest.approx(1.5, abs=2e-3)

    def test_division_by_zero_rejected(self):
        with pytest.raises(ReproError):
            fixed_ratio(1, 0)
        with pytest.raises(ReproError):
            fixed_div(1, 0)

    def test_table_to_fixed(self):
        assert table_to_fixed([1.0, 1.2735]) == [1000, 1274]

    def test_slowdown_table_from_ipc_counters(self):
        # IPC doubles from 1 way to full cache: slowdown at 1 way must be ~2.0.
        ipc_fixed = [500, 750, 1000]
        table = slowdown_table_fixed(ipc_fixed)
        assert table == [2000, 1333, 1000]

    def test_slowdown_table_rejects_non_positive_ipc(self):
        with pytest.raises(ReproError):
            slowdown_table_fixed([1000, 0])
        with pytest.raises(ReproError):
            slowdown_table_fixed([])
