"""Tests for the pluggable executor protocol (serial / pool / tcp).

Three guarantees, per backend:

* **equivalence** — every backend produces bit-identical results for the
  same specs, merged in submission order regardless of completion order;
* **labels** — ``RunSpec.label`` threads through to ``RunResult.label``,
  defaulting to the driver's name as documented;
* **faults** — a driver raising ``SimulationError`` mid-batch surfaces the
  failing spec's label and leaves earlier results with the caller; a killed
  TCP worker triggers resubmission and the final rows are unchanged.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SimulationError
from repro.runtime import (
    EngineConfig,
    DunnUserLevelDaemon,
    PoolExecutor,
    RunSpec,
    SerialExecutor,
    StockLinuxDriver,
    TCPExecutor,
)
from repro.runtime.executors import parse_address, task_label, worker_tables
from repro.workloads import workload_by_name

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

FAST = EngineConfig(
    instructions_per_run=2.0e8, min_completions=1, record_traces=False
)


class ExplodingDriver(StockLinuxDriver):
    """Fails deterministically at run start (fault-path tests, serial only)."""

    name = "Exploding"

    def on_start(self, apps, platform):
        raise SimulationError("boom: driver refused to start")


def make_specs(workload):
    return [
        RunSpec(workload=workload, driver_cls=StockLinuxDriver),
        RunSpec(workload=workload, driver_cls=DunnUserLevelDaemon, label="Dunn"),
        RunSpec(workload=workload, driver_cls=StockLinuxDriver, label="baseline-2"),
        RunSpec(workload=workload, driver_cls=DunnUserLevelDaemon),
    ]


def result_key(result):
    """Exactly-comparable image of a RunResult for cross-backend equality."""
    return (
        result.policy,
        result.label,
        result.workload,
        result.duration_s,
        {name: stats.completion_times for name, stats in result.app_stats.items()},
        sorted(result.slowdowns().items()),
        result.n_repartitions,
    )


@pytest.fixture(scope="module")
def p1():
    return workload_by_name("P1")


@pytest.fixture(scope="module")
def serial_results(platform, p1):
    executor = SerialExecutor()
    executor.prepare(platform, default_config=FAST)
    with executor:
        return executor.map_specs(make_specs(p1))


def spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--quiet",
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestSerialExecutor:
    def test_labels_thread_through(self, serial_results):
        assert [r.label for r in serial_results] == [
            "Stock-Linux",  # defaulted to the driver's name
            "Dunn",
            "baseline-2",
            "Dunn",  # defaulted again
        ]
        assert [r.policy for r in serial_results] == [
            "Stock-Linux",
            "Dunn",
            "Stock-Linux",
            "Dunn",
        ]

    def test_submit_as_completed_streams(self, platform, p1):
        executor = SerialExecutor()
        executor.prepare(platform, default_config=FAST)
        specs = make_specs(p1)[:2]
        tickets = [executor.submit(spec) for spec in specs]
        assert tickets == [0, 1]
        assert executor.outstanding() == 2
        seen = list(executor.as_completed())
        assert [t for t, _ in seen] == tickets
        assert executor.outstanding() == 0

    def test_requires_context(self, p1):
        executor = SerialExecutor()
        with pytest.raises(SimulationError, match="no context"):
            executor.submit(RunSpec(workload=p1, driver_cls=StockLinuxDriver))

    def test_error_surfaces_label_and_keeps_prior_results(self, platform, p1):
        executor = SerialExecutor()
        executor.prepare(platform, default_config=FAST)
        executor.submit(RunSpec(workload=p1, driver_cls=StockLinuxDriver))
        executor.submit(
            RunSpec(workload=p1, driver_cls=ExplodingDriver, label="bad-run")
        )
        executor.submit(RunSpec(workload=p1, driver_cls=StockLinuxDriver))
        collected = []
        with pytest.raises(SimulationError, match="bad-run"):
            for ticket, result in executor.as_completed():
                collected.append((ticket, result))
        # The run before the failure stays with the caller, intact.
        assert len(collected) == 1
        assert collected[0][0] == 0
        assert collected[0][1].policy == "Stock-Linux"

    def test_context_swap_with_outstanding_work_rejected(self, platform, p1):
        executor = SerialExecutor()
        executor.prepare(platform, default_config=FAST)
        executor.submit(RunSpec(workload=p1, driver_cls=StockLinuxDriver))
        with pytest.raises(SimulationError, match="outstanding"):
            executor.prepare(platform, default_config=FAST)

    def test_non_simulation_errors_also_wrapped_with_label(self, platform, p1):
        executor = SerialExecutor()
        executor.prepare(platform, default_config=FAST)
        spec = RunSpec(
            workload=p1,
            driver_cls=StockLinuxDriver,
            driver_kwargs={"no_such_kwarg": 1},  # TypeError at construction
            label="typo-run",
        )
        with pytest.raises(SimulationError, match="typo-run.*TypeError"):
            executor.map_specs([spec])

    def test_task_label_helper(self, p1):
        spec = RunSpec(workload=p1, driver_cls=StockLinuxDriver)
        assert task_label(spec) == "Stock-Linux@P1"
        assert task_label({"not": "a spec"}).startswith("{")


class TestPoolExecutor:
    def test_matches_serial_bit_for_bit(self, platform, p1, serial_results):
        executor = PoolExecutor(jobs=2)
        with executor:
            executor.prepare(platform, default_config=FAST)
            results = executor.map_specs(make_specs(p1))
        assert [result_key(r) for r in results] == [
            result_key(r) for r in serial_results
        ]

    def test_inline_fallback_wraps_errors(self, platform, p1):
        executor = PoolExecutor(jobs=1)
        with executor:
            executor.prepare(platform, default_config=FAST)
            with pytest.raises(SimulationError, match="bad-run"):
                executor.map_specs(
                    [RunSpec(workload=p1, driver_cls=ExplodingDriver, label="bad-run")]
                )

    def test_rejects_zero_jobs(self):
        with pytest.raises(SimulationError):
            PoolExecutor(jobs=0)


class TestWorkerTables:
    def test_tables_shared_per_platform_and_bound(self, platform):
        assert worker_tables(platform, 16) is worker_tables(platform, 16)
        assert worker_tables(platform, 16) is not worker_tables(platform, 32)


class TestTCPExecutor:
    def test_parse_address(self):
        assert parse_address("10.0.0.1:7070") == ("10.0.0.1", 7070)
        with pytest.raises(SimulationError, match="host:port"):
            parse_address("7070")
        with pytest.raises(SimulationError, match="host:port"):
            parse_address("host:")

    def test_matches_serial_with_two_workers(self, platform, p1, serial_results):
        executor = TCPExecutor(("127.0.0.1", 0), min_workers=2)
        _host, port = executor.address
        workers = [spawn_worker(port), spawn_worker(port)]
        try:
            with executor:
                executor.prepare(platform, default_config=FAST)
                results = executor.map_specs(make_specs(p1))
        finally:
            for proc in workers:
                proc.wait(timeout=30)
        assert executor.retries == 0
        assert [result_key(r) for r in results] == [
            result_key(r) for r in serial_results
        ]

    def test_killed_worker_resubmits_with_identical_rows(
        self, platform, p1, serial_results
    ):
        executor = TCPExecutor(("127.0.0.1", 0), min_workers=2, heartbeat_s=1.0)
        _host, port = executor.address
        # One worker dies without replying the moment its first run arrives
        # (min_workers=2 guarantees it gets one); the survivor picks up the
        # orphaned run.
        workers = [spawn_worker(port, "--crash-after", "0"), spawn_worker(port)]
        try:
            with executor:
                executor.prepare(platform, default_config=FAST)
                results = executor.map_specs(make_specs(p1))
        finally:
            for proc in workers:
                proc.wait(timeout=30)
        assert executor.retries >= 1
        assert [result_key(r) for r in results] == [
            result_key(r) for r in serial_results
        ]

    def test_no_workers_fails_loudly(self, platform, p1):
        executor = TCPExecutor(("127.0.0.1", 0), connect_timeout_s=0.6)
        with executor:
            executor.prepare(platform, default_config=FAST)
            with pytest.raises(SimulationError, match="0 of 1 required workers"):
                executor.map_specs([RunSpec(workload=p1, driver_cls=StockLinuxDriver)])

    def test_fewer_than_min_workers_fails_loudly(self, platform, p1):
        executor = TCPExecutor(
            ("127.0.0.1", 0), min_workers=2, connect_timeout_s=2.0
        )
        _host, port = executor.address
        worker = spawn_worker(port)  # one of the two required workers
        try:
            with executor:
                executor.prepare(platform, default_config=FAST)
                with pytest.raises(SimulationError, match="of 2 required workers"):
                    executor.map_specs(
                        [RunSpec(workload=p1, driver_cls=StockLinuxDriver)]
                    )
        finally:
            worker.wait(timeout=30)

    def test_min_workers_validated(self):
        with pytest.raises(SimulationError):
            TCPExecutor(("127.0.0.1", 0), min_workers=0)

    def test_malformed_frame_drops_link_not_study(self, platform):
        """A wrong-shape frame from a buggy worker costs the link only."""
        import socket as socket_mod

        from repro.runtime.executors.framing import pack_frame
        from repro.runtime.executors.tcp import _WorkerLink

        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            ours, theirs = socket_mod.socketpair()
            ours.setblocking(False)
            link = _WorkerLink(sock=ours, peer="test")
            executor._links.append(link)
            executor._selector.register(ours, __import__("selectors").EVENT_READ, link)
            theirs.sendall(pack_frame("not-a-tuple"))
            executor._read_link(link)  # must not raise
            assert link not in executor._links
        finally:
            theirs.close()
            executor.close()

    def test_wrong_shape_error_frame_drops_link_not_study(self, platform):
        import socket as socket_mod

        from repro.runtime.executors.framing import pack_frame
        from repro.runtime.executors.tcp import _WorkerLink

        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            ours, theirs = socket_mod.socketpair()
            ours.setblocking(False)
            link = _WorkerLink(sock=ours, peer="test")
            executor._links.append(link)
            executor._selector.register(ours, __import__("selectors").EVENT_READ, link)
            # An "error" frame whose payload has no .ticket attribute.
            theirs.sendall(pack_frame(("error", object())))
            executor._read_link(link)  # must not raise
            assert link not in executor._links
        finally:
            theirs.close()
            executor.close()

    def test_worker_exits_cleanly_when_coordinator_drops_it(self):
        import socket as socket_mod

        listener = socket_mod.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        _host, port = listener.getsockname()
        proc = spawn_worker(port)
        conn, _addr = listener.accept()
        conn.close()  # drop the worker without any shutdown frame
        listener.close()
        assert proc.wait(timeout=30) == 0


class TestCrossExecutorStudyEquivalence:
    def test_fig7_rows_bit_identical_across_serial_pool_tcp(self, platform):
        """The acceptance pin: one study, three backends, identical rows."""
        from repro.analysis import fig7_dynamic_study
        from repro.workloads import Workload

        workloads = [Workload("xq-mix", ("mcf06", "lbm06", "xalancbmk06", "gamess06"))]

        def rows_under(executor):
            rows = fig7_dynamic_study(
                workloads,
                engine_config=FAST,
                platform=platform,
                executor=executor,
            )
            return [
                tuple(getattr(row, field) for field in type(row).__dataclass_fields__)
                for row in rows
            ]

        serial_rows = rows_under("serial")
        assert rows_under({"name": "pool", "workers": 2}) == serial_rows

        tcp = TCPExecutor(("127.0.0.1", 0), min_workers=2)
        _host, port = tcp.address
        workers = [spawn_worker(port), spawn_worker(port)]
        try:
            tcp_rows = rows_under(tcp)
        finally:
            tcp.close()
            for proc in workers:
                proc.wait(timeout=30)
        assert tcp_rows == serial_rows

    def test_static_scenarios_run_over_tcp(self):
        """Static (estimator) scenarios shard over the same protocol."""
        from repro.experiments import (
            PolicySpec,
            ScenarioSpec,
            StudySpec,
            WorkloadSpec,
            run_study,
        )

        spec = StudySpec(
            name="static-tcp",
            scenarios=(
                ScenarioSpec(
                    name="stat",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1", "S2")),),
                    policies=(PolicySpec("lfoc"),),
                ),
            ),
        )
        serial_rows = run_study(spec, executor="serial").rows()

        tcp = TCPExecutor(("127.0.0.1", 0), min_workers=1)
        _host, port = tcp.address
        worker = spawn_worker(port)
        try:
            with tcp:
                tcp_rows = run_study(spec, executor=tcp).rows()
        finally:
            worker.wait(timeout=30)
        assert tcp_rows == serial_rows
