"""Tests for the static cache-allocation policies (LFOC, Dunn, KPart, UCP...)."""

import numpy as np
import pytest

from repro.core import AppClass, ClusteringSolution, WayAllocation, classify_profile
from repro.errors import ClusteringError
from repro.policies import (
    BestStaticPolicy,
    DunnPolicy,
    KPartPolicy,
    LfocKernelPolicy,
    LfocPolicy,
    StockLinuxPolicy,
    UcpPolicy,
    build_dendrogram,
    evaluate_level,
    kmeans_1d,
)
from repro.simulator import ClusteringEstimator


class TestStockLinux:
    def test_single_cluster_over_whole_cache(self, platform, mix8):
        solution = StockLinuxPolicy().cluster(mix8, platform)
        assert solution.n_clusters == 1
        assert solution.clusters[0].ways == platform.llc_ways

    def test_allocation_is_full_mask_for_everyone(self, platform, mix8):
        allocation = StockLinuxPolicy().allocate(mix8, platform)
        assert all(mask == platform.full_mask for mask in allocation.masks.values())

    def test_empty_workload_rejected(self, platform):
        with pytest.raises(ClusteringError):
            StockLinuxPolicy().cluster({}, platform)


class TestLfocPolicy:
    def test_streaming_apps_confined(self, platform, mix8):
        solution = LfocPolicy().cluster(mix8, platform)
        for name, profile in mix8.items():
            if classify_profile(profile) is AppClass.STREAMING:
                assert solution.ways_of(name) <= 2

    def test_sensitive_apps_get_most_of_the_cache(self, platform, mix8):
        solution = LfocPolicy().cluster(mix8, platform)
        sensitive_ways = sum(
            c.ways for c in solution.clusters if c.label == "sensitive"
        )
        assert sensitive_ways >= platform.llc_ways - 2

    def test_covers_whole_workload(self, platform, mix8):
        assert LfocPolicy().cluster(mix8, platform).covers(mix8)

    def test_improves_fairness_over_stock(self, platform, mix8):
        estimator = ClusteringEstimator(platform, mix8)
        stock = estimator.evaluate_unpartitioned()
        lfoc = estimator.evaluate(LfocPolicy().cluster(mix8, platform))
        assert lfoc.unfairness < stock.unfairness

    def test_kernel_variant_is_equivalent_shape(self, platform, mix8):
        float_solution = LfocPolicy().cluster(mix8, platform)
        kernel_solution = LfocKernelPolicy().cluster(mix8, platform)
        # Same cluster structure (way counts may differ by rounding of the
        # fixed-point slowdown tables, but the grouping must agree).
        float_groups = {tuple(sorted(c.apps)) for c in float_solution.clusters}
        kernel_groups = {tuple(sorted(c.apps)) for c in kernel_solution.clusters}
        assert float_groups == kernel_groups

    def test_profiles_resampled_to_platform(self, catalog, platform):
        # Profiles collected for 20 ways still work on the 11-way platform.
        profiles = {
            name: catalog[name].resampled(20)
            for name in ("lbm06", "xalancbmk06", "gamess06")
        }
        solution = LfocPolicy().cluster(profiles, platform)
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_all_light_workload_yields_single_cluster(self, catalog, platform):
        profiles = {n: catalog[n] for n in ("gamess06", "namd06", "povray06")}
        solution = LfocPolicy().cluster(profiles, platform)
        assert solution.n_clusters == 1


class TestUcp:
    def test_strict_partitioning(self, platform, mix8):
        solution = UcpPolicy().cluster(mix8, platform)
        assert solution.is_partitioning()
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_rejects_more_apps_than_ways(self, platform, catalog):
        names = list(catalog)[:12]
        profiles = {n: catalog[n] for n in names}
        with pytest.raises(ClusteringError):
            UcpPolicy().cluster(profiles, platform)

    def test_metric_validation(self):
        with pytest.raises(ClusteringError):
            UcpPolicy(metric="energy")

    def test_slowdown_metric_variant(self, platform, mix8):
        solution = UcpPolicy(metric="slowdown").cluster(mix8, platform)
        assert solution.is_partitioning()


class TestKmeans:
    def test_separates_two_obvious_groups(self):
        values = [0.1, 0.12, 0.11, 0.9, 0.88, 0.91]
        labels, centroids = kmeans_1d(values, 2)
        assert set(labels[:3]) == {0}
        assert set(labels[3:]) == {1}
        assert centroids[0] < centroids[1]

    def test_k_equals_n(self):
        labels, _ = kmeans_1d([0.1, 0.5, 0.9], 3)
        assert sorted(labels) == [0, 1, 2]

    def test_invalid_k_rejected(self):
        with pytest.raises(ClusteringError):
            kmeans_1d([0.1, 0.2], 3)
        with pytest.raises(ClusteringError):
            kmeans_1d([], 1)

    def test_deterministic(self):
        values = list(np.linspace(0, 1, 20))
        a = kmeans_1d(values, 3)
        b = kmeans_1d(values, 3)
        assert np.array_equal(a[0], b[0])


class TestDunn:
    def test_produces_full_coverage_allocation(self, platform, mix8):
        allocation = DunnPolicy().allocate(mix8, platform)
        assert set(allocation.masks) == set(mix8)
        assert all(mask > 0 for mask in allocation.masks.values())

    def test_high_stall_apps_get_more_ways(self, platform, mix8):
        policy = DunnPolicy()
        allocation = policy.allocate(mix8, platform)
        assert allocation.ways_of("lbm06") >= allocation.ways_of("gamess06")

    def test_stall_metric_orders_classes(self, platform, mix8):
        stalls = DunnPolicy().stall_metric(mix8, platform)
        assert stalls["lbm06"] > stalls["gamess06"]

    def test_masks_may_overlap(self, platform, mix8):
        allocation = DunnPolicy(overlap_ways=1).allocate(mix8, platform)
        assert isinstance(allocation, WayAllocation)
        # With zero overlap the masks must be disjoint across clusters.
        disjoint = DunnPolicy(overlap_ways=0).allocate(mix8, platform)
        assert not disjoint.is_overlapping()

    def test_cluster_range_validation(self):
        with pytest.raises(ClusteringError):
            DunnPolicy(max_clusters=1, min_clusters=2)
        with pytest.raises(ClusteringError):
            DunnPolicy(overlap_ways=-1)

    def test_choose_k_is_public_and_deterministic(self):
        policy = DunnPolicy(max_clusters=4, min_clusters=2)
        # Two well-separated groups: silhouette must pick k=2 and split them.
        values = np.array([0.05, 0.06, 0.07, 0.85, 0.9, 0.88])
        k, labels = policy.choose_k(values)
        assert k == 2
        assert list(labels[:3]) == [0, 0, 0]
        assert list(labels[3:]) == [1, 1, 1]
        # Labels refer to ascending centroids: the high-stall group is 1.
        again_k, again_labels = policy.choose_k(values)
        assert again_k == k and list(again_labels) == list(labels)

    def test_choose_k_single_value(self):
        k, labels = DunnPolicy().choose_k(np.array([0.4]))
        assert k == 1 and list(labels) == [0]

    def test_choose_k_respects_max_clusters(self):
        values = np.array([0.1, 0.4, 0.7, 0.95, 0.2, 0.6])
        k, labels = DunnPolicy(max_clusters=3).choose_k(values)
        assert 1 <= k <= 3
        assert labels.shape == values.shape

    def test_runtime_daemon_uses_public_choose_k(self):
        from repro.hardware import skylake_gold_6138
        from repro.runtime import DunnUserLevelDaemon

        daemon = DunnUserLevelDaemon()
        daemon.on_start(["a", "b", "c"], skylake_gold_6138())
        allocation = daemon._allocation_from_stalls({"a": 0.1, "b": 0.8, "c": 0.75})
        assert set(allocation.masks) == {"a", "b", "c"}
        # The high-stall pair lands in the same (larger) cluster.
        assert allocation.masks["b"] == allocation.masks["c"]
        assert allocation.ways_of("b") >= allocation.ways_of("a")

    def test_cluster_method_raises_for_overlapping_decision(self, platform, mix8):
        with pytest.raises(ClusteringError):
            DunnPolicy().cluster(mix8, platform)


class TestKPart:
    def test_dendrogram_levels_shrink_by_one(self, platform, mix8):
        levels = build_dendrogram(mix8, platform.llc_ways)
        assert len(levels) == len(mix8)
        assert [len(level) for level in levels] == list(range(len(mix8), 0, -1))

    def test_dendrogram_merges_similar_apps_first(self, platform, catalog):
        profiles = {n: catalog[n] for n in ("lbm06", "lbm17", "xalancbmk06", "gamess06")}
        levels = build_dendrogram(profiles, platform.llc_ways)
        first_merge = [g for g in levels[1] if len(g) == 2][0]
        assert sorted(first_merge) in (["lbm06", "lbm17"], ["gamess06", "lbm06"], ["gamess06", "lbm17"])

    def test_evaluate_level_allocates_every_way(self, platform, mix8):
        groups = [[name] for name in mix8]
        ways, speedup = evaluate_level(groups, mix8, platform.llc_ways)
        assert sum(ways) == platform.llc_ways
        assert speedup > 0

    def test_evaluate_level_rejects_too_many_clusters(self, platform, catalog):
        groups = [[name] for name in list(catalog)[:12]]
        profiles = {name: catalog[name] for name in list(catalog)[:12]}
        with pytest.raises(ClusteringError):
            evaluate_level(groups, profiles, platform.llc_ways)

    def test_decision_covers_workload(self, platform, mix8):
        solution = KPartPolicy().cluster(mix8, platform)
        assert solution.covers(mix8)
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_handles_more_apps_than_ways(self, platform, catalog):
        names = list(catalog)[:13]
        profiles = {n: catalog[n] for n in names}
        solution = KPartPolicy().cluster(profiles, platform)
        assert solution.covers(profiles)
        assert solution.n_clusters <= platform.llc_ways

    def test_max_clusters_cap(self, platform, mix8):
        solution = KPartPolicy(max_clusters=3).cluster(mix8, platform)
        assert solution.n_clusters <= 3

    def test_improves_throughput_over_stock(self, platform, mix8):
        estimator = ClusteringEstimator(platform, mix8)
        stock = estimator.evaluate_unpartitioned()
        kpart = estimator.evaluate(KPartPolicy().cluster(mix8, platform))
        assert kpart.stp >= stock.stp


class TestBestStatic:
    def test_best_static_is_at_least_as_fair_as_lfoc(self, platform, catalog):
        names = ["lbm06", "xalancbmk06", "soplex06", "gamess06", "namd06", "sjeng06"]
        profiles = {n: catalog[n] for n in names}
        estimator = ClusteringEstimator(platform, profiles)
        best = estimator.evaluate(BestStaticPolicy().cluster(profiles, platform))
        lfoc = estimator.evaluate(LfocPolicy().cluster(profiles, platform))
        assert best.unfairness <= lfoc.unfairness + 1e-9

    def test_large_workloads_use_local_search(self, platform, mix8):
        policy = BestStaticPolicy(exact_limit=4, local_search_iterations=150)
        solution = policy.cluster(mix8, platform)
        assert solution.covers(mix8)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ClusteringError):
            BestStaticPolicy(objective="energy")
        with pytest.raises(ClusteringError):
            BestStaticPolicy(exact_limit=0)
