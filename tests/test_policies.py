"""Tests for the static cache-allocation policies (LFOC, Dunn, KPart, UCP...)."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AppClass, ClusteringSolution, WayAllocation, classify_profile
from repro.errors import ClusteringError
from repro.policies import (
    BestStaticPolicy,
    DunnPolicy,
    KPartPolicy,
    LfocKernelPolicy,
    LfocPolicy,
    StockLinuxPolicy,
    UcpPolicy,
    build_dendrogram,
    evaluate_level,
    kmeans_1d,
    silhouette_1d,
    silhouette_1d_reference,
)
from repro.policies.dunn import _kmeans_1d_reference, _seed_centroids
from repro.simulator import ClusteringEstimator


class TestStockLinux:
    def test_single_cluster_over_whole_cache(self, platform, mix8):
        solution = StockLinuxPolicy().cluster(mix8, platform)
        assert solution.n_clusters == 1
        assert solution.clusters[0].ways == platform.llc_ways

    def test_allocation_is_full_mask_for_everyone(self, platform, mix8):
        allocation = StockLinuxPolicy().allocate(mix8, platform)
        assert all(mask == platform.full_mask for mask in allocation.masks.values())

    def test_empty_workload_rejected(self, platform):
        with pytest.raises(ClusteringError):
            StockLinuxPolicy().cluster({}, platform)


class TestLfocPolicy:
    def test_streaming_apps_confined(self, platform, mix8):
        solution = LfocPolicy().cluster(mix8, platform)
        for name, profile in mix8.items():
            if classify_profile(profile) is AppClass.STREAMING:
                assert solution.ways_of(name) <= 2

    def test_sensitive_apps_get_most_of_the_cache(self, platform, mix8):
        solution = LfocPolicy().cluster(mix8, platform)
        sensitive_ways = sum(
            c.ways for c in solution.clusters if c.label == "sensitive"
        )
        assert sensitive_ways >= platform.llc_ways - 2

    def test_covers_whole_workload(self, platform, mix8):
        assert LfocPolicy().cluster(mix8, platform).covers(mix8)

    def test_improves_fairness_over_stock(self, platform, mix8):
        estimator = ClusteringEstimator(platform, mix8)
        stock = estimator.evaluate_unpartitioned()
        lfoc = estimator.evaluate(LfocPolicy().cluster(mix8, platform))
        assert lfoc.unfairness < stock.unfairness

    def test_kernel_variant_is_equivalent_shape(self, platform, mix8):
        float_solution = LfocPolicy().cluster(mix8, platform)
        kernel_solution = LfocKernelPolicy().cluster(mix8, platform)
        # Same cluster structure (way counts may differ by rounding of the
        # fixed-point slowdown tables, but the grouping must agree).
        float_groups = {tuple(sorted(c.apps)) for c in float_solution.clusters}
        kernel_groups = {tuple(sorted(c.apps)) for c in kernel_solution.clusters}
        assert float_groups == kernel_groups

    def test_profiles_resampled_to_platform(self, catalog, platform):
        # Profiles collected for 20 ways still work on the 11-way platform.
        profiles = {
            name: catalog[name].resampled(20)
            for name in ("lbm06", "xalancbmk06", "gamess06")
        }
        solution = LfocPolicy().cluster(profiles, platform)
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_all_light_workload_yields_single_cluster(self, catalog, platform):
        profiles = {n: catalog[n] for n in ("gamess06", "namd06", "povray06")}
        solution = LfocPolicy().cluster(profiles, platform)
        assert solution.n_clusters == 1


class TestUcp:
    def test_strict_partitioning(self, platform, mix8):
        solution = UcpPolicy().cluster(mix8, platform)
        assert solution.is_partitioning()
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_rejects_more_apps_than_ways(self, platform, catalog):
        names = list(catalog)[:12]
        profiles = {n: catalog[n] for n in names}
        with pytest.raises(ClusteringError):
            UcpPolicy().cluster(profiles, platform)

    def test_metric_validation(self):
        with pytest.raises(ClusteringError):
            UcpPolicy(metric="energy")

    def test_slowdown_metric_variant(self, platform, mix8):
        solution = UcpPolicy(metric="slowdown").cluster(mix8, platform)
        assert solution.is_partitioning()


class TestKmeans:
    def test_separates_two_obvious_groups(self):
        values = [0.1, 0.12, 0.11, 0.9, 0.88, 0.91]
        labels, centroids = kmeans_1d(values, 2)
        assert set(labels[:3]) == {0}
        assert set(labels[3:]) == {1}
        assert centroids[0] < centroids[1]

    def test_k_equals_n(self):
        labels, _ = kmeans_1d([0.1, 0.5, 0.9], 3)
        assert sorted(labels) == [0, 1, 2]

    def test_invalid_k_rejected(self):
        with pytest.raises(ClusteringError):
            kmeans_1d([0.1, 0.2], 3)
        with pytest.raises(ClusteringError):
            kmeans_1d([], 1)

    def test_deterministic(self):
        values = list(np.linspace(0, 1, 20))
        a = kmeans_1d(values, 3)
        b = kmeans_1d(values, 3)
        assert np.array_equal(a[0], b[0])


class TestDunn:
    def test_produces_full_coverage_allocation(self, platform, mix8):
        allocation = DunnPolicy().allocate(mix8, platform)
        assert set(allocation.masks) == set(mix8)
        assert all(mask > 0 for mask in allocation.masks.values())

    def test_high_stall_apps_get_more_ways(self, platform, mix8):
        policy = DunnPolicy()
        allocation = policy.allocate(mix8, platform)
        assert allocation.ways_of("lbm06") >= allocation.ways_of("gamess06")

    def test_stall_metric_orders_classes(self, platform, mix8):
        stalls = DunnPolicy().stall_metric(mix8, platform)
        assert stalls["lbm06"] > stalls["gamess06"]

    def test_masks_may_overlap(self, platform, mix8):
        allocation = DunnPolicy(overlap_ways=1).allocate(mix8, platform)
        assert isinstance(allocation, WayAllocation)
        # With zero overlap the masks must be disjoint across clusters.
        disjoint = DunnPolicy(overlap_ways=0).allocate(mix8, platform)
        assert not disjoint.is_overlapping()

    def test_cluster_range_validation(self):
        with pytest.raises(ClusteringError):
            DunnPolicy(max_clusters=1, min_clusters=2)
        with pytest.raises(ClusteringError):
            DunnPolicy(overlap_ways=-1)

    def test_choose_k_is_public_and_deterministic(self):
        policy = DunnPolicy(max_clusters=4, min_clusters=2)
        # Two well-separated groups: silhouette must pick k=2 and split them.
        values = np.array([0.05, 0.06, 0.07, 0.85, 0.9, 0.88])
        k, labels = policy.choose_k(values)
        assert k == 2
        assert list(labels[:3]) == [0, 0, 0]
        assert list(labels[3:]) == [1, 1, 1]
        # Labels refer to ascending centroids: the high-stall group is 1.
        again_k, again_labels = policy.choose_k(values)
        assert again_k == k and list(again_labels) == list(labels)

    def test_choose_k_single_value(self):
        k, labels = DunnPolicy().choose_k(np.array([0.4]))
        assert k == 1 and list(labels) == [0]

    def test_choose_k_respects_max_clusters(self):
        values = np.array([0.1, 0.4, 0.7, 0.95, 0.2, 0.6])
        k, labels = DunnPolicy(max_clusters=3).choose_k(values)
        assert 1 <= k <= 3
        assert labels.shape == values.shape

    def test_runtime_daemon_uses_public_choose_k(self):
        from repro.hardware import skylake_gold_6138
        from repro.runtime import DunnUserLevelDaemon

        daemon = DunnUserLevelDaemon()
        daemon.on_start(["a", "b", "c"], skylake_gold_6138())
        allocation = daemon._allocation_from_stalls({"a": 0.1, "b": 0.8, "c": 0.75})
        assert set(allocation.masks) == {"a", "b", "c"}
        # The high-stall pair lands in the same (larger) cluster.
        assert allocation.masks["b"] == allocation.masks["c"]
        assert allocation.ways_of("b") >= allocation.ways_of("a")

    def test_cluster_method_raises_for_overlapping_decision(self, platform, mix8):
        with pytest.raises(ClusteringError):
            DunnPolicy().cluster(mix8, platform)


class TestKPart:
    def test_dendrogram_levels_shrink_by_one(self, platform, mix8):
        levels = build_dendrogram(mix8, platform.llc_ways)
        assert len(levels) == len(mix8)
        assert [len(level) for level in levels] == list(range(len(mix8), 0, -1))

    def test_dendrogram_merges_similar_apps_first(self, platform, catalog):
        profiles = {n: catalog[n] for n in ("lbm06", "lbm17", "xalancbmk06", "gamess06")}
        levels = build_dendrogram(profiles, platform.llc_ways)
        first_merge = [g for g in levels[1] if len(g) == 2][0]
        assert sorted(first_merge) in (["lbm06", "lbm17"], ["gamess06", "lbm06"], ["gamess06", "lbm17"])

    def test_evaluate_level_allocates_every_way(self, platform, mix8):
        groups = [[name] for name in mix8]
        ways, speedup = evaluate_level(groups, mix8, platform.llc_ways)
        assert sum(ways) == platform.llc_ways
        assert speedup > 0

    def test_evaluate_level_rejects_too_many_clusters(self, platform, catalog):
        groups = [[name] for name in list(catalog)[:12]]
        profiles = {name: catalog[name] for name in list(catalog)[:12]}
        with pytest.raises(ClusteringError):
            evaluate_level(groups, profiles, platform.llc_ways)

    def test_decision_covers_workload(self, platform, mix8):
        solution = KPartPolicy().cluster(mix8, platform)
        assert solution.covers(mix8)
        assert sum(c.ways for c in solution.clusters) == platform.llc_ways

    def test_handles_more_apps_than_ways(self, platform, catalog):
        names = list(catalog)[:13]
        profiles = {n: catalog[n] for n in names}
        solution = KPartPolicy().cluster(profiles, platform)
        assert solution.covers(profiles)
        assert solution.n_clusters <= platform.llc_ways

    def test_max_clusters_cap(self, platform, mix8):
        solution = KPartPolicy(max_clusters=3).cluster(mix8, platform)
        assert solution.n_clusters <= 3

    def test_improves_throughput_over_stock(self, platform, mix8):
        estimator = ClusteringEstimator(platform, mix8)
        stock = estimator.evaluate_unpartitioned()
        kpart = estimator.evaluate(KPartPolicy().cluster(mix8, platform))
        assert kpart.stp >= stock.stp


HYPOTHESIS_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

unit_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def stall_vectors(draw):
    """1-D stall-metric vectors, with duplicates and constants over-sampled."""
    n = draw(st.integers(min_value=2, max_value=20))
    values = draw(st.lists(unit_floats, min_size=n, max_size=n))
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 1:  # heavy duplicates
        pool = values[: max(n // 3, 1)]
        values = [pool[i % len(pool)] for i in range(n)]
    elif shape == 2:  # constant vector
        values = [values[0]] * n
    return np.array(values, dtype=float)


class TestDunnDecisionProperties:
    """Hypothesis properties of the Dunn decision kernels (tentpole pinning)."""

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors(), k=st.integers(min_value=1, max_value=6))
    def test_kmeans_bit_identical_to_reference_and_deterministic(self, values, k):
        k = min(k, values.size)
        labels, centroids = kmeans_1d(values, k)
        ref_labels, ref_centroids = _kmeans_1d_reference(values, k)
        assert np.array_equal(labels, ref_labels)
        assert np.array_equal(centroids, ref_centroids)
        again_labels, again_centroids = kmeans_1d(values, k)
        assert np.array_equal(labels, again_labels)
        assert np.array_equal(centroids, again_centroids)
        # Structural invariants: centroids ascending, labels in range.
        assert np.all(np.diff(centroids) >= 0)
        assert labels.min() >= 0 and labels.max() < k

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors(), k=st.integers(min_value=1, max_value=6))
    def test_seed_centroids_bit_identical_to_np_quantile(self, values, k):
        k = min(k, values.size)
        quantiles = np.linspace(0.0, 1.0, k + 2)[1:-1]
        assert np.array_equal(
            _seed_centroids(np.sort(values), k), np.quantile(values, quantiles)
        )

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors(), k=st.integers(min_value=2, max_value=6))
    def test_silhouette_range_and_new_vs_old_equality(self, values, k):
        k = min(k, values.size)
        labels, _ = kmeans_1d(values, k)
        fast = silhouette_1d(values, labels, k)
        slow = silhouette_1d_reference(values, labels, k)
        assert -1.0 <= fast <= 1.0
        assert -1.0 <= slow <= 1.0
        # Same math, different summation order: equal to rounding accuracy.
        assert math.isclose(fast, slow, rel_tol=1e-9, abs_tol=1e-9)
        # Determinism across repeated calls.
        assert silhouette_1d(values, labels, k) == fast
        assert silhouette_1d_reference(values, labels, k) == slow

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors(), k=st.integers(min_value=2, max_value=6))
    def test_silhouette_label_permutation_invariance(self, values, k):
        k = min(k, values.size)
        labels, _ = kmeans_1d(values, k)
        permutation = np.roll(np.arange(k), 1)
        permuted = permutation[labels]
        assert silhouette_1d(values, permuted, k) == silhouette_1d(values, labels, k)
        assert silhouette_1d_reference(values, permuted, k) == silhouette_1d_reference(
            values, labels, k
        )

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors())
    def test_choose_k_decisions_backend_independent(self, values):
        k_inc, labels_inc = DunnPolicy(backend="incremental").choose_k(values)
        k_ref, labels_ref = DunnPolicy(backend="reference").choose_k(values)
        assert k_inc == k_ref
        assert np.array_equal(labels_inc, labels_ref)
        assert 1 <= k_inc <= values.size
        assert labels_inc.shape == values.shape

    @HYPOTHESIS_SETTINGS
    @given(values=stall_vectors(), min_clusters=st.integers(min_value=1, max_value=8))
    def test_choose_k_handles_n_below_min_clusters(self, values, min_clusters):
        policy = DunnPolicy(max_clusters=max(min_clusters, 4), min_clusters=min_clusters)
        k, labels = policy.choose_k(values)
        # The sweep caps k at n even when the configured range exceeds it.
        assert 1 <= k <= values.size
        assert labels.size == values.size

    def test_silhouette_k1_scores_minus_one(self):
        values = np.array([0.1, 0.5, 0.9])
        labels = np.zeros(3, dtype=int)
        assert silhouette_1d(values, labels, 1) == -1.0
        assert silhouette_1d_reference(values, labels, 1) == -1.0

    def test_silhouette_all_duplicates_scores_zero(self):
        # Two non-empty clusters of identical values: a = b = 0 -> score 0.0.
        values = np.array([0.4, 0.4, 0.4, 0.4])
        labels = np.array([0, 0, 1, 1])
        assert silhouette_1d(values, labels, 2) == 0.0
        assert silhouette_1d_reference(values, labels, 2) == 0.0


class TestChooseKTieBreaking:
    """The explicit degenerate/tie-breaking rule (regression for the old
    inconsistency where a degenerate k>=2 clustering scored 0.0 while k=1
    scored -1.0 and could win the sweep on duplicate-heavy data)."""

    def test_constant_vector_collapses_to_single_cluster(self):
        values = np.full(6, 0.25)
        for backend in ("incremental", "reference"):
            k, labels = DunnPolicy(backend=backend).choose_k(values)
            assert k == 1
            assert list(labels) == [0] * 6

    def test_degenerate_candidates_cannot_beat_baseline(self):
        # k-means on a constant vector assigns everything to cluster 0, an
        # effective single cluster; with the explicit rule it scores -1.0
        # (same as k = 1) and the smallest k wins the tie.
        values = np.full(5, 0.7)
        labels, _ = kmeans_1d(values, 2)
        assert len(set(labels.tolist())) == 1  # the degenerate shape
        k, chosen = DunnPolicy().choose_k(values)
        assert k == 1 and list(chosen) == [0] * 5

    def test_two_separated_groups_still_win_over_baseline(self):
        values = np.array([0.05, 0.06, 0.07, 0.85, 0.9, 0.88])
        k, labels = DunnPolicy().choose_k(values)
        assert k == 2
        assert list(labels) == [0, 0, 0, 1, 1, 1]

    def test_constant_vector_allocation_spans_whole_cache(self, platform):
        # Downstream effect of the fix: no ways are wasted on empty clusters.
        apps = ["a", "b", "c"]
        allocation = DunnPolicy().allocation_for_values(
            apps, np.full(3, 0.5), platform
        )
        assert all(
            allocation.ways_of(app) == platform.llc_ways for app in apps
        )


class TestBestStatic:
    def test_best_static_is_at_least_as_fair_as_lfoc(self, platform, catalog):
        names = ["lbm06", "xalancbmk06", "soplex06", "gamess06", "namd06", "sjeng06"]
        profiles = {n: catalog[n] for n in names}
        estimator = ClusteringEstimator(platform, profiles)
        best = estimator.evaluate(BestStaticPolicy().cluster(profiles, platform))
        lfoc = estimator.evaluate(LfocPolicy().cluster(profiles, platform))
        assert best.unfairness <= lfoc.unfairness + 1e-9

    def test_large_workloads_use_local_search(self, platform, mix8):
        policy = BestStaticPolicy(exact_limit=4, local_search_iterations=150)
        solution = policy.cluster(mix8, platform)
        assert solution.covers(mix8)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ClusteringError):
            BestStaticPolicy(objective="energy")
        with pytest.raises(ClusteringError):
            BestStaticPolicy(exact_limit=0)
