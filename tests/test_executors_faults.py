"""Fault-tolerance tests: wire fuzzing, handshakes, chaos plans, supervision.

The wire-layer twin of the checkpoint truncation fuzz
(``tests/test_experiments_checkpoint.py``), plus the robustness guarantees
of the distributed executors:

* framing survives truncation at every byte boundary and single-byte
  corruption with at worst a :class:`FrameProtocolError` — never a crash of
  another kind, and never a silently wrong message;
* version/codec negotiation rejects mismatched workers with a reason that
  lands in ``drop_events`` and the starvation error;
* a scripted :class:`FaultPlan` (worker kills + corrupted frames +
  duplicated results) on a supervised TCP executor leaves study rows
  bit-identical to :class:`SerialExecutor`;
* the worker supervisor respawns dead workers with backoff and trips its
  circuit breaker on crash loops instead of respawning forever.
"""

from __future__ import annotations

import json
import socket as socket_mod
import time
from collections import OrderedDict, deque

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime import EngineConfig, RunSpec, SerialExecutor, TCPExecutor
from repro.runtime.executors import (
    CODEC_PICKLE,
    CODEC_SAFE,
    PROTOCOL_VERSION,
    FaultPlan,
    FrameProtocolError,
    WorkerSupervisor,
)
from repro.runtime.executors.framing import (
    FrameReader,
    MAX_FRAME,
    _HEADER,
    pack_frame,
    recv_frame,
)
from repro.runtime.executors.tcp import _WorkerLink
from repro.runtime.scheduler import StockLinuxDriver
from repro.workloads import workload_by_name

FAST = EngineConfig(
    instructions_per_run=2.0e8, min_completions=1, record_traces=False
)


# ---------------------------------------------------------------------------
# Safe codec round-trips
# ---------------------------------------------------------------------------


def roundtrip(obj, *, codec=CODEC_SAFE, allow_pickle=False):
    reader = FrameReader(allow_pickle=allow_pickle)
    frames = list(reader.feed(pack_frame(obj, codec=codec)))
    assert len(frames) == 1 and reader.pending() == 0
    return frames[0]


class TestSafeCodec:
    def test_container_round_trips_preserve_exact_types(self):
        od = OrderedDict([("b", 1), ("a", 2)])
        message = (
            "result",
            7,
            {
                "od": od,
                "dq": deque([1, 2, 3], maxlen=5),
                "set": {1, 2},
                "frozen": frozenset({"x"}),
                "bytes": b"\x00\xff",
                "tuple": (1, (2, 3)),
                "none": None,
            },
        )
        out = roundtrip(message)
        assert out[0] == "result" and out[1] == 7
        body = out[2]
        assert type(body["od"]) is OrderedDict
        assert list(body["od"]) == ["b", "a"]  # insertion order survives
        assert type(body["dq"]) is deque and body["dq"].maxlen == 5
        assert body["set"] == {1, 2} and type(body["set"]) is set
        assert body["frozen"] == frozenset({"x"})
        assert body["bytes"] == b"\x00\xff"
        assert body["tuple"] == (1, (2, 3))
        assert body["none"] is None

    def test_numpy_arrays_round_trip_bit_exact(self):
        arrays = [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([], dtype=np.int32),
            np.array([[True, False]]),
        ]
        out = roundtrip(("payload", arrays))
        for original, restored in zip(arrays, out[1]):
            assert restored.dtype == original.dtype
            assert restored.shape == original.shape
            assert np.array_equal(restored, original)

    def test_run_spec_round_trips_through_safe_codec(self):
        spec = RunSpec(
            workload=workload_by_name("S1"),
            driver_cls=StockLinuxDriver,
            label="base",
        )
        out = roundtrip(("run", 3, spec))
        assert out[2].driver_cls is StockLinuxDriver
        assert out[2].label == "base"
        assert out[2].workload == spec.workload

    def test_pickle_frames_refused_without_opt_in(self):
        blob = pack_frame(("hello", {}), codec=CODEC_PICKLE)
        with pytest.raises(FrameProtocolError, match="pickle"):
            list(FrameReader(allow_pickle=False).feed(blob))
        # ...and accepted once both sides opt in.
        assert roundtrip(
            ("hello", {}), codec=CODEC_PICKLE, allow_pickle=True
        ) == ("hello", {})

    def test_untrusted_class_references_refused(self):
        blob = pack_frame(("error", object()))
        with pytest.raises(FrameProtocolError, match="builtins"):
            list(FrameReader().feed(blob))


# ---------------------------------------------------------------------------
# Framing fuzz (the wire-layer mirror of the checkpoint truncation fuzz)
# ---------------------------------------------------------------------------


def fuzz_messages():
    return [
        ("hello", {"protocol": PROTOCOL_VERSION, "codec": CODEC_SAFE, "pid": 7}),
        ("result", 11, {"rows": [1.5, -2.25], "name": "αβ"}),
        ("payload", np.arange(6, dtype=np.float32)),
        ("ping",),
    ]


def frames_equal(left, right):
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return (
            isinstance(left, np.ndarray)
            and isinstance(right, np.ndarray)
            and left.dtype == right.dtype
            and np.array_equal(left, right)
        )
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            frames_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return set(left) == set(right) and all(
            frames_equal(v, right[k]) for k, v in left.items()
        )
    return left == right


class TestFramingFuzz:
    def test_truncation_at_every_byte(self):
        """A stream cut anywhere yields exactly the complete frames before
        the cut and never an error — torn tails just wait for more bytes."""
        messages = fuzz_messages()
        blobs = [pack_frame(m) for m in messages]
        stream = b"".join(blobs)
        boundaries = []
        offset = 0
        for blob in blobs:
            offset += len(blob)
            boundaries.append(offset)
        for cut in range(len(stream) + 1):
            reader = FrameReader()
            frames = list(reader.feed(stream[:cut]))
            expected = sum(1 for b in boundaries if b <= cut)
            assert len(frames) == expected, f"cut at byte {cut}"
            for message, frame in zip(messages, frames):
                assert frames_equal(frame, message), f"cut at byte {cut}"
            # The tail parses once the missing bytes arrive.
            rest = list(reader.feed(stream[cut:]))
            assert len(frames) + len(rest) == len(messages)

    def test_single_byte_corruption_never_crashes_the_reader(self):
        """Flipping any one byte either raises FrameProtocolError, parses
        fewer frames (the reader waits for bytes that never come), or — for
        flips inside free-form values — decodes different content.  It never
        raises anything else."""
        stream = b"".join(pack_frame(m) for m in fuzz_messages())
        rejected = 0
        for position in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[position] ^= 0xFF
            reader = FrameReader()
            try:
                list(reader.feed(bytes(corrupted)))
            except FrameProtocolError:
                rejected += 1
            except SimulationError:
                rejected += 1  # FrameProtocolError subclasses it anyway
        # Sanity: corruption is actually being detected, not waved through.
        assert rejected > len(stream) // 4

    def test_oversized_length_prefix_rejected_immediately(self):
        header = _HEADER.pack(MAX_FRAME + 1)
        with pytest.raises(FrameProtocolError, match="frame limit"):
            list(FrameReader().feed(header))

    def test_oversized_frame_refused_at_send_time(self):
        big = np.zeros(MAX_FRAME // 8 + 16, dtype=np.float64)
        with pytest.raises(FrameProtocolError, match="frame limit"):
            pack_frame(("payload", big))


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(42, frames=20, runs=10, corrupt=2, kills=1, slow=2)
        b = FaultPlan.seeded(42, frames=20, runs=10, corrupt=2, kills=1, slow=2)
        assert a == b
        assert a.corrupt_frames and a.kill_runs and a.slow_runs
        assert a != FaultPlan.seeded(43, frames=20, runs=10, corrupt=2, kills=1)

    def test_dict_round_trip(self):
        plan = FaultPlan(corrupt_frames=(1, 3), kill_runs=(0,), slow_s=0.1)
        data = json.loads(json.dumps(plan.to_dict()))  # the CLI/spec path
        assert FaultPlan.from_dict(data) == plan
        assert FaultPlan.from_dict(None) == FaultPlan()
        assert FaultPlan().to_dict() == {}

    def test_unknown_keys_and_bad_indexes_rejected(self):
        with pytest.raises(SimulationError, match="unknown FaultPlan key"):
            FaultPlan.from_dict({"corrupt_frame": [1]})
        with pytest.raises(SimulationError, match="non-negative"):
            FaultPlan(kill_runs=(-1,))
        with pytest.raises(SimulationError, match="must be a list"):
            FaultPlan(drop_frames=3)


# ---------------------------------------------------------------------------
# Handshake negotiation
# ---------------------------------------------------------------------------


def attach_fake_worker(executor):
    """A socketpair posing as a worker link, bypassing accept()."""
    import selectors

    ours, theirs = socket_mod.socketpair()
    ours.setblocking(False)
    link = _WorkerLink(sock=ours, peer="test")
    link.reader = FrameReader(allow_pickle=executor.allow_pickle)
    link.connected_at = link.last_seen = time.monotonic()
    executor._links.append(link)
    executor._selector.register(ours, selectors.EVENT_READ, link)
    return link, theirs


class TestHandshake:
    def send_hello(self, executor, info):
        link, theirs = attach_fake_worker(executor)
        try:
            theirs.sendall(pack_frame(("hello", info)))
            executor._read_link(link)
            reject = recv_frame(theirs)
        finally:
            theirs.close()
        return link, reject

    def test_version_mismatch_rejected_with_reason(self, platform):
        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            link, reject = self.send_hello(
                executor, {"protocol": 1, "codec": CODEC_SAFE}
            )
            assert link not in executor._links
            assert reject[0] == "reject" and "version mismatch" in reject[1]
            assert any(
                "version mismatch" in reason
                for _peer, reason in executor.drop_events
            )
        finally:
            executor.close()

    def test_pickle_codec_needs_coordinator_opt_in(self, platform):
        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            link, reject = self.send_hello(
                executor, {"protocol": PROTOCOL_VERSION, "codec": CODEC_PICKLE}
            )
            assert link not in executor._links
            assert reject[0] == "reject" and "opt in" in reject[1]
        finally:
            executor.close()

    def test_good_hello_marks_link_ready_and_ships_context(self, platform):
        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            link, theirs = attach_fake_worker(executor)
            try:
                theirs.sendall(
                    pack_frame(
                        ("hello", {"protocol": PROTOCOL_VERSION, "codec": CODEC_SAFE})
                    )
                )
                executor._read_link(link)
                assert link.ready and link in executor._links
                context = recv_frame(theirs)
                assert context[0] == "context"
            finally:
                theirs.close()
        finally:
            executor.close()

    def test_work_before_handshake_drops_the_link(self, platform):
        executor = TCPExecutor(("127.0.0.1", 0))
        try:
            executor.prepare(platform, default_config=FAST)
            link, theirs = attach_fake_worker(executor)
            try:
                theirs.sendall(pack_frame(("pong",)))
                executor._read_link(link)
            finally:
                theirs.close()
            assert link not in executor._links
            assert any(
                "before handshake" in reason
                for _peer, reason in executor.drop_events
            )
        finally:
            executor.close()

    def test_starvation_error_names_recent_drop_reasons(self, platform):
        """Satellite: the final error says *why* workers went away."""
        executor = TCPExecutor(("127.0.0.1", 0), connect_timeout_s=0.4)
        try:
            executor.prepare(platform, default_config=FAST)
            self.send_hello(executor, {"protocol": 1, "codec": CODEC_SAFE})
            executor.submit(
                RunSpec(
                    workload=workload_by_name("S1"), driver_cls=StockLinuxDriver
                )
            )
            with pytest.raises(
                SimulationError, match="recent drops.*version mismatch"
            ):
                for _ in executor.as_completed():
                    pass
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# Heartbeat grace configuration
# ---------------------------------------------------------------------------


class TestHeartbeatGrace:
    def test_default_grace_tracks_heartbeat(self):
        executor = TCPExecutor(("127.0.0.1", 0), heartbeat_s=2.0)
        try:
            assert executor.heartbeat_grace_s == 10.0
        finally:
            executor.close()
        executor = TCPExecutor(("127.0.0.1", 0), heartbeat_s=8.0)
        try:
            assert executor.heartbeat_grace_s == 24.0
        finally:
            executor.close()

    def test_explicit_grace_reaches_the_executor_via_spec(self):
        from repro.experiments.specs import ExecutorSpec

        spec = ExecutorSpec(name="tcp", heartbeat_grace_s=42.0)
        assert ExecutorSpec.from_dict(spec.to_dict()) == spec
        executor = spec.create()
        try:
            assert executor.heartbeat_grace_s == 42.0
        finally:
            executor.close()

    def test_invalid_grace_rejected(self):
        from repro.errors import SpecError
        from repro.experiments.specs import ExecutorSpec

        with pytest.raises(SimulationError):
            TCPExecutor(("127.0.0.1", 0), heartbeat_grace_s=0.0)
        with pytest.raises(SpecError):
            ExecutorSpec(name="tcp", heartbeat_grace_s=-1.0)

    def test_unfinished_handshake_dropped_after_grace(self, platform):
        executor = TCPExecutor(("127.0.0.1", 0), heartbeat_grace_s=0.05)
        try:
            executor.prepare(platform, default_config=FAST)
            link, theirs = attach_fake_worker(executor)
            try:
                time.sleep(0.1)
                executor._heartbeat(time.monotonic())
                assert link not in executor._links
                assert any(
                    reason == "handshake timeout"
                    for _peer, reason in executor.drop_events
                )
            finally:
                theirs.close()
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------


class TestWorkerSupervisor:
    def test_first_spawn_extra_applies_once_to_slot_zero(self):
        supervisor = WorkerSupervisor(
            ("127.0.0.1", 1), count=2, first_spawn_extra=("--chaos", "{}")
        )
        first, second = supervisor._slots
        assert "--chaos" in supervisor._command(first)
        assert "--chaos" not in supervisor._command(second)
        first.spawn_count = 1  # the replacement spawns clean
        assert "--chaos" not in supervisor._command(first)
        supervisor.stop()

    def test_respawns_a_killed_worker(self):
        listener = socket_mod.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        supervisor = WorkerSupervisor(
            listener.getsockname(),
            count=1,
            backoff_initial_s=0.05,
            backoff_max_s=0.2,
            healthy_uptime_s=0.2,
        )
        try:
            deadline = time.monotonic() + 60.0
            supervisor.poll()
            proc = supervisor._slots[0].proc
            assert proc is not None
            # Let it live past healthy_uptime_s, then murder it.
            time.sleep(0.3)
            supervisor.poll()
            proc.kill()
            proc.wait(timeout=30)
            while supervisor.restarts < 1:
                assert time.monotonic() < deadline, "respawn never happened"
                supervisor.poll()
                time.sleep(0.02)
            assert supervisor.summary()["restarts"] >= 1
            assert supervisor._slots[0].exits  # the kill was recorded
        finally:
            supervisor.stop()
            listener.close()
        assert supervisor.summary()["alive"] == 0

    def test_circuit_breaker_trips_on_crash_loop(self):
        # --connect with an unparseable flag makes every spawn die young.
        supervisor = WorkerSupervisor(
            ("127.0.0.1", 1),
            count=1,
            extra_args=("--definitely-not-a-flag",),
            backoff_initial_s=0.01,
            backoff_max_s=0.05,
            breaker_threshold=3,
            healthy_uptime_s=3600.0,  # every exit counts as a fast crash
        )
        try:
            deadline = time.monotonic() + 120.0
            with pytest.raises(SimulationError, match="crash-looped"):
                while True:
                    assert time.monotonic() < deadline, "breaker never tripped"
                    supervisor.poll()
                    time.sleep(0.02)
        finally:
            supervisor.stop()

    def test_needs_at_least_one_slot(self):
        with pytest.raises(SimulationError):
            WorkerSupervisor(("127.0.0.1", 1), count=0)


# ---------------------------------------------------------------------------
# The chaos soak: scripted faults on every backend, rows pinned to serial
# ---------------------------------------------------------------------------


class TestChaosSoak:
    def make_specs(self, workload):
        from repro.runtime import DunnUserLevelDaemon

        return [
            RunSpec(workload=workload, driver_cls=StockLinuxDriver),
            RunSpec(workload=workload, driver_cls=DunnUserLevelDaemon, label="Dunn"),
            RunSpec(workload=workload, driver_cls=StockLinuxDriver, label="base-2"),
            RunSpec(workload=workload, driver_cls=DunnUserLevelDaemon),
        ]

    def result_key(self, result):
        return (
            result.policy,
            result.label,
            result.workload,
            result.duration_s,
            {name: stats.completion_times for name, stats in result.app_stats.items()},
            sorted(result.slowdowns().items()),
            result.n_repartitions,
        )

    def test_supervised_executor_under_adversarial_chaos(self, platform):
        """The acceptance pin: worker kills + corrupted frames + duplicated
        results on a supervised TCP executor; rows bit-identical to serial."""
        workload = workload_by_name("P1")
        serial = SerialExecutor()
        serial.prepare(platform, default_config=FAST)
        with serial:
            expected = [
                self.result_key(r) for r in serial.map_specs(self.make_specs(workload))
            ]

        executor = TCPExecutor(
            ("127.0.0.1", 0),
            min_workers=2,
            supervise=2,
            heartbeat_s=1.0,
            chaos=FaultPlan(corrupt_frames=(1,), duplicate_frames=(2,)),
            supervise_first_extra=(
                "--chaos",
                '{"kill_runs": [0], "duplicate_results": [1]}',
            ),
        )
        with executor:
            executor.prepare(platform, default_config=FAST)
            results = executor.map_specs(self.make_specs(workload))
            summary = executor.summary()
        assert [self.result_key(r) for r in results] == expected
        # The faults actually fired: the killed worker and the corrupted
        # frame each cost a link and forced a resubmission.
        assert executor.retries >= 1
        assert any("chaos" in reason for _peer, reason in executor.drop_events)
        assert summary["supervisor"]["restarts"] >= 1

    def test_seeded_chaos_study_rows_identical_across_backends(self):
        """A small fig7-style study under a seeded FaultPlan, spec-driven,
        on serial / pool / supervised — bit-identical rows throughout."""
        from repro.experiments import run_study

        spec = {
            "name": "chaos-soak",
            "scenarios": [
                {
                    "name": "dyn",
                    "kind": "dynamic",
                    "workloads": [{"suite": "all", "names": ["S1"]}],
                    "policies": [{"name": "dunn"}],
                    "engine": {
                        "instructions_per_run": 2.0e8,
                        "min_completions": 1,
                        "record_traces": False,
                    },
                }
            ],
        }
        serial_rows = run_study(spec, executor="serial").rows()
        pool_rows = run_study(
            spec, executor={"name": "pool", "workers": 2}
        ).rows()
        chaos = FaultPlan.seeded(7, frames=4, duplicates=1, delay_s=0.0)
        supervised_rows = run_study(
            spec,
            executor={
                "name": "supervised",
                "workers": 2,
                "heartbeat_s": 1.0,
                "chaos": chaos.to_dict(),
            },
        ).rows()
        assert pool_rows == serial_rows
        assert supervised_rows == serial_rows
