"""Differential-oracle suite: incremental vs. reference drivers and engine.

Every test here runs the *same* seeded randomized workload (or decision
input) through the ``incremental`` and ``reference`` implementations and
asserts bit-identical outcomes — study rows, ``choose_k`` decisions,
allocation masks, traces, repartition events.  The harness lives in
``tests/oracles.py``; the fuzz breadth is CI-bounded and controlled by the
``--oracle-seeds`` pytest option for deep local runs.
"""

import numpy as np
import pytest

import oracles
from repro.core.classification import AppClass
from repro.hardware import skylake_gold_6138
from repro.policies import DunnPolicy, LfocPolicy
from repro.runtime import DunnUserLevelDaemon, LfocSchedulerPlugin
from repro.workloads import Workload


@pytest.fixture(scope="module")
def platform():
    return skylake_gold_6138()


class TestEngineDriverCrossProduct:
    """Randomized phased workloads through every backend combination."""

    @pytest.mark.parametrize("driver_name", oracles.DRIVER_NAMES)
    def test_runs_bit_identical_to_reference_baseline(self, oracle_seeds, driver_name):
        for seed in oracle_seeds:
            workload = oracles.random_phased_workload(seed)
            baseline = oracles.differential_run(
                workload, driver_name, "reference", "reference"
            )
            for engine_backend, driver_backend in oracles.BACKEND_COMBINATIONS:
                candidate = oracles.differential_run(
                    workload, driver_name, engine_backend, driver_backend
                )
                oracles.assert_identical(
                    candidate,
                    baseline,
                    f"{workload.name}/{driver_name} "
                    f"(engine={engine_backend}, driver={driver_backend})",
                )

    def test_oracle_workloads_are_reproducible_and_phased(self, oracle_seeds):
        for seed in oracle_seeds:
            again = oracles.random_phased_workload(seed)
            assert again.benchmarks == oracles.random_phased_workload(seed).benchmarks
            assert again.has_phased_benchmarks()


class TestMultiRunGroupOracle:
    """Grouped multi-run execution must match serial incremental bit for bit."""

    def test_grouped_runs_bit_identical_to_serial(self, oracle_seeds):
        workloads = [oracles.random_phased_workload(seed) for seed in oracle_seeds]
        grouped = oracles.differential_group_run(workloads, oracles.DRIVER_NAMES)
        index = 0
        for workload in workloads:
            for driver_name in oracles.DRIVER_NAMES:
                baseline = oracles.differential_run(
                    workload, driver_name, "incremental", "incremental"
                )
                oracles.assert_identical(
                    grouped[index],
                    baseline,
                    f"{workload.name}/{driver_name} (multirun group)",
                )
                index += 1

    def test_study_rows_identical_under_multirun_backend(self, platform):
        from repro.analysis import fig7_dynamic_study
        from repro.runtime import EngineConfig

        workloads = [
            Workload("f7-mr-a", ("mcf06", "lbm06", "xalancbmk06", "gamess06")),
            Workload("f7-mr-b", ("soplex06", "omnetpp06", "namd06", "sjeng06")),
        ]
        config = EngineConfig(
            instructions_per_run=6.0e8, min_completions=1, record_traces=False
        )
        per_run = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="incremental"
        )
        multirun = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="multirun"
        )
        assert multirun == per_run

    def test_mixed_size_stack_bit_identical_to_serial(self, platform):
        """Workloads of different application counts share one padded stack."""
        from repro.analysis import fig7_dynamic_study
        from repro.runtime import EngineConfig

        workloads = [
            Workload("f7-mix-a", ("mcf06", "lbm06", "xalancbmk06", "gamess06")),
            Workload(
                "f7-mix-b",
                (
                    "soplex06",
                    "omnetpp06",
                    "namd06",
                    "sjeng06",
                    "mcf06",
                    "lbm06",
                ),
            ),
        ]
        config = EngineConfig(
            instructions_per_run=6.0e8, min_completions=1, record_traces=False
        )
        per_run = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="incremental"
        )
        multirun = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="multirun"
        )
        assert multirun == per_run

    def test_grouping_merges_configs_and_chunks_for_parallelism(self):
        from dataclasses import dataclass

        from repro.runtime import EngineConfig, group_run_specs

        @dataclass(frozen=True)
        class Spec:
            config: EngineConfig

        a = EngineConfig(instructions_per_run=1.0e8)
        b = EngineConfig(instructions_per_run=2.0e8)
        specs = [Spec(a), Spec(a), Spec(b), Spec(a), Spec(b)]

        groups, scatter = group_run_specs(specs)
        assert [g.config for g in groups] == [a, b]
        assert scatter == [[0, 1, 3], [2, 4]]

        groups, scatter = group_run_specs(specs, jobs=2)
        # Each config's bucket splits into balanced contiguous chunks.
        assert [len(g.members) for g in groups] == [1, 2, 1, 1]
        assert scatter == [[0], [1, 3], [2], [4]]
        flat = sorted(i for part in scatter for i in part)
        assert flat == list(range(len(specs)))


class TestStudyRowsDifferential:
    """The fig6/fig7 analysis rows must not depend on the backend."""

    def test_fig7_rows_identical_across_driver_backends(self, platform):
        from repro.analysis import fig7_dynamic_study
        from repro.runtime import EngineConfig

        workloads = [Workload("f7-diff", ("mcf06", "lbm06", "xalancbmk06", "gamess06"))]
        config = EngineConfig(
            instructions_per_run=6.0e8, min_completions=1, record_traces=False
        )
        reference = fig7_dynamic_study(
            workloads,
            engine_config=config,
            platform=platform,
            drivers={"Dunn": oracles.dunn_reference, "LFOC": oracles.lfoc_reference},
            backend="reference",
        )
        incremental = fig7_dynamic_study(
            workloads,
            engine_config=config,
            platform=platform,
            drivers={"Dunn": oracles.dunn_incremental, "LFOC": oracles.lfoc_incremental},
            backend="incremental",
        )
        assert incremental == reference

    def test_fig6_rows_identical_across_policy_backends(self, platform):
        from repro.analysis import fig6_static_study

        workloads = [Workload("f6-diff", ("lbm06", "xalancbmk06", "soplex06", "gamess06"))]
        reference = fig6_static_study(
            workloads,
            policies=[DunnPolicy(backend="reference"), LfocPolicy(backend="reference")],
            platform=platform,
        )
        incremental = fig6_static_study(
            workloads,
            policies=[
                DunnPolicy(backend="incremental"),
                LfocPolicy(backend="incremental"),
            ],
            platform=platform,
        )
        assert incremental == reference


class TestChooseKDecisionOracle:
    """Decision-level fuzz: the k-selection must be implementation-independent."""

    def test_decisions_identical_on_adversarial_vectors(self, oracle_seeds):
        for seed in oracle_seeds:
            rng = np.random.default_rng(1000 + seed)
            incremental = DunnPolicy(backend="incremental")
            reference = DunnPolicy(backend="reference")
            for _ in range(150):
                values = oracles.random_stall_vector(rng)
                k_inc, labels_inc = incremental.choose_k(values)
                k_ref, labels_ref = reference.choose_k(values)
                assert k_inc == k_ref, (values, k_inc, k_ref)
                assert np.array_equal(labels_inc, labels_ref), values

    def test_allocations_identical_on_adversarial_vectors(self, oracle_seeds, platform):
        for seed in oracle_seeds:
            rng = np.random.default_rng(2000 + seed)
            incremental = DunnPolicy(backend="incremental")
            reference = DunnPolicy(backend="reference")
            for _ in range(60):
                values = oracles.random_stall_vector(rng)
                apps = [f"app{i}" for i in range(values.size)]
                alloc_inc = incremental.allocation_for_values(apps, values, platform)
                alloc_ref = reference.allocation_for_values(apps, values, platform)
                assert alloc_inc.masks == alloc_ref.masks, values
                assert alloc_inc.total_ways == alloc_ref.total_ways


class TestLfocPartitioningOracle:
    """Algorithm 1 decisions under synthetic classification churn."""

    def _random_table(self, rng, n_ways):
        # Monotone non-increasing slowdown table (more ways -> less slowdown).
        steps = rng.random(n_ways) * 0.4
        table = 1.0 + np.cumsum(steps[::-1])[::-1]
        return [float(x) for x in table]

    def test_partitioning_identical_under_churn(self, oracle_seeds, platform):
        classes = (AppClass.STREAMING, AppClass.SENSITIVE, AppClass.LIGHT)
        for seed in oracle_seeds:
            rng = np.random.default_rng(3000 + seed)
            apps = [f"app{i}" for i in range(int(rng.integers(3, 9)))]
            incremental = LfocSchedulerPlugin(backend="incremental")
            reference = LfocSchedulerPlugin(backend="reference")
            incremental.on_start(apps, platform)
            reference.on_start(apps, platform)
            for _ in range(40):
                # Mutate a random subset of classifications identically.
                for app in apps:
                    if rng.random() < 0.3:
                        app_class = classes[int(rng.integers(0, len(classes)))]
                        table = (
                            self._random_table(rng, platform.llc_ways)
                            if app_class is AppClass.SENSITIVE
                            else None
                        )
                        for driver in (incremental, reference):
                            driver.monitors[app].set_classification(
                                app_class, slowdown_table=table
                            )
                alloc_inc = incremental._run_partitioning()
                alloc_ref = reference._run_partitioning()
                assert alloc_inc.masks == alloc_ref.masks
        # The version fast path and the fingerprint cache must actually have
        # fired for the comparison above to mean anything.
        stats = incremental.decision_stats()
        assert stats["partition_fast_hits"] + stats["decision_cache_hits"] > 0


def _stall_metrics(stall):
    from repro.hardware.pmc import DerivedMetrics

    return DerivedMetrics(
        ipc=1.0,
        llcmpkc=5.0,
        llcmpki=5.0,
        stall_fraction=stall,
        instructions=100e6,
        cycles=100e6,
    )


class TestDecisionCacheSoundness:
    """The caches must change cost, never results."""

    def test_dunn_caches_hit_on_repeated_windows(self, platform):
        # Repeated-window scenario through the *public* driver interface.
        # Real fig7 runs record zero hits for both Dunn caches, which is
        # structural (samples always arrive between 500 ms intervals, and
        # windows accumulated over varying event chunks never bit-recur);
        # this drives the two situations where hits are possible:
        # an interval with no intervening samples (version fast path), and
        # windows refilled with identical values, whose rolling means — and
        # therefore the allocation-cache fingerprint — recur exactly.
        daemon = DunnUserLevelDaemon(backend="incremental", history_window=3)
        daemon.on_start(["a", "b", "c"], platform)
        stalls = {"a": 0.1, "b": 0.7, "c": 0.75}
        for app, value in stalls.items():
            daemon.on_sample(app, _stall_metrics(value), 11.0, 0.0)
        assert daemon.on_interval(0.5) is not None
        assert daemon.decision_stats()["intervals_computed"] == 1
        # No sample since the decision: the window version is unchanged.
        daemon.on_interval(1.0)
        assert daemon.decision_stats()["interval_fast_hits"] == 1
        # Fill every window with a constant value (stationary phase)...
        for _ in range(3):
            for app, value in stalls.items():
                daemon.on_sample(app, _stall_metrics(value), 11.0, 1.2)
        first = daemon.on_interval(1.5)
        assert daemon.decision_stats()["allocation_cache_hits"] == 0
        # ...then refill it identically: versions advanced (no fast path),
        # but the means are bit-identical, so the fingerprint cache hits.
        for _ in range(3):
            for app, value in stalls.items():
                daemon.on_sample(app, _stall_metrics(value), 11.0, 1.7)
        again = daemon.on_interval(2.0)
        assert again is first
        stats = daemon.decision_stats()
        assert stats["allocation_cache_hits"] == 1
        assert stats["interval_fast_hits"] == 1
        # The daemon no longer reports the DunnPolicy choose_k counters: its
        # allocation cache shares their key and fronts them, so they could
        # never hit through the daemon (dead weight in benchmark records).
        assert "choose_k_cache_hits" not in stats

    def test_dunn_interval_fast_path_returns_same_allocation(self, platform):
        daemon = DunnUserLevelDaemon(backend="incremental")
        daemon.on_start(["a", "b", "c"], platform)
        stalls = {"a": 0.1, "b": 0.7, "c": 0.75}
        first = daemon._allocation_from_stalls(stalls)
        again = daemon._allocation_from_stalls(stalls)
        assert again is first  # fingerprint hit, not a recomputation
        assert daemon.decision_stats()["allocation_cache_hits"] == 1

    def test_dunn_choose_k_cache_is_value_keyed(self):
        policy = DunnPolicy(backend="incremental")
        values = np.array([0.1, 0.12, 0.8, 0.82])
        k1, labels1 = policy.choose_k(values)
        k2, labels2 = policy.choose_k(np.array([0.1, 0.12, 0.8, 0.82]))
        assert (k1, list(labels1)) == (k2, list(labels2))
        assert policy.decision_cache_hits == 1
        assert policy.decisions_computed == 1
        # A different vector misses.
        policy.choose_k(np.array([0.2, 0.3, 0.9, 0.95]))
        assert policy.decisions_computed == 2

    def test_reference_backend_never_caches(self):
        policy = DunnPolicy(backend="reference")
        values = np.array([0.1, 0.12, 0.8, 0.82])
        policy.choose_k(values)
        policy.choose_k(values)
        assert policy.decision_cache_hits == 0
        assert policy.decisions_computed == 2

    def test_lfoc_restart_does_not_serve_previous_runs_allocation(self, platform):
        # Regression: the version fast path must reset on on_start.  A first
        # partitioning before any sweep records an all-zero version vector;
        # a second run's fresh monitors are also all version 0 and must not
        # match it.
        driver = LfocSchedulerPlugin(backend="incremental")
        driver.on_start(["a", "b", "c"], platform)
        first = driver._run_partitioning()
        assert set(first.masks) == {"a", "b", "c"}
        driver.on_start(["x", "y", "z"], platform)
        second = driver._run_partitioning()
        assert set(second.masks) == {"x", "y", "z"}

    def test_dunn_restart_on_other_platform_does_not_reuse_allocations(self):
        # Regression: the allocation cache key is (apps, stall values) only,
        # so a restart on a different platform must not hit it.
        from repro.hardware import small_test_platform

        big = skylake_gold_6138()
        small = small_test_platform(ways=4, cores=4)
        daemon = DunnUserLevelDaemon(backend="incremental")
        stalls = {"a": 0.1, "b": 0.7, "c": 0.75}
        daemon.on_start(list(stalls), big)
        assert daemon._allocation_from_stalls(stalls).total_ways == big.llc_ways
        daemon.on_start(list(stalls), small)
        again = daemon._allocation_from_stalls(stalls)
        assert again.total_ways == small.llc_ways
        assert daemon.decision_stats()["allocation_cache_hits"] == 0

    def test_lfoc_table_token_registry_is_bounded(self, platform):
        from repro.core import LfocDecisionCache

        cache = LfocDecisionCache(max_entries=2)
        n_ways = platform.llc_ways
        for i in range(10 * cache.max_table_tokens):
            cache.table_token([1.0 + i] * n_ways)
        assert len(cache._table_tokens) <= cache.max_table_tokens
        # Tokens are never reused: a re-interned (evicted) table gets a new
        # id, so stale fingerprints cannot collide with live ones.
        first = cache.table_token([1.0] * n_ways)
        assert first != 0
        # And an evicted-then-recomputed decision still matches by value.
        table = [2.0] * n_ways
        solution = cache.solution_for([], ["s"], [], n_ways, {"s": table})
        for i in range(cache.max_table_tokens + 1):
            cache.table_token([100.0 + i] * n_ways)
        again = cache.solution_for([], ["s"], [], n_ways, {"s": table})
        assert again.to_allocation().masks == solution.to_allocation().masks

    def test_lfoc_allocation_for_survives_token_eviction_mid_call(self, platform):
        # Regression: with more distinct sensitive tables than the token
        # registry holds, fingerprinting twice in one call used to change
        # the key mid-operation and raise KeyError.
        from repro.core import LfocDecisionCache

        cache = LfocDecisionCache(max_entries=1)  # token capacity 8
        n_ways = platform.llc_ways
        sensitive = [f"s{i}" for i in range(cache.max_table_tokens + 1)]
        tables = {
            app: [2.0 + i] + [1.0] * (n_ways - 1) for i, app in enumerate(sensitive)
        }
        allocation = cache.allocation_for([], sensitive, [], n_ways, tables)
        assert set(allocation.masks) == set(sensitive)

    def test_invalid_backends_rejected(self):
        from repro.errors import ClusteringError, SimulationError

        with pytest.raises(ClusteringError):
            DunnPolicy(backend="warp")
        with pytest.raises(SimulationError):
            DunnUserLevelDaemon(backend="warp")
        with pytest.raises(SimulationError):
            LfocSchedulerPlugin(backend="warp")
        with pytest.raises(ClusteringError):
            LfocPolicy(backend="warp")
