"""Tests for run_study: fig6/fig7 equivalence pins, persistence, aggregation.

The GOLDEN_* tables below were captured from ``fig6_static_study`` /
``fig7_dynamic_study`` **before** they were refactored into spec-driven
wrappers (``float.hex()`` of every metric).  They pin two guarantees at once:
the wrappers still reproduce the pre-refactor rows bit for bit, and a study
defined purely as data (TOML included) lowers to the exact same computation.
"""

import numpy as np
import pytest

from repro.analysis.figures import fig6_static_study, fig7_dynamic_study
from repro.errors import SpecError
from repro.experiments import (
    BASELINE_LABEL,
    EngineSpec,
    PolicySpec,
    ScenarioSpec,
    StudyResult,
    StudySpec,
    WorkloadSpec,
    build_sweep_study,
    load_study_spec,
    run_study,
    study_to_toml,
)
from repro.runtime import EngineConfig
from repro.workloads import workload_by_name

# fig6_static_study([S1]) with the default policy line-up, pre-refactor.
GOLDEN_FIG6_S1 = [
    ("Stock-Linux", "0x1.69cee55481879p+0", "0x1.d14093a21e284p+2",
     "0x1.0000000000000p+0", "0x1.0000000000000p+0"),
    ("Dunn", "0x1.8446e84239767p+0", "0x1.d40f83c425702p+2",
     "0x1.12ba6a7956185p+0", "0x1.018b967c928f1p+0"),
    ("KPart", "0x1.259b11ed939bbp+0", "0x1.e48d5468c341dp+2",
     "0x1.9f7c591061645p-1", "0x1.0a9e98801fde9p+0"),
    ("LFOC", "0x1.1b9b110c37e77p+0", "0x1.e48ca8dd0b13ep+2",
     "0x1.9155a6666d77cp-1", "0x1.0a9e3a1bfa0b1p+0"),
    ("Best-Static", "0x1.1b9b110c37e77p+0", "0x1.e48ca8dd0b13ep+2",
     "0x1.9155a6666d77cp-1", "0x1.0a9e3a1bfa0b1p+0"),
]

# fig7_dynamic_study([P1], EngineConfig(6e8, min_completions=1,
# record_traces=False)), pre-refactor.
GOLDEN_FIG7_P1 = [
    ("Stock-Linux", "0x1.9bda1b7d8466cp+0", "0x1.ac2dae25dc2bap+2",
     "0x1.0000000000000p+0", "0x1.0000000000000p+0", 1, 0),
    ("Dunn", "0x1.a1c4469c6a8dbp+0", "0x1.ab8759a39d658p+2",
     "0x1.03ad2e3fcfb5ep+0", "0x1.ff391bcbea8b5p-1", 2, 0),
    ("LFOC", "0x1.a0a5dd7e884fdp+0", "0x1.ac82bc53da526p+2",
     "0x1.02fb271f9c260p+0", "0x1.0032da6180a27p+0", 39, 11),
]

FIG7_CONFIG = dict(instructions_per_run=6e8, min_completions=1, record_traces=False)


class TestFigureEquivalence:
    def test_fig6_wrapper_reproduces_pre_refactor_rows(self):
        rows = fig6_static_study([workload_by_name("S1")])
        assert len(rows) == len(GOLDEN_FIG6_S1)
        for row, (policy, unf, stp, n_unf, n_stp) in zip(rows, GOLDEN_FIG6_S1):
            assert (row.workload, row.size) == ("S1", 8)
            assert row.policy == policy
            assert row.unfairness.hex() == unf
            assert row.stp.hex() == stp
            assert row.normalized_unfairness.hex() == n_unf
            assert row.normalized_stp.hex() == n_stp

    def test_fig7_wrapper_reproduces_pre_refactor_rows(self):
        rows = fig7_dynamic_study(
            [workload_by_name("P1")], engine_config=EngineConfig(**FIG7_CONFIG)
        )
        assert len(rows) == len(GOLDEN_FIG7_P1)
        for row, (policy, unf, stp, n_unf, n_stp, reps, entries) in zip(
            rows, GOLDEN_FIG7_P1
        ):
            assert (row.workload, row.size) == ("P1", 8)
            assert row.policy == policy
            assert row.unfairness.hex() == unf
            assert row.stp.hex() == stp
            assert row.normalized_unfairness.hex() == n_unf
            assert row.normalized_stp.hex() == n_stp
            assert row.repartitions == reps
            assert row.sampling_entries == entries

    def test_pure_data_study_matches_the_golden_rows(self, tmp_path):
        """A TOML study with no Python components reproduces Fig. 7 exactly."""
        spec = StudySpec(
            name="fig7-toml",
            scenarios=(
                ScenarioSpec(
                    name="dyn",
                    kind="dynamic",
                    workloads=(WorkloadSpec(suite="dynamic_study", names=("P1",)),),
                    policies=(
                        PolicySpec("dunn", label="Dunn"),
                        PolicySpec("lfoc", label="LFOC"),
                    ),
                    engine=EngineSpec(**FIG7_CONFIG),
                ),
            ),
        )
        path = tmp_path / "fig7.toml"
        path.write_text(study_to_toml(spec), encoding="utf-8")
        result = run_study(load_study_spec(path))
        rows = result.rows()
        assert len(rows) == len(GOLDEN_FIG7_P1)
        for row, (policy, unf, stp, n_unf, n_stp, reps, entries) in zip(
            rows, GOLDEN_FIG7_P1
        ):
            assert row["policy"] == policy
            assert row["unfairness"].hex() == unf
            assert row["stp"].hex() == stp
            assert row["normalized_unfairness"].hex() == n_unf
            assert row["normalized_stp"].hex() == n_stp
            assert (row["repartitions"], row["sampling_entries"]) == (reps, entries)

    def test_static_spec_matches_fig6_wrapper(self):
        spec = StudySpec(
            name="fig6-spec",
            scenarios=(
                ScenarioSpec(
                    name="stat",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S2",)),),
                    policies=(PolicySpec("dunn"), PolicySpec("lfoc")),
                ),
            ),
        )
        from repro.policies import DunnPolicy, LfocPolicy

        direct = fig6_static_study(
            [workload_by_name("S2")], policies=[DunnPolicy(), LfocPolicy()]
        )
        rows = run_study(spec).rows()
        assert [(r["policy"], r["unfairness"], r["stp"]) for r in rows] == [
            (d.policy, d.unfairness, d.stp) for d in direct
        ]


class TestRunStudy:
    def test_accepts_plain_mappings(self):
        data = {
            "name": "m",
            "scenarios": [
                {
                    "name": "s",
                    "kind": "static",
                    "workloads": [{"suite": "s", "names": ["S1"]}],
                    "policies": ["lfoc"],
                }
            ],
        }
        result = run_study(data)
        assert {row["policy"] for row in result.rows()} == {BASELINE_LABEL, "LFOC"}
        assert result.spec is not None and result.spec["name"] == "m"

    def test_rejects_other_types(self):
        with pytest.raises(SpecError, match="StudySpec"):
            run_study(42)

    def test_baseline_row_is_always_first_per_workload(self):
        spec = StudySpec(
            name="b",
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1", "S2")),),
                    policies=(PolicySpec("lfoc"),),
                ),
            ),
        )
        rows = run_study(spec).rows()
        assert [r["policy"] for r in rows] == [BASELINE_LABEL, "LFOC"] * 2
        assert all(r["scenario_id"] == "s" and r["seed"] == 0 for r in rows)

    def test_duplicate_workload_names_rejected(self):
        spec = StudySpec(
            name="d",
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(
                        WorkloadSpec(suite="s", names=("S1",)),
                        WorkloadSpec(suite="s", names=("S1",)),
                    ),
                ),
            ),
        )
        with pytest.raises(SpecError, match="unique"):
            run_study(spec)

    def test_seed_replication_and_scenario_ids(self):
        spec = StudySpec(
            name="seeds",
            scenarios=(
                ScenarioSpec(
                    name="rnd",
                    kind="static",
                    workloads=(WorkloadSpec(source="random", size=4, seed=10),),
                    policies=(PolicySpec("lfoc"),),
                    seeds=(0, 1),
                ),
            ),
        )
        result = run_study(spec)
        assert result.scenario_ids() == ["rnd#s0", "rnd#s1"]
        first, second = result.scenarios
        assert first.workloads != second.workloads  # different random draws
        assert {row["seed"] for row in first.rows} == {0}
        assert {row["seed"] for row in second.rows} == {1}
        # Aggregation across seeds: one entry per policy, averaged over both.
        summary = result.aggregate()
        assert set(summary) == {BASELINE_LABEL, "LFOC"}
        per_seed = result.aggregate(by=("policy", "seed"))
        assert set(per_seed) == {
            (BASELINE_LABEL, 0), (BASELINE_LABEL, 1), ("LFOC", 0), ("LFOC", 1),
        }
        # Every metric reports mean, spread and sample count per group.
        lfoc = summary["LFOC"]
        for metric in ("normalized_unfairness", "normalized_stp"):
            assert set(lfoc) >= {f"mean_{metric}", f"std_{metric}", f"n_{metric}"}
            assert lfoc[f"n_{metric}"] == 2.0
            assert lfoc[f"std_{metric}"] >= 0.0
        values = [
            row["normalized_unfairness"]
            for row in result.rows()
            if row["policy"] == "LFOC"
        ]
        assert lfoc["std_normalized_unfairness"] == pytest.approx(
            float(np.std(values))
        )
        # Single-sample groups have zero spread, not NaN.
        single = per_seed[("LFOC", 0)]
        assert single["n_normalized_unfairness"] == 1.0
        assert single["std_normalized_unfairness"] == 0.0

    def test_aggregate_unknown_field_raises(self):
        spec = StudySpec(
            name="a",
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                ),
            ),
        )
        result = run_study(spec)
        with pytest.raises(SpecError, match="no field"):
            result.aggregate(by=("nonexistent",))

    def test_inline_components_run_but_do_not_serialize(self):
        from repro.policies import LfocPolicy

        spec = StudySpec(
            name="inline",
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                    policies=(PolicySpec.inline(LfocPolicy(), label="mine"),),
                ),
            ),
        )
        result = run_study(spec)
        assert {row["policy"] for row in result.rows()} == {BASELINE_LABEL, "mine"}
        assert result.spec is None  # not serializable, recorded as such


class TestStudyResultStore:
    def _small_result(self) -> StudyResult:
        return run_study(
            StudySpec(
                name="store",
                description="persistence fixture",
                scenarios=(
                    ScenarioSpec(
                        name="s",
                        kind="static",
                        workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                        policies=(PolicySpec("lfoc"),),
                    ),
                ),
            )
        )

    def test_save_load_round_trip(self, tmp_path):
        result = self._small_result()
        path = tmp_path / "rows.jsonl"
        result.save(path)
        reloaded = StudyResult.load(path)
        assert reloaded.name == result.name
        assert reloaded.description == result.description
        assert reloaded.spec == result.spec
        assert reloaded.scenario_ids() == result.scenario_ids()
        assert reloaded.rows() == result.rows()

    def test_getitem_by_scenario_id(self):
        result = self._small_result()
        assert result["s"].kind == "static"
        with pytest.raises(KeyError, match="nope"):
            result["nope"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(SpecError, match="JSONL"):
            StudyResult.load(path)
        path.write_text('{"record": "row", "scenario_id": "x"}\n', encoding="utf-8")
        with pytest.raises(SpecError):
            StudyResult.load(path)

    def test_load_requires_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SpecError, match="header"):
            StudyResult.load(path)


class TestSweep:
    def test_build_sweep_study_shapes(self):
        spec = build_sweep_study(
            "sw",
            "static",
            ["dunn", "lfoc"],
            ["S1", "S2"],
            ways=[11, 8],
            seeds=[0, 1],
        )
        assert [s.name for s in spec.scenarios] == ["static-w11", "static-w8"]
        for scenario in spec.scenarios:
            assert scenario.seeds == (0, 1)
            assert [p.name for p in scenario.policies] == ["dunn", "lfoc"]
        # The whole sweep spec stays serializable.
        assert study_to_toml(spec)

    def test_sweep_accepts_suite_names(self):
        spec = build_sweep_study("sw", "dynamic", ["dunn"], ["dynamic_study"])
        assert spec.scenarios[0].workloads[0].suite == "dynamic_study"

    def test_sweep_over_ways_runs(self):
        spec = build_sweep_study(
            "sw", "static", ["lfoc"], ["S1"], ways=[11, 8], jobs=1
        )
        result = run_study(spec)
        assert result.scenario_ids() == ["static-w11", "static-w8"]
        # A narrower cache changes the numbers — both scenarios computed.
        rows11 = result["static-w11"].rows
        rows8 = result["static-w8"].rows
        assert rows11[0]["unfairness"] != rows8[0]["unfairness"]


class TestLoadRobustness:
    def test_malformed_scenario_record_raises_spec_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"record": "study", "name": "x", "description": "", "spec": null}\n'
            '{"record": "scenario", "scenario": "s", "scenario_id": "s", '
            '"kind": "static", "seed": 0, "workloads": [], "extra": 1}\n',
            encoding="utf-8",
        )
        with pytest.raises(SpecError, match="scenario record keys"):
            StudyResult.load(path)


class TestExecutorSelection:
    def _spec(self, executor=None):
        return StudySpec(
            name="sel",
            scenarios=(
                ScenarioSpec(
                    name="s",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                ),
            ),
            executor=executor,
        )

    def test_explicit_jobs_overrides_spec_executor(self):
        from repro.experiments import ExecutorSpec
        from repro.experiments.study import _resolve_executor
        from repro.runtime import PoolExecutor, SerialExecutor

        spec = self._spec(ExecutorSpec(name="pool", workers=4))
        # --jobs 1 must win over the spec's [executor] table (the historical
        # contract: jobs overrides whatever the spec says about execution).
        chosen, owned = _resolve_executor(spec, None, 1, True)
        assert isinstance(chosen, SerialExecutor) and owned
        # Without an explicit jobs, the spec's executor is honoured.
        chosen, owned = _resolve_executor(spec, None, spec.jobs, False)
        assert isinstance(chosen, PoolExecutor) and chosen.jobs == 4 and owned
        chosen.close()
        # An explicit executor argument beats both.
        chosen, owned = _resolve_executor(spec, "serial", 8, True)
        assert isinstance(chosen, SerialExecutor) and owned

    def test_caller_owned_executor_not_closed(self):
        from repro.runtime import SerialExecutor

        live = SerialExecutor()
        result = run_study(self._spec(), executor=live)
        assert {row["policy"] for row in result.rows()} == {BASELINE_LABEL}
        # Still usable: run_study must not have closed a caller-owned executor.
        result2 = run_study(self._spec(), executor=live)
        assert result2.rows() == result.rows()

    def test_executor_spec_round_trips_with_study(self):
        from repro.experiments import ExecutorSpec

        spec = self._spec(
            ExecutorSpec(
                name="tcp",
                workers=2,
                bind="127.0.0.1:7070",
                task_timeout_s=120.0,
                max_retries=5,
            )
        )
        reloaded = StudySpec.from_dict(spec.to_dict())
        assert reloaded.executor == spec.executor
        assert reloaded.executor.task_timeout_s == 120.0

    def test_executor_spec_rejects_unknown_names_and_keys(self):
        from repro.errors import SpecError
        from repro.experiments import ExecutorSpec

        with pytest.raises(SpecError, match="unknown executor"):
            ExecutorSpec.from_dict({"name": "quantum"})
        with pytest.raises(SpecError, match="unknown key"):
            ExecutorSpec.from_dict({"name": "serial", "threads": 4})
        with pytest.raises(SpecError, match="task_timeout_s"):
            ExecutorSpec(name="tcp", task_timeout_s=0.0)


class TestWorkerTableCache:
    def test_per_spec_max_table_entries_is_honoured(self):
        """Specs with different table bounds get distinct table sets.

        The per-worker cache is keyed by ``(id(platform), max_entries)``, so
        interleaved runners with different bounds (or platforms) can never
        silently share or clobber each other's table state — and repeated
        batches still produce identical results.
        """
        from repro.runtime import EngineConfig, StockLinuxDriver
        from repro.runtime.batch import BatchRunner, RunSpec
        from repro.runtime.executors import worker_tables
        from repro.hardware import skylake_gold_6138
        from repro.workloads import workload_by_name

        platform = skylake_gold_6138()
        workload = workload_by_name("P1")
        base = dict(instructions_per_run=2e8, min_completions=1, record_traces=False)
        specs = [
            RunSpec(
                workload=workload,
                driver_cls=StockLinuxDriver,
                config=EngineConfig(**base),
                label="unbounded",
            ),
            RunSpec(
                workload=workload,
                driver_cls=StockLinuxDriver,
                config=EngineConfig(**base, max_table_entries=2),
                label="bounded",
            ),
        ]
        results = BatchRunner(platform, jobs=1).run(specs)
        assert len(results) == 2
        # Distinct bounds map to distinct table sets for the same platform...
        unbounded = worker_tables(platform, None)
        bounded = worker_tables(platform, 2)
        assert unbounded is not bounded
        assert bounded.max_entries == 2 and unbounded.max_entries is None
        # ...the cache is stable across lookups (interleaved runners share)...
        assert worker_tables(platform, 2) is bounded
        # ...and results do not depend on whatever table state accumulated.
        r1 = BatchRunner(platform, jobs=1).run(specs)
        assert results[0].slowdowns() == r1[0].slowdowns()
        assert results[1].slowdowns() == r1[1].slowdowns()

    def test_cache_distinguishes_platforms_by_identity(self):
        from repro.hardware import skylake_gold_6138
        from repro.runtime.executors import worker_tables

        a, b = skylake_gold_6138(), skylake_gold_6138()
        assert worker_tables(a, None) is not worker_tables(b, None)
        assert worker_tables(a, None) is worker_tables(a, None)

    def test_cache_is_dropped_when_the_executor_closes(self):
        """The historical end-of-batch table reset: no retention after close."""
        from repro.hardware import skylake_gold_6138
        from repro.runtime import SerialExecutor
        import repro.runtime.executors.base as base_mod

        platform = skylake_gold_6138()
        with SerialExecutor() as executor:
            executor.prepare(platform)
            base_mod.worker_tables(platform, None)
            assert base_mod._TABLES_CACHE
        assert base_mod._TABLES_CACHE == {}


class TestFaultTolerance:
    """Graceful degradation: retry budgets, quarantine, failure records."""

    FAILING_SPEC = {
        "name": "degraded",
        "scenarios": [
            {
                "name": "dyn",
                "kind": "dynamic",
                "workloads": [{"suite": "all", "names": ["S1"]}],
                "policies": [
                    {"name": "dunn"},
                    {"name": "kaboom-driver", "label": "Bad"},
                ],
                "engine": {
                    "instructions_per_run": 2.0e8,
                    "min_completions": 1,
                    "record_traces": False,
                },
            }
        ],
    }

    @pytest.fixture(autouse=True, scope="class")
    def kaboom_driver(self):
        from repro.experiments.registry import DRIVERS, register_driver
        from repro.runtime.scheduler import StockLinuxDriver

        if "kaboom-driver" in DRIVERS:
            return

        class KaboomDriver(StockLinuxDriver):
            name = "Kaboom"

            def on_start(self, apps, platform):
                raise RuntimeError("kaboom")

        register_driver("kaboom-driver", KaboomDriver)

    def test_quarantine_keeps_the_study_alive(self):
        result = run_study(
            self.FAILING_SPEC,
            fault_tolerance={"max_attempts": 2, "backoff_s": 0.0},
        )
        # The healthy drivers' rows survive, the poison run is quarantined.
        assert sorted({row["policy"] for row in result.rows()}) == [
            "Dunn",
            "Stock-Linux",
        ]
        (failure,) = result.failures()
        assert failure["label"] == "Bad@S1"
        assert failure["kind"] == "RuntimeError"
        assert failure["message"] == "kaboom"
        assert failure["attempts"] == 2
        assert failure["workload"] == "S1"
        assert failure["scenario_id"] == "dyn"

    def test_failure_records_round_trip_through_the_store(self, tmp_path):
        result = run_study(
            self.FAILING_SPEC,
            fault_tolerance={"max_attempts": 1, "backoff_s": 0.0},
        )
        path = tmp_path / "degraded.jsonl"
        result.save(path)
        loaded = StudyResult.load(path)
        assert loaded.rows() == result.rows()
        assert loaded.failures() == result.failures()

    def test_spec_level_fault_tolerance_and_kwarg_override(self):
        spec = dict(self.FAILING_SPEC)
        spec["fault_tolerance"] = {"max_attempts": 1, "backoff_s": 0.0}
        result = run_study(spec)
        (failure,) = result.failures()
        assert failure["attempts"] == 1
        # The kwarg wins over the spec.
        result = run_study(
            spec, fault_tolerance={"max_attempts": 3, "backoff_s": 0.0}
        )
        (failure,) = result.failures()
        assert failure["attempts"] == 3
        # fault_tolerance=False disables the layer entirely: first error aborts.
        with pytest.raises(Exception, match="kaboom"):
            run_study(spec, fault_tolerance=False)

    def test_quarantine_false_reraises_after_the_budget(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="kaboom"):
            run_study(
                self.FAILING_SPEC,
                fault_tolerance={
                    "max_attempts": 2,
                    "backoff_s": 0.0,
                    "quarantine": False,
                },
            )

    def test_without_tolerance_failures_still_abort(self):
        with pytest.raises(Exception, match="kaboom"):
            run_study(self.FAILING_SPEC)
