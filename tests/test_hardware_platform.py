"""Tests for the platform model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import PlatformSpec, broadwell_like, skylake_gold_6138, small_test_platform


class TestPlatformSpec:
    def test_skylake_matches_paper_geometry(self):
        plat = skylake_gold_6138()
        assert plat.llc_ways == 11
        assert plat.llc_mb == pytest.approx(27.5)
        assert plat.way_mb == pytest.approx(2.5)
        assert plat.freq_ghz == pytest.approx(2.0)
        assert plat.l2_kb == 1024
        assert plat.l1_kb == 64

    def test_broadwell_preset_has_20_ways(self):
        assert broadwell_like().llc_ways == 20

    def test_small_platform_configurable(self):
        plat = small_test_platform(ways=6, cores=2)
        assert plat.llc_ways == 6
        assert plat.n_cores == 2

    def test_full_mask_covers_every_way(self):
        plat = small_test_platform(ways=4)
        assert plat.full_mask == 0b1111

    def test_cycle_time_round_trip(self):
        plat = skylake_gold_6138()
        assert plat.cycles_to_seconds(plat.seconds_to_cycles(1.5)) == pytest.approx(1.5)

    def test_cycles_per_second(self):
        assert skylake_gold_6138().cycles_per_second == pytest.approx(2e9)

    def test_ways_to_kb(self):
        plat = skylake_gold_6138()
        assert plat.ways_to_kb(2) == pytest.approx(2 * 2560)

    def test_with_ways_returns_new_spec(self):
        plat = skylake_gold_6138()
        other = plat.with_ways(20)
        assert other.llc_ways == 20
        assert plat.llc_ways == 11

    def test_validate_ways_accepts_legal_values(self):
        plat = skylake_gold_6138()
        assert plat.validate_ways(1) == 1
        assert plat.validate_ways(11) == 11

    def test_validate_ways_rejects_out_of_range(self):
        plat = skylake_gold_6138()
        with pytest.raises(ConfigurationError):
            plat.validate_ways(0)
        with pytest.raises(ConfigurationError):
            plat.validate_ways(12)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"llc_ways": 0},
            {"n_cores": 0},
            {"llc_way_kb": 0},
            {"freq_ghz": 0.0},
            {"peak_bw_gbs": -1.0},
            {"min_mask_bits": 0},
            {"min_mask_bits": 99},
            {"n_clos": 0},
            {"n_rmids": 0},
            {"mem_latency_cycles": 0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlatformSpec(**kwargs)
