"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import build_catalog, build_profile
from repro.hardware import PlatformSpec, skylake_gold_6138, small_test_platform
from repro.simulator import ClusteringEstimator


def pytest_addoption(parser):
    parser.addoption(
        "--oracle-seeds",
        type=int,
        default=2,
        help=(
            "number of randomized-workload seeds the differential-oracle "
            "suite runs through the incremental-vs-reference cross product "
            "(default keeps CI bounded; crank it up for deep local fuzzing, "
            "e.g. --oracle-seeds 25)"
        ),
    )


@pytest.fixture(scope="session")
def oracle_seeds(request) -> list:
    """Seeds for the differential-oracle fuzz loops (see ``--oracle-seeds``)."""
    count = request.config.getoption("--oracle-seeds")
    return list(range(count))


@pytest.fixture(scope="session")
def platform() -> PlatformSpec:
    """The paper's Skylake platform (11-way LLC)."""
    return skylake_gold_6138()


@pytest.fixture(scope="session")
def small_platform() -> PlatformSpec:
    """A tiny 4-way platform for quick combinatorial tests."""
    return small_test_platform(ways=4, cores=4)


@pytest.fixture(scope="session")
def catalog(platform):
    """Stationary profiles of the whole benchmark catalogue (11 ways)."""
    return build_catalog(platform.llc_ways)


@pytest.fixture(scope="session")
def mix8(catalog):
    """A fixed, class-diverse 8-application mix used across tests."""
    names = [
        "lbm06",
        "libquantum06",
        "xalancbmk06",
        "soplex06",
        "omnetpp06",
        "gamess06",
        "namd06",
        "sjeng06",
    ]
    return {name: catalog[name] for name in names}


@pytest.fixture()
def estimator(platform, mix8):
    """Estimator preloaded with the 8-application mix."""
    return ClusteringEstimator(platform, mix8)


@pytest.fixture(scope="session")
def sensitive_profile(platform):
    return build_profile("xalancbmk06", platform.llc_ways)


@pytest.fixture(scope="session")
def streaming_profile(platform):
    return build_profile("lbm06", platform.llc_ways)


@pytest.fixture(scope="session")
def light_profile(platform):
    return build_profile("gamess06", platform.llc_ways)
