"""Tests for the policy tournament harness: grid generation, paired
statistics, leaderboard verdicts, regression gates and the CLI."""

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ReproError, SpecError
from repro.experiments import ScenarioSpec
from repro.experiments.study import BASELINE_LABEL
from repro.tournament import (
    PRIMARY_METRIC,
    SECONDARY_METRIC,
    StatsSpec,
    SuiteSpec,
    TournamentResult,
    TournamentSpec,
    baseline_from_result,
    bootstrap_mean_ci,
    build_result,
    check_regression,
    compare_paired,
    dump_tournament_spec,
    judge_study,
    load_baseline,
    load_tournament_spec,
    nerf_rows,
    rejudge,
    run_tournament,
    sign_test_p,
    stat_seed,
    write_baseline,
)

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -- stats ----------------------------------------------------------------------


class TestStatSeed:
    def test_deterministic_and_order_sensitive(self):
        assert stat_seed(7, "lfoc", "unfairness") == stat_seed(7, "lfoc", "unfairness")
        assert stat_seed(7, "lfoc", "unfairness") != stat_seed(7, "unfairness", "lfoc")
        assert stat_seed(7, "lfoc") != stat_seed(8, "lfoc")

    def test_distinct_streams_per_statistic(self):
        seeds = {
            stat_seed(0, label, metric)
            for label in ("LFOC", "Dunn", "Best-Static")
            for metric in (PRIMARY_METRIC, SECONDARY_METRIC)
        }
        assert len(seeds) == 6


class TestBootstrapCI:
    def test_single_value_collapses_to_point(self):
        ci = bootstrap_mean_ci([2.5], seed=1)
        assert ci.mean == ci.lo == ci.hi == 2.5
        assert ci.width == 0.0

    def test_deterministic_across_calls(self):
        values = [1.0, 1.2, 0.9, 1.5, 1.1]
        a = bootstrap_mean_ci(values, resamples=200, seed=42)
        b = bootstrap_mean_ci(values, resamples=200, seed=42)
        assert (a.mean, a.lo, a.hi) == (b.mean, b.lo, b.hi)

    def test_seed_changes_the_interval(self):
        values = [1.0, 1.2, 0.9, 1.5, 1.1]
        a = bootstrap_mean_ci(values, resamples=200, seed=1)
        b = bootstrap_mean_ci(values, resamples=200, seed=2)
        assert (a.lo, a.hi) != (b.lo, b.hi)  # same mean, different resamples
        assert a.mean == b.mean

    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            bootstrap_mean_ci([])
        with pytest.raises(ReproError):
            bootstrap_mean_ci([1.0, float("nan")])
        with pytest.raises(ReproError):
            bootstrap_mean_ci([1.0, 2.0], resamples=0)
        with pytest.raises(ReproError):
            bootstrap_mean_ci([1.0, 2.0], confidence=1.0)

    @SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_interval_brackets_and_stays_in_hull(self, values, seed):
        ci = bootstrap_mean_ci(values, resamples=100, seed=seed)
        assert ci.lo <= ci.hi
        # Bootstrap means are convex combinations of the sample.
        assert ci.lo >= min(values) - 1e-9 * max(1.0, abs(min(values)))
        assert ci.hi <= max(values) + 1e-9 * max(1.0, abs(max(values)))
        assert ci.mean == pytest.approx(float(np.mean(values)))

    def test_coverage_on_known_distribution(self):
        # ~95% of seeded bootstrap CIs over N(0,1) samples must contain the
        # true mean 0.  Percentile bootstrap under-covers slightly at n=25,
        # so accept a generous band — the point is catching gross breakage
        # (e.g. quantiles on the wrong axis), not certifying exact coverage.
        rng = np.random.default_rng(20190805)
        trials, hits = 150, 0
        for trial in range(trials):
            sample = rng.normal(0.0, 1.0, size=25)
            ci = bootstrap_mean_ci(sample, resamples=400, confidence=0.95, seed=trial)
            if ci.lo <= 0.0 <= ci.hi:
                hits += 1
        assert 0.85 <= hits / trials <= 1.0

    def test_narrower_at_lower_confidence(self):
        values = list(np.random.default_rng(3).normal(0, 1, size=40))
        wide = bootstrap_mean_ci(values, resamples=500, confidence=0.99, seed=9)
        narrow = bootstrap_mean_ci(values, resamples=500, confidence=0.5, seed=9)
        assert narrow.width < wide.width


class TestSignTest:
    def test_no_information_is_p_one(self):
        assert sign_test_p(0, 0) == 1.0

    def test_exact_binomial_tails(self):
        # 5-0: 2 * C(5,0)/2^5 = 1/16.
        assert sign_test_p(5, 0) == pytest.approx(2 * 1 / 32)
        # 4-1: 2 * (C(5,0)+C(5,1))/2^5 = 12/32.
        assert sign_test_p(4, 1) == pytest.approx(12 / 32)
        # 8-2: 2 * (C(10,0)+C(10,1)+C(10,2))/2^10.
        expected = 2 * (1 + 10 + 45) / 2**10
        assert sign_test_p(8, 2) == pytest.approx(expected)

    def test_symmetric_and_clamped(self):
        assert sign_test_p(3, 7) == sign_test_p(7, 3)
        assert sign_test_p(1, 1) == 1.0  # raw two-sided tail exceeds 1

    def test_rejects_negative_counts(self):
        with pytest.raises(ReproError):
            sign_test_p(-1, 0)

    @SETTINGS
    @given(
        wins=st.integers(min_value=0, max_value=40),
        losses=st.integers(min_value=0, max_value=40),
    )
    def test_is_a_probability_and_symmetric(self, wins, losses):
        p = sign_test_p(wins, losses)
        assert 0.0 < p <= 1.0
        assert p == sign_test_p(losses, wins)
        # More lopsided records are never less significant.
        if wins > losses:
            assert sign_test_p(wins + 1, losses) <= p


class TestComparePaired:
    def test_counts_wins_losses_ties(self):
        a = [1.0, 2.0, 3.0, 5.0]
        b = [2.0, 2.0, 2.0, 2.0]
        cmp = compare_paired("A", "B", a, b, metric="m", better="lower", seed=1)
        assert (cmp.wins, cmp.losses, cmp.ties) == (1, 2, 1)
        assert cmp.n == 4
        assert cmp.delta.mean == pytest.approx(np.mean(np.array(a) - np.array(b)))
        assert cmp.p_value == sign_test_p(1, 2)

    def test_better_higher_flips_direction(self):
        cmp = compare_paired(
            "A", "B", [2.0, 3.0], [1.0, 1.0], metric="m", better="higher", seed=1
        )
        assert (cmp.wins, cmp.losses, cmp.ties) == (2, 0, 0)

    def test_tie_epsilon_is_respected(self):
        cmp = compare_paired(
            "A", "B", [1.0], [1.0 + 1e-13], metric="m", seed=1
        )
        assert cmp.ties == 1
        cmp = compare_paired(
            "A", "B", [1.0], [1.0 + 1e-13], metric="m", seed=1, tie_epsilon=0.0
        )
        assert cmp.ties == 0 and cmp.wins == 1

    def test_rejects_mismatched_or_empty(self):
        with pytest.raises(ReproError):
            compare_paired("A", "B", [1.0], [1.0, 2.0], metric="m")
        with pytest.raises(ReproError):
            compare_paired("A", "B", [], [], metric="m")
        with pytest.raises(ReproError):
            compare_paired("A", "B", [1.0], [1.0], metric="m", better="sideways")


# -- grid -----------------------------------------------------------------------


class TestSuiteSpec:
    def test_validation(self):
        with pytest.raises(SpecError):
            SuiteSpec(size=1)
        with pytest.raises(SpecError):
            SuiteSpec(size=4, kind="X")
        with pytest.raises(SpecError):
            SuiteSpec(size=4, count=0)

    def test_axis_label_defaults_and_overrides(self):
        assert SuiteSpec(size=6).axis_label == "S6"
        assert SuiteSpec(size=6, kind="P").axis_label == "P6"
        assert SuiteSpec(size=6, label="mix").axis_label == "mix"

    def test_workload_specs_draws_are_distinct(self):
        suite = SuiteSpec(size=4, count=3, seed=100)
        specs = suite.workload_specs()
        assert [s.name for s in specs] == ["S4w0", "S4w1", "S4w2"]
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == 3 and seeds[0] == 100

    def test_round_trip(self):
        suite = SuiteSpec(size=8, kind="P", count=2, seed=5, label="heavy")
        assert SuiteSpec.from_dict(suite.to_dict()) == suite
        with pytest.raises(SpecError):
            SuiteSpec.from_dict({"size": 4, "bogus": 1})


class TestStatsSpec:
    def test_validation(self):
        with pytest.raises(SpecError):
            StatsSpec(resamples=0)
        with pytest.raises(SpecError):
            StatsSpec(confidence=1.5)
        with pytest.raises(SpecError):
            StatsSpec(tie_epsilon=-1.0)

    def test_round_trip_omits_defaults(self):
        assert StatsSpec().to_dict() == {}
        stats = StatsSpec(resamples=200, seed=9)
        assert StatsSpec.from_dict(stats.to_dict()) == stats


class TestTournamentSpec:
    def _spec(self, **overrides):
        defaults = dict(
            name="t",
            policies=("lfoc", "dunn"),
            suites=(SuiteSpec(size=4),),
            seeds=2,
        )
        defaults.update(overrides)
        return TournamentSpec(**defaults)

    def test_needs_two_policies(self):
        with pytest.raises(SpecError, match="at least two"):
            self._spec(policies=("lfoc",))

    def test_rejects_duplicate_suite_labels(self):
        with pytest.raises(SpecError, match="unique"):
            self._spec(suites=(SuiteSpec(size=4), SuiteSpec(size=4)))

    def test_rejects_bad_kind_and_seeds(self):
        with pytest.raises(SpecError):
            self._spec(kind="both")
        with pytest.raises(SpecError):
            self._spec(seeds=0)

    def test_grid_cells_and_scenario_count(self):
        spec = self._spec(
            suites=(SuiteSpec(size=4), SuiteSpec(size=6)),
            platforms=("skylake_gold_6138", {"preset": "skylake_gold_6138", "llc_ways": 20, "label": "w20"}),
            seeds=3,
        )
        cells = spec.grid_cells()
        assert [name for name, *_ in cells] == [
            "S4@skylake_gold_6138", "S4@w20", "S6@skylake_gold_6138", "S6@w20",
        ]
        assert spec.n_scenarios() == 2 * 2 * 3
        # Single platform keeps the short scenario name.
        assert [name for name, *_ in self._spec().grid_cells()] == ["S4"]

    def test_rejects_duplicate_platform_labels(self):
        spec = self._spec(
            platforms=("skylake_gold_6138", {"preset": "skylake_gold_6138"})
        )
        with pytest.raises(SpecError, match="unique"):
            spec.grid_cells()

    def test_pairing_is_structural(self):
        # Every scenario replica carries the full policy line-up over the
        # same workload draws: that IS the paired-seed guarantee.
        spec = self._spec(seeds=3, seed0=10)
        study = spec.to_study_spec()
        assert len(study.scenarios) == 1
        scenario = study.scenarios[0]
        assert isinstance(scenario, ScenarioSpec)
        assert scenario.seeds == (10, 11, 12)
        assert [p.name for p in scenario.policies] == ["lfoc", "dunn"]
        assert len(scenario.workloads) == 1  # one draw shared by all policies

    def test_dict_round_trip(self):
        spec = self._spec(
            seeds=4,
            seed0=7,
            stats=StatsSpec(resamples=100),
            reference="Dunn",
            description="round trip",
        )
        clone = TournamentSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.stats == spec.stats
        assert clone.reference == "Dunn"

    def test_from_dict_rejects_unknown_keys_and_schema(self):
        data = self._spec().to_dict()
        with pytest.raises(SpecError, match="unknown"):
            TournamentSpec.from_dict({**data, "bogus": 1})
        with pytest.raises(SpecError, match="schema"):
            TournamentSpec.from_dict({**data, "schema": 99})

    def test_from_dict_rejects_unknown_policy_eagerly(self):
        data = self._spec().to_dict()
        data["policies"] = [{"name": "no_such_policy"}]
        with pytest.raises(SpecError):
            TournamentSpec.from_dict(data)

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_round_trip(self, tmp_path, suffix):
        spec = self._spec(stats=StatsSpec(resamples=150, seed=3))
        path = tmp_path / f"spec{suffix}"
        dump_tournament_spec(spec, path)
        assert load_tournament_spec(path).to_dict() == spec.to_dict()

    def test_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(SpecError, match=".toml or .json"):
            dump_tournament_spec(self._spec(), tmp_path / "spec.yaml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("name: nope\n")
        with pytest.raises(SpecError, match=".toml or .json"):
            load_tournament_spec(bad)
        with pytest.raises(SpecError, match="cannot read"):
            load_tournament_spec(tmp_path / "missing.toml")


# -- leaderboard ----------------------------------------------------------------


def _synthetic_rows(table, kind="static"):
    """Rows for ``{policy: {unit: (unfairness, stp)}}`` synthetic verdicts."""
    rows = []
    for policy, units in table.items():
        for (scenario_id, workload), (unf, stp_value) in units.items():
            rows.append(
                {
                    "scenario_id": scenario_id,
                    "workload": workload,
                    "policy": policy,
                    "seed": 0,
                    "normalized_unfairness": unf,
                    "normalized_stp": stp_value,
                }
            )
    return rows


_UNITS = [("g#s0", "w0"), ("g#s1", "w0"), ("h#s0", "w0"), ("h#s1", "w0")]


def _three_policy_rows():
    return _synthetic_rows(
        {
            "LFOC": dict(zip(_UNITS, [(0.80, 1.05), (0.82, 1.04), (0.78, 1.06), (0.81, 1.05)])),
            "Dunn": dict(zip(_UNITS, [(0.95, 1.01), (0.97, 1.00), (0.94, 1.02), (0.96, 1.01)])),
            BASELINE_LABEL: dict(zip(_UNITS, [(1.0, 1.0)] * 4)),
        }
    )


class TestBuildResult:
    def test_ranks_and_reference_defaults(self):
        result = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=100))
        assert result.reference == "LFOC"  # first non-baseline label
        assert result.policies() == ["LFOC", "Dunn", BASELINE_LABEL]
        assert [s.rank for s in result.standings] == [1, 2, 3]
        assert result.standings[0].policy == "LFOC"
        assert result.n_units == result.n_complete_units == 4
        # The reference's own row carries no vs-ref record.
        ref = result.standing("LFOC")
        assert ref.wins is None and ref.p_value is None
        dunn = result.standing("Dunn")
        assert (dunn.wins, dunn.losses, dunn.ties) == (0, 4, 0)
        assert dunn.p_value == pytest.approx(sign_test_p(0, 4))
        # Full pairwise head-to-head: C(3, 2) records.
        assert len(result.head_to_head) == 3

    def test_explicit_reference_and_unknown_reference(self):
        result = build_result(
            "demo", _three_policy_rows(), stats=StatsSpec(resamples=50),
            reference="Dunn",
        )
        assert result.standing("LFOC").wins == 4
        with pytest.raises(SpecError, match="reference"):
            build_result("demo", _three_policy_rows(), reference="nope")

    def test_incomplete_units_are_excluded(self):
        rows = _three_policy_rows()
        # Drop Dunn's row on one unit: that unit must leave the statistics.
        rows = [
            r for r in rows
            if not (r["policy"] == "Dunn" and r["scenario_id"] == "h#s1")
        ]
        failures = [{"label": "Dunn", "scenario_id": "h#s1"}]
        result = build_result(
            "demo", rows, failures, stats=StatsSpec(resamples=50)
        )
        assert result.n_units == 4
        assert result.n_complete_units == 3
        assert all(s.n == 3 for s in result.standings)
        assert result.failures == failures
        assert "Degraded" in result.render_markdown()

    def test_no_complete_unit_raises(self):
        rows = [r for r in _three_policy_rows() if r["policy"] != "Dunn"]
        rows += _synthetic_rows({"Dunn": {("x#s0", "w9"): (0.9, 1.0)}})
        with pytest.raises(SpecError, match="no unit"):
            build_result("demo", rows)

    def test_duplicate_and_malformed_rows_raise(self):
        rows = _three_policy_rows()
        with pytest.raises(SpecError, match="duplicate"):
            build_result("demo", rows + [rows[0]])
        with pytest.raises(SpecError, match="missing field"):
            build_result("demo", [{"policy": "LFOC"}])
        with pytest.raises(SpecError, match="no rows"):
            build_result("demo", [])
        broken = _three_policy_rows()
        del broken[0]["normalized_stp"]
        with pytest.raises(SpecError, match="usable"):
            build_result("demo", broken)

    def test_verdict_is_deterministic(self):
        a = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=100))
        b = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=100))
        assert [s.as_dict() for s in a.standings] == [s.as_dict() for s in b.standings]
        assert a.head_to_head == b.head_to_head

    def test_markdown_rendering(self):
        result = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=50))
        text = result.render_markdown()
        assert "# Tournament `demo`" in text
        assert "| 1 | LFOC " in text
        assert "Head-to-head" in text
        assert "Degraded" not in text

    def test_report_dict_shape(self):
        result = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=50))
        report = result.to_report_dict()
        assert report["reference"] == "LFOC"
        assert len(report["standings"]) == 3
        assert {h["metric"] for h in report["head_to_head"]} == {PRIMARY_METRIC}
        json.dumps(report)  # must be JSON-ready as-is


class TestResultPersistence:
    def test_save_load_round_trip(self, tmp_path):
        result = build_result(
            "demo", _three_policy_rows(), [{"label": "x", "scenario_id": "y"}],
            stats=StatsSpec(resamples=50), description="round trip",
        )
        path = tmp_path / "verdict.jsonl"
        result.save(path)
        clone = TournamentResult.load(path)
        assert clone.name == result.name
        assert clone.stats == result.stats
        assert clone.reference == result.reference
        assert [s.as_dict() for s in clone.standings] == [
            s.as_dict() for s in result.standings
        ]
        assert clone.head_to_head == result.head_to_head
        assert clone.rows == result.rows
        assert clone.failures == result.failures
        assert (clone.n_units, clone.n_complete_units) == (4, 4)
        assert clone.description == "round trip"

    def test_corrupted_row_crc_is_detected(self, tmp_path):
        result = build_result("demo", _three_policy_rows(), stats=StatsSpec(resamples=50))
        path = tmp_path / "verdict.jsonl"
        result.save(path)
        lines = path.read_text().splitlines()
        index = next(i for i, l in enumerate(lines) if '"record": "row"' in l)
        lines[index] = lines[index].replace("0.8,", "0.9,", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SpecError, match="CRC"):
            TournamentResult.load(path)

    def test_load_rejects_headerless_and_unknown_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "standing", "policy": "x"}\n')
        with pytest.raises(SpecError, match="header"):
            TournamentResult.load(path)
        path.write_text("")
        with pytest.raises(SpecError, match="header"):
            TournamentResult.load(path)
        path.write_text('{"record": "tournament", "name": "t"}\n{"record": "wat"}\n')
        with pytest.raises(SpecError, match="unknown record"):
            TournamentResult.load(path)


# -- gates ----------------------------------------------------------------------


class TestGates:
    def _result(self):
        return build_result(
            "gated", _three_policy_rows(), stats=StatsSpec(resamples=100)
        )

    def test_baseline_round_trip(self, tmp_path):
        result = self._result()
        baseline = baseline_from_result(result)
        assert set(baseline["policies"]) == {"LFOC", "Dunn", BASELINE_LABEL}
        path = tmp_path / "baseline.json"
        write_baseline(result, path)
        assert load_baseline(path) == baseline

    def test_load_baseline_rejects_garbage(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(SpecError, match="JSON"):
            load_baseline(path)
        path.write_text('{"record": "something_else"}')
        with pytest.raises(SpecError, match="not a tournament baseline"):
            load_baseline(path)
        path.write_text('{"record": "tournament_baseline", "policies": {}}')
        with pytest.raises(SpecError, match="pins no policies"):
            load_baseline(path)
        path.write_text(
            '{"record": "tournament_baseline", "policies": {"LFOC": {"n": 4}}}'
        )
        with pytest.raises(SpecError, match="missing"):
            load_baseline(path)

    def test_identical_result_passes(self):
        result = self._result()
        assert check_regression(result, baseline_from_result(result)) == []

    def test_nerf_trips_the_gate(self):
        result = self._result()
        baseline = baseline_from_result(result)
        nerfed = rejudge(result, nerf_rows(result.rows, "LFOC", 1.5))
        violations = check_regression(nerfed, baseline)
        checks = {(v["policy"], v["check"]) for v in violations}
        assert ("LFOC", "unfairness") in checks
        assert ("LFOC", "stp") in checks
        # Only the nerfed policy violates.
        assert {v["policy"] for v in violations} == {"LFOC"}

    def test_margin_absorbs_the_nerf(self):
        result = self._result()
        baseline = baseline_from_result(result)
        nerfed = rejudge(result, nerf_rows(result.rows, "LFOC", 1.5))
        assert check_regression(nerfed, baseline, margin=10.0) == []
        with pytest.raises(SpecError, match="margin"):
            check_regression(nerfed, baseline, margin=-0.1)

    def test_missing_policy_violates(self):
        result = self._result()
        baseline = baseline_from_result(result)
        shrunk = rejudge(
            result, [r for r in result.rows if r["policy"] != "Dunn"]
        )
        violations = check_regression(shrunk, baseline)
        assert any(
            v["policy"] == "Dunn" and v["check"] == "present" for v in violations
        )

    def test_improvement_never_violates(self):
        result = self._result()
        improved_rows = []
        for row in result.rows:
            row = dict(row)
            if row["policy"] == "LFOC":
                row["normalized_unfairness"] *= 0.5
                row["normalized_stp"] *= 1.5
            improved_rows.append(row)
        improved = rejudge(result, improved_rows)
        assert check_regression(improved, baseline_from_result(result)) == []

    def test_nerf_rows_validation(self):
        result = self._result()
        with pytest.raises(SpecError, match="factor"):
            nerf_rows(result.rows, "LFOC", 1.0)
        with pytest.raises(SpecError, match="no rows"):
            nerf_rows(result.rows, "NoSuchPolicy", 2.0)

    def test_rejudge_reproduces_the_verdict(self):
        result = self._result()
        again = rejudge(result)
        assert [s.as_dict() for s in again.standings] == [
            s.as_dict() for s in result.standings
        ]
        assert again.reference == result.reference


# -- runner (end to end, tiny grids) --------------------------------------------


def _tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        policies=("lfoc", "best_static"),
        suites=(SuiteSpec(size=4, seed=3),),
        seeds=2,
        stats=StatsSpec(resamples=50, seed=11),
    )
    defaults.update(overrides)
    return TournamentSpec(**defaults)


class TestRunTournament:
    def test_end_to_end_serial(self):
        spec = _tiny_spec()
        result = run_tournament(spec)
        assert set(result.policies()) == {"LFOC", "Best-Static", BASELINE_LABEL}
        assert result.reference == "LFOC"
        assert result.n_units == result.n_complete_units == 2
        assert result.n_complete_units == spec.n_scenarios()  # 1 workload/cell
        assert len(result.rows) == 3 * 2
        assert result.spec == spec.to_dict()
        # The baseline policy normalises to exactly 1.0 on every unit.
        stock = result.standing(BASELINE_LABEL)
        assert stock.mean_unfairness == 1.0 and stock.mean_stp == 1.0

    def test_mapping_input_is_coerced(self):
        result = run_tournament(_tiny_spec().to_dict())
        assert result.name == "tiny"
        with pytest.raises(SpecError, match="TournamentSpec or mapping"):
            run_tournament(42)

    def test_serial_and_pool_verdicts_are_bit_identical(self, tmp_path):
        spec = _tiny_spec(name="xexec")
        serial = run_tournament(spec)
        pooled = run_tournament(spec, executor="pool", jobs=2)
        assert [s.as_dict() for s in serial.standings] == [
            s.as_dict() for s in pooled.standings
        ]
        assert serial.head_to_head == pooled.head_to_head
        assert serial.rows == pooled.rows
        # And the persisted artifacts match byte for byte.
        a, b = tmp_path / "serial.jsonl", tmp_path / "pool.jsonl"
        serial.save(a)
        pooled.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_judge_study_matches_run_tournament(self):
        from repro.experiments import run_study

        spec = _tiny_spec()
        study = run_study(spec.to_study_spec())
        direct = judge_study(spec, study)
        wrapped = run_tournament(spec)
        assert [s.as_dict() for s in direct.standings] == [
            s.as_dict() for s in wrapped.standings
        ]


# -- CLI ------------------------------------------------------------------------


class TestTournamentCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        dump_tournament_spec(_tiny_spec(name="cli"), path)
        return path

    def test_run_report_gate_cycle(self, tmp_path, spec_path, capsys):
        out = tmp_path / "verdict.jsonl"
        board = tmp_path / "board.md"
        assert main(
            ["tournament", "run", str(spec_path), "--out", str(out),
             "--markdown", str(board)]
        ) == 0
        assert "# Tournament `cli`" in capsys.readouterr().out
        assert out.exists() and board.read_text().startswith("# Tournament")

        assert main(["tournament", "report", str(out)]) == 0
        json_path = tmp_path / "report.json"
        assert main(
            ["tournament", "report", str(out), "--json", str(json_path)]
        ) == 0
        report = json.loads(json_path.read_text())
        assert report["name"] == "cli"
        capsys.readouterr()

        baseline = tmp_path / "baseline.json"
        assert main(
            ["tournament", "gate", str(out), "--baseline", str(baseline),
             "--update"]
        ) == 0
        assert main(
            ["tournament", "gate", str(out), "--baseline", str(baseline)]
        ) == 0
        assert "gate OK" in capsys.readouterr().out

        # A deliberately nerfed policy must fail the gate, loudly.
        assert main(
            ["tournament", "gate", str(out), "--baseline", str(baseline),
             "--nerf", "LFOC", "--nerf-factor", "1.5"]
        ) == 1
        assert "gate FAILED" in capsys.readouterr().out

    def test_run_checkpoint_resume(self, tmp_path, spec_path, capsys):
        checkpoint = tmp_path / "ckpt.jsonl"
        assert main(
            ["tournament", "run", str(spec_path), "--checkpoint", str(checkpoint)]
        ) == 0
        assert checkpoint.exists()
        capsys.readouterr()
        # Resume over a complete checkpoint recomputes nothing and re-judges.
        assert main(
            ["tournament", "run", str(spec_path), "--checkpoint",
             str(checkpoint), "--resume"]
        ) == 0
        assert "# Tournament `cli`" in capsys.readouterr().out

    def test_run_flag_validation(self, spec_path):
        with pytest.raises(SpecError, match="--executor"):
            main(["tournament", "run", str(spec_path), "--workers", "2"])
        with pytest.raises(SpecError, match="--checkpoint"):
            main(["tournament", "run", str(spec_path), "--resume"])
        with pytest.raises(SpecError, match="--fault-tolerance"):
            main(
                ["tournament", "run", str(spec_path),
                 "--fault-tolerance", "{not json"]
            )
