"""Tests for LFOC's clustering algorithm (Algorithm 1), float and kernel paths."""

import numpy as np
import pytest

from repro.core import (
    LfocParams,
    lfoc_clustering,
    lfoc_clustering_kernel,
    table_to_fixed,
)
from repro.errors import ClusteringError


def sensitive_table(sd1=1.6, n=11):
    """Monotone declining slowdown table."""
    return [1.0 + (sd1 - 1.0) * (n - w) / (n - 1) for w in range(1, n + 1)]


NWAYS = 11


class TestAlgorithmStructure:
    def test_no_sensitive_apps_single_cluster(self):
        sol = lfoc_clustering(["st0"], [], ["ls0", "ls1"], NWAYS, {})
        assert sol.n_clusters == 1
        assert sol.clusters[0].ways == NWAYS
        assert sol.covers(["st0", "ls0", "ls1"])

    def test_streaming_confined_to_one_way(self):
        tables = {"cs0": sensitive_table()}
        sol = lfoc_clustering(["st0", "st1"], ["cs0"], [], NWAYS, tables)
        streaming_cluster = sol.cluster_of("st0")
        assert streaming_cluster.ways == 1
        assert "st1" in streaming_cluster
        assert sol.ways_of("cs0") == NWAYS - 1

    def test_two_streaming_ways_for_many_aggressors(self):
        streaming = [f"st{i}" for i in range(7)]  # > max_streaming_way (5)
        tables = {"cs0": sensitive_table()}
        sol = lfoc_clustering(streaming, ["cs0"], [], NWAYS, tables)
        streaming_clusters = [c for c in sol.clusters if c.label == "streaming"]
        assert len(streaming_clusters) == 2
        assert all(c.ways == 1 for c in streaming_clusters)
        assert sum(c.n_apps for c in streaming_clusters) == 7

    def test_streaming_ways_capped_at_two(self):
        streaming = [f"st{i}" for i in range(14)]  # would need 3 ways uncapped
        tables = {"cs0": sensitive_table()}
        sol = lfoc_clustering(streaming, ["cs0"], [], NWAYS, tables)
        streaming_clusters = [c for c in sol.clusters if c.label == "streaming"]
        assert len(streaming_clusters) == 2

    def test_sensitive_apps_get_separate_clusters(self):
        tables = {"cs0": sensitive_table(1.8), "cs1": sensitive_table(1.2)}
        sol = lfoc_clustering([], ["cs0", "cs1"], [], NWAYS, tables)
        assert sol.cluster_of("cs0") != sol.cluster_of("cs1")
        assert sum(c.ways for c in sol.clusters) == NWAYS

    def test_lookahead_gives_more_ways_to_more_sensitive_app(self):
        tables = {"needy": sensitive_table(1.9), "mild": sensitive_table(1.1)}
        sol = lfoc_clustering([], ["needy", "mild"], [], NWAYS, tables)
        assert sol.ways_of("needy") > sol.ways_of("mild")

    def test_light_apps_fill_streaming_clusters_first(self):
        tables = {"cs0": sensitive_table()}
        sol = lfoc_clustering(["st0"], ["cs0"], ["ls0", "ls1"], NWAYS, tables)
        streaming_cluster = sol.cluster_of("st0")
        assert "ls0" in streaming_cluster
        assert "ls1" in streaming_cluster

    def test_light_overflow_goes_round_robin_to_sensitive_clusters(self):
        light = [f"ls{i}" for i in range(20)]
        tables = {"cs0": sensitive_table(), "cs1": sensitive_table(1.3)}
        sol = lfoc_clustering(["st0"], ["cs0", "cs1"], light, NWAYS, tables)
        assert sol.covers(["st0", "cs0", "cs1"] + light)
        sensitive_clusters = [c for c in sol.clusters if c.label == "sensitive"]
        # The overflow is spread, not dumped onto a single cluster.
        assert all(c.n_apps > 1 for c in sensitive_clusters)

    def test_every_app_is_covered(self):
        streaming = ["st0", "st1", "st2"]
        sensitive = ["cs0", "cs1", "cs2"]
        light = ["ls0", "ls1", "ls2", "ls3"]
        tables = {a: sensitive_table(1.2 + 0.1 * i) for i, a in enumerate(sensitive)}
        sol = lfoc_clustering(streaming, sensitive, light, NWAYS, tables)
        assert sol.covers(streaming + sensitive + light)
        assert sum(c.ways for c in sol.clusters) == NWAYS

    def test_more_sensitive_apps_than_ways_handled(self):
        sensitive = [f"cs{i}" for i in range(15)]
        tables = {a: sensitive_table(1.1 + 0.05 * i) for i, a in enumerate(sensitive)}
        sol = lfoc_clustering([], sensitive, [], NWAYS, tables)
        assert sol.covers(sensitive)
        assert sol.n_clusters <= NWAYS

    def test_missing_slowdown_table_rejected(self):
        with pytest.raises(ClusteringError):
            lfoc_clustering([], ["cs0"], [], NWAYS, {})

    def test_short_slowdown_table_rejected(self):
        with pytest.raises(ClusteringError):
            lfoc_clustering([], ["cs0"], [], NWAYS, {"cs0": [1.5, 1.0]})

    def test_overlapping_class_sets_rejected(self):
        tables = {"x": sensitive_table()}
        with pytest.raises(ClusteringError):
            lfoc_clustering(["x"], ["x"], [], NWAYS, tables)

    def test_empty_workload_rejected(self):
        with pytest.raises(ClusteringError):
            lfoc_clustering([], [], [], NWAYS, {})

    def test_invalid_params_rejected(self):
        with pytest.raises(ClusteringError):
            LfocParams(max_streaming_way=0)
        with pytest.raises(ClusteringError):
            LfocParams(max_streaming_ways_total=0)

    def test_custom_streaming_cap(self):
        params = LfocParams(max_streaming_ways_total=1)
        streaming = [f"st{i}" for i in range(8)]
        tables = {"cs0": sensitive_table()}
        sol = lfoc_clustering(streaming, ["cs0"], [], NWAYS, tables, params)
        streaming_clusters = [c for c in sol.clusters if c.label == "streaming"]
        assert len(streaming_clusters) == 1


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_float_and_integer_paths_agree(self, seed):
        rng = np.random.default_rng(seed)
        n_streaming = int(rng.integers(0, 4))
        n_sensitive = int(rng.integers(1, 5))
        n_light = int(rng.integers(0, 6))
        streaming = [f"st{i}" for i in range(n_streaming)]
        sensitive = [f"cs{i}" for i in range(n_sensitive)]
        light = [f"ls{i}" for i in range(n_light)]
        # Integer (per-mille) tables are the ground truth; the float tables are
        # their exact real-valued counterparts, so both paths see the same data.
        tables_int = {}
        tables_float = {}
        for app in sensitive:
            base = sorted(rng.integers(1000, 2200, size=NWAYS), reverse=True)
            base[-1] = 1000
            tables_int[app] = [int(v) for v in base]
            tables_float[app] = [v / 1000.0 for v in base]
        float_solution = lfoc_clustering(streaming, sensitive, light, NWAYS, tables_float)
        kernel_solution = lfoc_clustering_kernel(
            streaming, sensitive, light, NWAYS, tables_int
        )
        float_view = {tuple(sorted(c.apps)): c.ways for c in float_solution.clusters}
        kernel_view = {tuple(sorted(c.apps)): c.ways for c in kernel_solution.clusters}
        assert float_view == kernel_view

    def test_kernel_rejects_float_tables(self):
        with pytest.raises(ClusteringError):
            lfoc_clustering_kernel([], ["cs0"], [], NWAYS, {"cs0": [1.5] * NWAYS})

    def test_kernel_single_cluster_when_no_sensitive(self):
        sol = lfoc_clustering_kernel(["st0"], [], ["ls0"], NWAYS, {})
        assert sol.n_clusters == 1

    def test_kernel_table_conversion_helper(self):
        float_table = sensitive_table()
        fixed = table_to_fixed(float_table)
        sol = lfoc_clustering_kernel([], ["cs0"], [], NWAYS, {"cs0": fixed})
        assert sol.ways_of("cs0") == NWAYS
