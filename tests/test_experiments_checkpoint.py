"""Tests for crash-safe study checkpoints and ``run_study(..., resume=True)``.

The guarantees under test: every completed scenario is durably appended; an
interrupted study resumes without recomputing or duplicating completed
scenario IDs; a torn trailing line (the crash artefact) is tolerated; a
failed scenario leaves the previously completed scenarios' records intact.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError, SpecError
from repro.experiments import (
    PolicySpec,
    ScenarioSpec,
    StudyCheckpoint,
    StudyResult,
    StudySpec,
    WorkloadSpec,
    register_policy,
    run_study,
)
import repro.experiments.study as study_mod


@register_policy("ckpt-tuple-param")
def _tuple_param_policy(ways=(1, 2)):
    """Fixture policy whose params carry a tuple (JSON-normalization test)."""
    from repro.policies import LfocPolicy

    assert isinstance(ways, (tuple, list))
    return LfocPolicy()


def two_scenario_spec(name="ckpt") -> StudySpec:
    return StudySpec(
        name=name,
        scenarios=(
            ScenarioSpec(
                name="first",
                kind="static",
                workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                policies=(PolicySpec("lfoc"),),
            ),
            ScenarioSpec(
                name="second",
                kind="static",
                workloads=(WorkloadSpec(suite="s", names=("S2",)),),
                policies=(PolicySpec("dunn"),),
            ),
        ),
    )


def truncate_after_first_scenario(path) -> None:
    """Simulate a crash: keep the header + scenario 'first' only."""
    kept = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            kept.append(line)
            if record.get("record") == "scenario_end":
                break
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(kept)


class ExplodingPolicy:
    """Static policy that fails deterministically (fault-path fixture)."""

    name = "Exploding"

    def allocate(self, profiles, platform):
        raise SimulationError("boom: allocate refused")


class TestCheckpointWriting:
    def test_checkpoint_file_is_a_loadable_result_store(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        result = run_study(two_scenario_spec(), checkpoint=path)
        reloaded = StudyResult.load(path)
        assert reloaded.scenario_ids() == result.scenario_ids() == ["first", "second"]
        assert reloaded.rows() == result.rows()
        # Every scenario is closed by its durable end marker.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["record"] for r in records if r["record"] == "scenario_end"] == [
            "scenario_end",
            "scenario_end",
        ]

    def test_save_and_checkpoint_formats_are_interchangeable(self, tmp_path):
        saved = tmp_path / "saved.jsonl"
        result = run_study(two_scenario_spec())
        result.save(saved)
        _header, completed = StudyCheckpoint(saved).load_completed()
        assert sorted(completed) == ["first", "second"]
        assert StudyResult.load(saved).rows() == result.rows()

    def test_fresh_run_truncates_stale_checkpoint(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"record": "study", "name": "stale", "spec": null}\n')
        run_study(two_scenario_spec(), checkpoint=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["name"] == "ckpt"  # overwritten, not appended


class TestResume:
    def test_resume_skips_completed_scenarios(self, tmp_path, monkeypatch):
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        full = run_study(spec, checkpoint=path)
        truncate_after_first_scenario(path)

        executed = []
        original = study_mod._run_scenario

        def counting(scenario, seed, executor):
            executed.append(scenario.scenario_id(seed))
            return original(scenario, seed, executor)

        monkeypatch.setattr(study_mod, "_run_scenario", counting)
        resumed = run_study(spec, checkpoint=path, resume=True)
        # Only the missing scenario was recomputed; no IDs were duplicated.
        assert executed == ["second"]
        assert resumed.scenario_ids() == ["first", "second"]
        assert len(set(resumed.scenario_ids())) == len(resumed.scenario_ids())
        assert resumed.rows() == full.rows()
        # The checkpoint now holds the full study again.
        assert StudyResult.load(path).rows() == full.rows()

    def test_resume_tolerates_torn_trailing_line(self, tmp_path, monkeypatch):
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        full = run_study(spec, checkpoint=path)
        truncate_after_first_scenario(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "scenario", "scenario": "sec')  # torn write
        executed = []
        original = study_mod._run_scenario

        def counting(scenario, seed, executor):
            executed.append(scenario.scenario_id(seed))
            return original(scenario, seed, executor)

        monkeypatch.setattr(study_mod, "_run_scenario", counting)
        resumed = run_study(spec, checkpoint=path, resume=True)
        assert executed == ["second"]
        assert resumed.rows() == full.rows()
        # The torn line was truncated before appending: the resumed
        # checkpoint is valid JSONL end to end.
        assert StudyResult.load(path).rows() == full.rows()

    def test_resume_truncates_unfinished_scenario_records(self, tmp_path):
        """Crash after a scenario's records but before its end marker.

        The partial records must be truncated and the scenario recomputed
        exactly once — no duplicate scenario records, no stale partial rows.
        """
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        full = run_study(spec, checkpoint=path)
        # Keep everything up to (and including) scenario 'second''s records
        # but drop its end marker: a crash at a clean line boundary.
        lines = path.read_text().splitlines(keepends=True)
        assert json.loads(lines[-1]) == {
            "record": "scenario_end",
            "scenario_id": "second",
        }
        path.write_text("".join(lines[:-1]))
        resumed = run_study(spec, checkpoint=path, resume=True)
        assert resumed.scenario_ids() == ["first", "second"]
        assert resumed.rows() == full.rows()
        reloaded = StudyResult.load(path)
        assert reloaded.scenario_ids() == ["first", "second"]  # no duplicates
        assert reloaded.rows() == full.rows()  # no stale partial rows

    def test_scenario_without_end_marker_is_recomputed(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        run_study(spec, checkpoint=path)
        # Drop the final end marker: scenario 'second' becomes incomplete.
        lines = path.read_text().splitlines(keepends=True)
        assert json.loads(lines[-1])["record"] == "scenario_end"
        path.write_text("".join(lines[:-1]))
        _header, completed = StudyCheckpoint(path).load_completed()
        assert sorted(completed) == ["first"]

    def test_resume_rejects_changed_scenario_definitions(self, tmp_path):
        """Rows computed under an old spec must never seed a resumed run."""
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(), checkpoint=path)
        changed = two_scenario_spec()
        changed = StudySpec(
            name=changed.name,
            scenarios=(
                changed.scenarios[0],
                ScenarioSpec(
                    name="second",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S3",)),),  # edited
                    policies=(PolicySpec("dunn"),),
                ),
            ),
        )
        with pytest.raises(SpecError, match="scenario definitions"):
            run_study(changed, checkpoint=path, resume=True)

    def test_resume_from_current_save_format_recomputes_nothing(
        self, tmp_path, monkeypatch
    ):
        """A result saved by StudyResult.save seeds a resume directly."""
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        full = run_study(spec)
        full.save(path)
        executed = []
        original = study_mod._run_scenario

        def counting(scenario, seed, executor):
            executed.append(scenario.scenario_id(seed))
            return original(scenario, seed, executor)

        monkeypatch.setattr(study_mod, "_run_scenario", counting)
        resumed = run_study(spec, checkpoint=path, resume=True)
        assert executed == []
        assert resumed.rows() == full.rows()

    def test_resume_refuses_marker_free_legacy_files(self, tmp_path):
        """Pre-checkpoint files fail loudly instead of being truncated away."""
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        run_study(spec).save(path)
        # Strip every scenario_end marker: the pre-checkpoint save format.
        lines = [
            line
            for line in path.read_text().splitlines(keepends=True)
            if json.loads(line).get("record") != "scenario_end"
        ]
        legacy_text = "".join(lines)
        path.write_text(legacy_text)
        with pytest.raises(SpecError, match="predates the checkpoint format"):
            run_study(spec, checkpoint=path, resume=True)
        # Refused means untouched: no data was destroyed.
        assert path.read_text() == legacy_text

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        """A write cut one byte short must not weld two records together."""
        path = tmp_path / "rows.jsonl"
        spec = two_scenario_spec()
        full = run_study(spec, checkpoint=path)
        truncate_after_first_scenario(path)
        # Cut the final newline: the last record is valid JSON but
        # unterminated, exactly what a one-byte-short write leaves behind.
        path.write_text(path.read_text().rstrip("\n"))
        resumed = run_study(spec, checkpoint=path, resume=True)
        assert resumed.rows() == full.rows()
        assert StudyResult.load(path).rows() == full.rows()

    def test_resume_with_nothing_completed_refreshes_the_header(
        self, tmp_path, monkeypatch
    ):
        """Crash before any scenario finished + edited spec: the resumed
        run must record the spec it actually executed, and a further resume
        of it must succeed without recomputation."""
        path = tmp_path / "rows.jsonl"
        original_spec = two_scenario_spec()
        run_study(original_spec, checkpoint=path)
        # Keep only the header: a crash during the very first scenario.
        header_line = path.read_text().splitlines(keepends=True)[0]
        path.write_text(header_line)
        edited = StudySpec(
            name=original_spec.name,
            scenarios=(
                original_spec.scenarios[0],
                ScenarioSpec(
                    name="second",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S3",)),),
                    policies=(PolicySpec("dunn"),),
                ),
            ),
        )
        # Legal: nothing completed yet, so the edited spec may resume...
        first = run_study(edited, checkpoint=path, resume=True)
        # ...and the header now records the edited spec, so resuming the
        # finished checkpoint with the same spec is clean and recomputes
        # nothing.
        executed = []
        original = study_mod._run_scenario

        def counting(scenario, seed, executor):
            executed.append(scenario.scenario_id(seed))
            return original(scenario, seed, executor)

        monkeypatch.setattr(study_mod, "_run_scenario", counting)
        again = run_study(edited, checkpoint=path, resume=True)
        assert executed == []
        assert again.rows() == first.rows()
        assert StudyResult.load(path).spec == edited.to_dict()

    def test_resume_accepts_tuple_valued_params(self, tmp_path, monkeypatch):
        """Tuples JSON-serialize as lists; identical specs must not be
        rejected just because the in-memory side still holds tuples."""
        spec = StudySpec(
            name="tuples",
            scenarios=(
                ScenarioSpec(
                    name="first",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                    policies=(
                        PolicySpec(
                            "ckpt-tuple-param", params={"ways": (3, 4)}, label="T"
                        ),
                    ),
                ),
                ScenarioSpec(
                    name="second",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S2",)),),
                    policies=(PolicySpec("lfoc"),),
                ),
            ),
        )
        path = tmp_path / "rows.jsonl"
        full = run_study(spec, checkpoint=path)
        truncate_after_first_scenario(path)
        executed = []
        original = study_mod._run_scenario

        def counting(scenario, seed, executor):
            executed.append(scenario.scenario_id(seed))
            return original(scenario, seed, executor)

        monkeypatch.setattr(study_mod, "_run_scenario", counting)
        resumed = run_study(spec, checkpoint=path, resume=True)
        assert executed == ["second"]
        assert resumed.rows() == full.rows()

    def test_load_refuses_interrupted_checkpoints(self, tmp_path):
        """An interrupted checkpoint must not silently load partial rows."""
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(), checkpoint=path)
        # Cut the last scenario's end marker: interrupted mid-scenario.
        lines = path.read_text().splitlines(keepends=True)
        assert json.loads(lines[-1])["record"] == "scenario_end"
        path.write_text("".join(lines[:-1]))
        with pytest.raises(SpecError, match="never completed"):
            StudyResult.load(path)
        # Plain save() files (no checkpoint flag) keep their lenient load.
        saved = tmp_path / "saved.jsonl"
        result = run_study(two_scenario_spec())
        result.save(saved)
        assert StudyResult.load(saved).rows() == result.rows()

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(name="original"), checkpoint=path)
        with pytest.raises(SpecError, match="belongs to study"):
            run_study(two_scenario_spec(name="other"), checkpoint=path, resume=True)

    def test_resume_refuses_unverifiable_inline_specs(self, tmp_path):
        """Inline components leave no serialized spec to compare against,
        so completed scenarios could be silently stale — refuse loudly."""

        class InlinePolicy:
            name = "Inline"

            def allocate(self, profiles, platform):
                from repro.policies import LfocPolicy

                return LfocPolicy().allocate(profiles, platform)

        def inline_spec():
            return StudySpec(
                name="inline-resume",
                scenarios=(
                    ScenarioSpec(
                        name="s",
                        kind="static",
                        workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                        policies=(PolicySpec.inline(InlinePolicy(), label="inl"),),
                    ),
                ),
            )

        path = tmp_path / "rows.jsonl"
        run_study(inline_spec(), checkpoint=path)
        with pytest.raises(SpecError, match="inline"):
            run_study(inline_spec(), checkpoint=path, resume=True)

    def test_resume_without_existing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        result = run_study(two_scenario_spec(), checkpoint=path, resume=True)
        assert result.scenario_ids() == ["first", "second"]
        assert StudyResult.load(path).rows() == result.rows()


class TestTruncationFuzz:
    """Crash-at-every-byte fuzz of the checkpoint resume path.

    A crash can cut the file at *any* byte, not just at line boundaries.
    For every possible truncation point of a valid two-scenario checkpoint,
    resuming must (a) report exactly the scenarios whose durable end marker
    survived — never a duplicate, never a dropped completed ID, always a
    prefix of the completion order — and (b) after the repair-and-append
    cycle, produce a checkpoint whose rows equal the uninterrupted study's.

    The per-offset cycle drives the :class:`StudyCheckpoint` API directly
    (``load_completed`` -> ``start(fresh=False)`` -> ``append`` of the
    missing scenarios) so the whole sweep stays fast; a bounded set of
    representative offsets additionally goes through the full
    ``run_study(..., resume=True)`` integration below.
    """

    def _full_checkpoint(self, tmp_path):
        path = tmp_path / "full.jsonl"
        result = run_study(two_scenario_spec(), checkpoint=path)
        data = path.read_bytes()
        header, completed = StudyCheckpoint(path).load_completed()
        assert sorted(completed) == ["first", "second"]
        return result, data, header, completed

    def test_every_byte_truncation_resumes_cleanly(self, tmp_path):
        full, data, header, scenarios = self._full_checkpoint(tmp_path)
        # End-marker byte offsets define which scenarios must survive a cut.
        marker_ends = []
        offset = 0
        for line in data.decode("utf-8").splitlines(keepends=True):
            offset += len(line.encode("utf-8"))
            record = json.loads(line)
            if record.get("record") == "scenario_end":
                marker_ends.append((offset, record["scenario_id"]))
        completion_order = [scenario_id for _, scenario_id in marker_ends]
        assert completion_order == ["first", "second"]

        path = tmp_path / "cut.jsonl"
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            checkpoint = StudyCheckpoint(path)
            recovered_header, completed = checkpoint.load_completed()
            # A marker survives once its JSON content is fully on disk; the
            # trailing newline is optional (the lenient reader parses an
            # unterminated-but-complete final line, and append() repairs the
            # missing newline before writing more records).
            expected = [
                scenario_id for end, scenario_id in marker_ends if cut >= end - 1
            ]
            recovered = list(completed)
            # Never a duplicate, never a dropped completed ID, and always a
            # prefix of the completion order.
            assert recovered == expected, f"cut at byte {cut}"
            # Repair the file and append what a resumed study would rerun.
            checkpoint.start(
                name=header.get("name", "ckpt"),
                description=header.get("description", ""),
                spec=header.get("spec"),
                fresh=False,
            )
            for scenario_id in completion_order:
                if scenario_id not in completed:
                    checkpoint.append(scenarios[scenario_id])
            reloaded = StudyResult.load(path)
            assert reloaded.scenario_ids() == ["first", "second"], f"byte {cut}"
            assert reloaded.rows() == full.rows(), f"byte {cut}"

    def test_representative_truncations_through_run_study(self, tmp_path):
        """Full resume integration at crash points of every flavour."""
        full, data, _header, _scenarios = self._full_checkpoint(tmp_path)
        text = data.decode("utf-8")
        first_line_end = text.index("\n") + 1
        first_marker_end = text.index('"record": "scenario_end"')
        first_marker_end = text.index("\n", first_marker_end) + 1
        offsets = {
            0,  # nothing on disk
            first_line_end - 3,  # torn header
            first_line_end,  # header only
            first_line_end + 17,  # torn first scenario record
            first_marker_end - 2,  # torn first end marker
            first_marker_end,  # exactly one completed scenario
            len(data) - 3,  # torn second end marker
            len(data),  # clean file: nothing to recompute
        }
        spec = two_scenario_spec()
        path = tmp_path / "resume.jsonl"
        for cut in sorted(offsets):
            path.write_bytes(data[:cut])
            resumed = run_study(spec, checkpoint=path, resume=True)
            ids = resumed.scenario_ids()
            assert ids == ["first", "second"], f"cut at byte {cut}"
            assert len(set(ids)) == len(ids), f"cut at byte {cut}"
            assert resumed.rows() == full.rows(), f"cut at byte {cut}"
            assert StudyResult.load(path).rows() == full.rows(), f"cut at byte {cut}"


class TestFaultPaths:
    def test_failed_scenario_keeps_prior_checkpoint_records(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        spec = StudySpec(
            name="faulty",
            scenarios=(
                ScenarioSpec(
                    name="good",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                    policies=(PolicySpec("lfoc"),),
                ),
                ScenarioSpec(
                    name="bad",
                    kind="static",
                    workloads=(WorkloadSpec(suite="s", names=("S2",)),),
                    policies=(PolicySpec.inline(ExplodingPolicy(), label="expl"),),
                ),
            ),
        )
        # The failure names the scenario that died...
        with pytest.raises(SimulationError, match="'bad'"):
            run_study(spec, checkpoint=path)
        # ...and the completed scenario's records survive for a resume.
        _header, completed = StudyCheckpoint(path).load_completed()
        assert sorted(completed) == ["good"]
        rows = completed["good"].rows
        assert rows and all(row["scenario_id"] == "good" for row in rows)


def corrupt_first_row(path) -> int:
    """Flip a row value in place without touching its CRC; returns the line no."""
    lines = path.read_text().splitlines()
    for line_no, line in enumerate(lines, start=1):
        record = json.loads(line)
        if record.get("record") == "row":
            record["stp"] = record.get("stp", 0.0) + 1.0  # silent bit rot
            lines[line_no - 1] = json.dumps(record)
            path.write_text("\n".join(lines) + "\n")
            return line_no
    raise AssertionError("no row record found")


class TestRecordCRC:
    """Per-line checksums: corruption of durably-written rows is detected."""

    def test_rows_and_failures_carry_checksums(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(), checkpoint=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        rows = [r for r in records if r["record"] == "row"]
        assert rows and all(isinstance(r["crc"], int) for r in rows)
        from repro.experiments.checkpoint import record_crc

        for row in rows:
            assert row["crc"] == record_crc(row)

    def test_strict_load_rejects_corrupted_rows(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(), checkpoint=path)
        corrupt_first_row(path)
        with pytest.raises(SpecError, match="CRC"):
            StudyResult.load(path)

    def test_resume_recomputes_from_the_corrupted_scenario(self, tmp_path):
        """Lenient path: warn, drop the damaged scenario, recompute it."""
        path = tmp_path / "rows.jsonl"
        baseline = run_study(two_scenario_spec(), checkpoint=path)
        corrupt_first_row(path)  # first scenario's first row
        checkpoint = StudyCheckpoint(path)
        with pytest.warns(RuntimeWarning, match="CRC"):
            _header, completed = checkpoint.load_completed()
        assert completed == {}  # nothing after the corruption is trusted
        with pytest.warns(RuntimeWarning, match="CRC"):
            resumed = run_study(
                two_scenario_spec(), checkpoint=path, resume=True
            )
        assert resumed.rows() == baseline.rows()
        # The repaired file is clean again.
        assert StudyResult.load(path).rows() == baseline.rows()

    def test_corruption_after_a_good_scenario_keeps_the_good_one(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        run_study(two_scenario_spec(), checkpoint=path)
        lines = path.read_text().splitlines()
        # Corrupt a row of the *second* scenario only.
        for index in range(len(lines) - 1, -1, -1):
            record = json.loads(lines[index])
            if record.get("record") == "row":
                record["stp"] = record.get("stp", 0.0) + 1.0
                lines[index] = json.dumps(record)
                break
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="CRC"):
            _header, completed = StudyCheckpoint(path).load_completed()
        assert sorted(completed) == ["first"]

    def test_crc_stable_across_write_parse_round_trip(self, tmp_path):
        from repro.experiments.checkpoint import record_crc

        record = {
            "record": "row",
            "scenario_id": "s",
            "stp": 7.437500000000001,
            "label": "αβ",
            "ways": [1, 2],
        }
        record["crc"] = record_crc(record)
        parsed = json.loads(json.dumps(record))
        assert parsed.pop("crc") == record_crc(parsed)
