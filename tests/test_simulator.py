"""Tests for the contention estimator (occupancy, bandwidth, evaluation, Whirlpool)."""

import numpy as np
import pytest

from repro.apps import build_profile, light_curves, sensitive_curves, AppProfile
from repro.core import ClusteringSolution, WayAllocation
from repro.errors import SimulationError
from repro.hardware import skylake_gold_6138
from repro.simulator import (
    BandwidthModel,
    ClusteringEstimator,
    EvaluationTables,
    OccupancyModel,
    combined_ipc_curve,
    combined_miss_curve,
    whirlpool_distance,
)


class TestOccupancyModel:
    def test_singleton_cluster_gets_all_its_ways(self, platform, mix8):
        alloc = ClusteringSolution.from_groups(
            [["xalancbmk06"], list(set(mix8) - {"xalancbmk06"})], [4, 7], 11
        ).to_allocation()
        result = OccupancyModel().solve(alloc, mix8)
        assert result.effective_ways["xalancbmk06"] == pytest.approx(4.0, abs=1e-6)

    def test_effective_ways_conserved_per_way(self, platform, mix8):
        alloc = ClusteringSolution.single_cluster(list(mix8), 11).to_allocation()
        result = OccupancyModel().solve(alloc, mix8)
        assert sum(result.effective_ways.values()) == pytest.approx(11.0, rel=2e-3)

    def test_streaming_apps_grab_more_shared_space(self, platform, mix8):
        alloc = ClusteringSolution.single_cluster(list(mix8), 11).to_allocation()
        result = OccupancyModel().solve(alloc, mix8)
        assert result.effective_ways["lbm06"] > result.effective_ways["gamess06"]

    def test_converges(self, platform, mix8):
        alloc = ClusteringSolution.single_cluster(list(mix8), 11).to_allocation()
        result = OccupancyModel().solve(alloc, mix8)
        assert result.converged
        assert result.iterations <= 50

    def test_missing_profile_rejected(self, platform, mix8):
        alloc = WayAllocation(masks={"ghost": 0b1}, total_ways=11)
        with pytest.raises(SimulationError):
            OccupancyModel().solve(alloc, mix8)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            OccupancyModel(max_iterations=0)
        with pytest.raises(SimulationError):
            OccupancyModel(damping=0.0)
        with pytest.raises(SimulationError):
            OccupancyModel(tolerance=-1.0)
        with pytest.raises(SimulationError):
            OccupancyModel(base_pressure=0.0)

    def test_overlapping_masks_supported(self, platform, mix8):
        masks = {name: (1 << 11) - 1 for name in mix8}
        masks["gamess06"] = 0b11
        alloc = WayAllocation(masks=masks, total_ways=11)
        result = OccupancyModel().solve(alloc, mix8)
        assert sum(result.effective_ways.values()) == pytest.approx(11.0, rel=2e-3)


class TestBandwidthModel:
    def test_no_contention_below_peak(self, platform, light_profile):
        model = BandwidthModel()
        result = model.solve({"a": 11.0}, {"a": light_profile}, platform)
        assert not result.saturated
        assert result.slowdown_factors["a"] == 1.0

    def test_saturation_slows_memory_bound_apps_most(self, platform, catalog):
        profiles = {f"lbm{i}": catalog["lbm06"].renamed(f"lbm{i}") for i in range(12)}
        profiles["light"] = catalog["gamess06"].renamed("light")
        model = BandwidthModel()
        result = model.solve({name: 1.0 for name in profiles}, profiles, platform)
        assert result.saturated
        assert result.slowdown_factors["lbm0"] > result.slowdown_factors["light"]

    def test_factor_capped(self, platform, catalog):
        profiles = {f"lbm{i}": catalog["lbm06"].renamed(f"lbm{i}") for i in range(60)}
        model = BandwidthModel(max_factor=2.0)
        result = model.solve({name: 0.5 for name in profiles}, profiles, platform)
        assert max(result.slowdown_factors.values()) <= 2.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthModel(sensitivity=-1.0)
        with pytest.raises(SimulationError):
            BandwidthModel(max_factor=0.5)

    def test_overcommit_property(self, platform, streaming_profile):
        result = BandwidthModel().solve({"a": 1.0}, {"a": streaming_profile}, platform)
        assert result.overcommit == pytest.approx(
            result.total_demand_gbs / platform.peak_bw_gbs
        )


class TestClusteringEstimator:
    def test_unpartitioned_baseline_hurts_sensitive_apps(self, estimator):
        estimate = estimator.evaluate_unpartitioned()
        assert estimate.slowdowns["xalancbmk06"] > estimate.slowdowns["gamess06"]
        assert estimate.unfairness > 1.1

    def test_isolating_aggressors_improves_fairness(self, estimator, mix8):
        shared = estimator.evaluate_unpartitioned()
        streaming = ["lbm06", "libquantum06"]
        others = [name for name in mix8 if name not in streaming]
        clustering = ClusteringSolution.from_groups([streaming, others], [1, 10], 11)
        isolated = estimator.evaluate(clustering)
        assert isolated.unfairness < shared.unfairness

    def test_slowdowns_are_at_least_one(self, estimator, mix8):
        estimate = estimator.evaluate_unpartitioned()
        assert all(value >= 1.0 - 1e-9 for value in estimate.slowdowns.values())

    def test_full_private_cache_means_no_cache_slowdown(self, platform, catalog):
        profiles = {"xalancbmk06": catalog["xalancbmk06"]}
        estimator = ClusteringEstimator(platform, profiles)
        estimate = estimator.evaluate_unpartitioned()
        assert estimate.slowdowns["xalancbmk06"] == pytest.approx(1.0, abs=1e-6)

    def test_more_ways_never_hurt_a_singleton_cluster(self, platform, catalog):
        profiles = {
            "xalancbmk06": catalog["xalancbmk06"],
            "lbm06": catalog["lbm06"],
        }
        estimator = ClusteringEstimator(platform, profiles)
        slow = []
        for ways in (1, 3, 6, 10):
            clustering = ClusteringSolution.from_groups(
                [["xalancbmk06"], ["lbm06"]], [ways, 11 - ways], 11
            )
            slow.append(estimator.evaluate(clustering).slowdowns["xalancbmk06"])
        assert all(b <= a + 1e-9 for a, b in zip(slow, slow[1:]))

    def test_metrics_consistent_with_slowdowns(self, estimator):
        estimate = estimator.evaluate_unpartitioned()
        values = list(estimate.slowdowns.values())
        assert estimate.metrics.unfairness == pytest.approx(max(values) / min(values))
        assert estimate.metrics.stp == pytest.approx(sum(1.0 / v for v in values))

    def test_evaluate_requires_known_profiles(self, estimator):
        clustering = ClusteringSolution.single_cluster(["ghost"], 11)
        with pytest.raises(SimulationError):
            estimator.evaluate(clustering)

    def test_slowdown_tables_match_profiles(self, estimator, mix8):
        tables = estimator.slowdown_tables()
        assert set(tables) == set(mix8)
        assert tables["xalancbmk06"][0] > tables["xalancbmk06"][-1]
        assert tables["xalancbmk06"][-1] == pytest.approx(1.0)

    def test_empty_estimator_rejected(self, platform):
        with pytest.raises(SimulationError):
            ClusteringEstimator(platform, {})

    def test_overlapping_allocation_evaluation(self, estimator, mix8):
        masks = {name: (1 << 11) - 1 for name in mix8}
        masks["xalancbmk06"] = 0b111
        estimate = estimator.evaluate_allocation(
            WayAllocation(masks=masks, total_ways=11)
        )
        assert estimate.slowdowns["xalancbmk06"] >= 1.0


class TestWhirlpool:
    def test_similar_curves_have_small_distance(self, catalog):
        lbm = combined_miss_curve([catalog["lbm06"]], 11)
        lbm17 = combined_miss_curve([catalog["lbm17"]], 11)
        xalanc = combined_miss_curve([catalog["xalancbmk06"]], 11)
        assert whirlpool_distance(lbm, lbm17) < whirlpool_distance(lbm, xalanc)

    def test_combined_miss_curve_decreases_with_ways_for_sensitive(self, catalog):
        curve = combined_miss_curve([catalog["xalancbmk06"], catalog["soplex06"]], 11)
        assert curve[0] > curve[-1]

    def test_combined_ipc_curve_increases_with_ways(self, catalog):
        curve = combined_ipc_curve([catalog["xalancbmk06"], catalog["soplex06"]], 11)
        assert curve[-1] >= curve[0]

    def test_distance_is_symmetric(self, catalog):
        a = combined_miss_curve([catalog["lbm06"]], 11)
        b = combined_miss_curve([catalog["omnetpp06"]], 11)
        assert whirlpool_distance(a, b) == pytest.approx(whirlpool_distance(b, a))

    def test_distance_of_identical_curves_is_zero(self, catalog):
        a = combined_miss_curve([catalog["lbm06"]], 11)
        assert whirlpool_distance(a, a) == pytest.approx(0.0)

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            combined_miss_curve([], 11)

    def test_mismatched_curves_rejected(self):
        with pytest.raises(SimulationError):
            whirlpool_distance([1.0, 2.0], [1.0, 2.0, 3.0])


class TestEvaluationTablesEviction:
    """max_entries bounds the estimate cache without changing any result."""

    def _mix(self, platform, count=4):
        names = ["lbm06", "xalancbmk06", "gamess06", "omnetpp06"][:count]
        return {name: build_profile(name, platform.llc_ways) for name in names}

    def _allocations(self, platform, profiles):
        apps = list(profiles)
        allocations = []
        for split in range(1, len(apps)):
            left = ClusteringSolution.single_cluster(apps[:split], platform.llc_ways // 2)
            masks = dict(left.to_allocation().masks)
            high = ((1 << (platform.llc_ways - platform.llc_ways // 2)) - 1) << (
                platform.llc_ways // 2
            )
            for app in apps[split:]:
                masks[app] = high
            allocations.append(
                WayAllocation(masks=masks, total_ways=platform.llc_ways)
            )
        return allocations

    def test_rejects_non_positive_bound(self):
        platform = skylake_gold_6138()
        with pytest.raises(SimulationError):
            EvaluationTables(platform, max_entries=0)

    def test_cache_never_exceeds_bound(self):
        platform = skylake_gold_6138()
        profiles = self._mix(platform)
        tables = EvaluationTables(platform, max_entries=2)
        for allocation in self._allocations(platform, profiles):
            tables.evaluate(allocation, profiles)
        assert tables.cache_sizes()["estimates"] <= 2

    def test_results_bit_identical_with_and_without_bound(self):
        platform = skylake_gold_6138()
        profiles = self._mix(platform)
        unbounded = EvaluationTables(platform)
        bounded = EvaluationTables(platform, max_entries=1)
        allocations = self._allocations(platform, profiles)
        # Evaluate each twice with the tiny cache: the second pass re-derives
        # evicted entries and must land on the exact same floats.
        for _ in range(2):
            for allocation in allocations:
                reference = unbounded.evaluate(allocation, profiles)
                evicted = bounded.evaluate(allocation, profiles)
                assert evicted.slowdowns == reference.slowdowns
                assert evicted.metrics == reference.metrics

    def test_lru_keeps_recently_used_entries(self):
        platform = skylake_gold_6138()
        profiles = self._mix(platform)
        a, b, c = self._allocations(platform, profiles)
        tables = EvaluationTables(platform, max_entries=2)
        first = tables.evaluate(a, profiles)
        tables.evaluate(b, profiles)
        # Touch `a` so `b` is the LRU victim when `c` arrives.
        assert tables.evaluate(a, profiles) is first
        tables.evaluate(c, profiles)
        assert tables.evaluate(a, profiles) is first  # still cached

    def test_engine_config_wires_the_bound_through(self):
        from repro.runtime import EngineConfig, RuntimeEngine, StockLinuxDriver
        from repro.workloads import workload_by_name

        platform = skylake_gold_6138()
        workload = workload_by_name("P1")
        config = EngineConfig(
            instructions_per_run=2e8,
            min_completions=1,
            record_traces=False,
            max_table_entries=16,
        )
        engine = RuntimeEngine(
            platform,
            workload.phased_profiles(platform.llc_ways),
            StockLinuxDriver(),
            config,
        )
        assert engine.tables is not None and engine.tables.max_entries == 16
        engine.run(workload.name)
        assert engine.tables.cache_sizes()["estimates"] <= 16

    def test_engine_config_rejects_bad_bound(self):
        from repro.runtime import EngineConfig

        with pytest.raises(SimulationError):
            EngineConfig(max_table_entries=0)
