"""Tests for the simulated Cache Allocation Technology."""

import pytest

from repro.errors import ClosExhaustedError, InvalidMaskError
from repro.hardware import (
    CatController,
    contiguous_layout,
    format_mask,
    mask_from_range,
    mask_is_contiguous,
    mask_to_ways,
    mask_ways,
    parse_mask,
    small_test_platform,
    skylake_gold_6138,
)


class TestMaskHelpers:
    def test_mask_from_range_basic(self):
        assert mask_from_range(0, 3) == 0b111
        assert mask_from_range(2, 2) == 0b1100

    def test_mask_from_range_rejects_empty(self):
        with pytest.raises(InvalidMaskError):
            mask_from_range(0, 0)

    def test_mask_from_range_rejects_negative_start(self):
        with pytest.raises(InvalidMaskError):
            mask_from_range(-1, 2)

    def test_mask_ways_counts_bits(self):
        assert mask_ways(0b1011) == 3
        assert mask_ways(0) == 0

    @pytest.mark.parametrize("mask,expected", [(0b111, True), (0b1110, True), (0b1011, False), (0, False), (0b1, True)])
    def test_mask_is_contiguous(self, mask, expected):
        assert mask_is_contiguous(mask) is expected

    def test_mask_to_ways_lists_indices(self):
        assert mask_to_ways(0b1010) == [1, 3]

    def test_format_and_parse_round_trip(self):
        mask = 0b11111111111
        text = format_mask(mask, 11)
        assert parse_mask(text) == mask

    def test_format_mask_width(self):
        assert format_mask(0x7FF, 11) == "7ff"

    def test_parse_mask_invalid(self):
        with pytest.raises(InvalidMaskError):
            parse_mask("not-hex")


class TestContiguousLayout:
    def test_layout_packs_from_way_zero(self):
        masks = contiguous_layout([2, 3, 1], 11)
        assert masks == [0b11, 0b11100, 0b100000]

    def test_layout_rejects_overflow(self):
        with pytest.raises(InvalidMaskError):
            contiguous_layout([6, 6], 11)

    def test_layout_rejects_zero_way_cluster(self):
        with pytest.raises(InvalidMaskError):
            contiguous_layout([0, 4], 11)


class TestCatController:
    def test_default_class_spans_full_cache(self):
        cat = CatController(skylake_gold_6138())
        assert cat.get_class(0).mask == (1 << 11) - 1

    def test_create_class_and_bind(self):
        cat = CatController(skylake_gold_6138())
        cos = cat.create_class(0b11)
        cat.bind_task("task-a", cos.clos_id)
        assert cat.clos_of("task-a") == cos.clos_id
        assert cat.effective_ways("task-a") == 2

    def test_unbound_tasks_use_default_class(self):
        cat = CatController(skylake_gold_6138())
        assert cat.clos_of("stranger") == 0
        assert cat.effective_ways("stranger") == 11

    def test_validate_mask_rejects_non_contiguous(self):
        cat = CatController(skylake_gold_6138())
        with pytest.raises(InvalidMaskError):
            cat.create_class(0b101)

    def test_validate_mask_rejects_too_wide(self):
        cat = CatController(small_test_platform(ways=4))
        with pytest.raises(InvalidMaskError):
            cat.create_class(0b11111)

    def test_validate_mask_respects_min_width(self):
        import dataclasses

        plat = dataclasses.replace(small_test_platform(ways=4), min_mask_bits=2)
        cat = CatController(plat)
        with pytest.raises(InvalidMaskError):
            cat.create_class(0b1)
        cat.create_class(0b11)

    def test_clos_exhaustion(self):
        plat = small_test_platform(ways=4)
        cat = CatController(plat)
        for _ in range(plat.n_clos - 1):
            cat.create_class(0b1)
        with pytest.raises(ClosExhaustedError):
            cat.create_class(0b1)

    def test_remove_class_rebinds_tasks_to_default(self):
        cat = CatController(skylake_gold_6138())
        cos = cat.create_class(0b111)
        cat.bind_task("t", cos.clos_id)
        cat.remove_class(cos.clos_id)
        assert cat.clos_of("t") == 0

    def test_default_class_cannot_be_removed(self):
        cat = CatController(skylake_gold_6138())
        with pytest.raises(InvalidMaskError):
            cat.remove_class(0)

    def test_rebind_moves_task_between_classes(self):
        cat = CatController(skylake_gold_6138())
        a = cat.create_class(0b1)
        b = cat.create_class(0b110)
        cat.bind_task("t", a.clos_id)
        cat.bind_task("t", b.clos_id)
        assert cat.clos_of("t") == b.clos_id
        assert "t" not in cat.get_class(a.clos_id).tasks

    def test_apply_allocation_shares_clos_per_mask(self):
        cat = CatController(skylake_gold_6138())
        allocation = {"a": 0b1, "b": 0b1, "c": 0b1110}
        mapping = cat.apply_allocation(allocation)
        assert mapping["a"] == mapping["b"]
        assert mapping["a"] != mapping["c"]
        assert cat.current_allocation() == allocation

    def test_apply_allocation_resets_previous_state(self):
        cat = CatController(skylake_gold_6138())
        cat.apply_allocation({"a": 0b1, "b": 0b110})
        cat.apply_allocation({"a": 0b11, "b": 0b11})
        assert cat.mask_of("a") == 0b11
        assert cat.mask_of("b") == 0b11

    def test_reset_restores_full_default_mask(self):
        cat = CatController(skylake_gold_6138())
        cat.apply_allocation({"a": 0b1})
        cat.reset()
        assert cat.n_classes == 1
        assert cat.get_class(0).mask == (1 << 11) - 1
