"""Tests for the simulated resctrl filesystem."""

import pytest

from repro.errors import ResctrlError
from repro.hardware import ResctrlFilesystem, skylake_gold_6138, small_test_platform


@pytest.fixture()
def fs():
    return ResctrlFilesystem(skylake_gold_6138())


class TestGroups:
    def test_root_group_exists(self, fs):
        assert "" in fs.groups()

    def test_mkdir_creates_group_with_full_mask(self, fs):
        group = fs.mkdir("grp0")
        assert group.mask == fs.platform.full_mask
        assert "grp0" in fs.groups()

    def test_mkdir_duplicate_rejected(self, fs):
        fs.mkdir("grp0")
        with pytest.raises(ResctrlError):
            fs.mkdir("grp0")

    def test_mkdir_invalid_name_rejected(self, fs):
        with pytest.raises(ResctrlError):
            fs.mkdir("a/b")
        with pytest.raises(ResctrlError):
            fs.mkdir("")

    def test_rmdir_moves_tasks_to_root(self, fs):
        fs.mkdir("grp0")
        fs.add_task("grp0", "1234")
        fs.rmdir("grp0")
        assert "1234" in fs.tasks("")

    def test_rmdir_root_rejected(self, fs):
        with pytest.raises(ResctrlError):
            fs.rmdir("")

    def test_reset_removes_all_groups(self, fs):
        fs.mkdir("grp0")
        fs.mkdir("grp1")
        fs.reset()
        assert fs.groups() == [""]


class TestSchemata:
    def test_root_schemata_covers_whole_cache(self, fs):
        assert fs.read_schemata("") == "L3:0=7ff"

    def test_write_and_read_schemata(self, fs):
        fs.mkdir("grp0")
        fs.write_schemata("grp0", "L3:0=3")
        assert fs.read_schemata("grp0") == "L3:0=003"

    def test_write_schemata_rejects_non_l3(self, fs):
        fs.mkdir("grp0")
        with pytest.raises(ResctrlError):
            fs.write_schemata("grp0", "MB:0=50")

    def test_write_schemata_rejects_malformed(self, fs):
        fs.mkdir("grp0")
        with pytest.raises(ResctrlError):
            fs.write_schemata("grp0", "L3:garbage")

    def test_write_schemata_rejects_missing_cache_id(self, fs):
        fs.mkdir("grp0")
        with pytest.raises(ResctrlError):
            fs.write_schemata("grp0", "L3:1=3")

    def test_unknown_group_rejected(self, fs):
        with pytest.raises(ResctrlError):
            fs.read_schemata("nope")


class TestTasks:
    def test_add_task_and_effective_ways(self, fs):
        fs.mkdir("grp0")
        fs.write_schemata("grp0", "L3:0=7")
        fs.add_task("grp0", "42")
        assert fs.effective_ways("42") == 3
        assert fs.group_of("42") == "grp0"

    def test_info_reflects_platform_limits(self, fs):
        info = fs.info()
        assert info.num_closids == fs.platform.n_clos
        assert info.cbm_mask == "7ff"
        assert info.min_cbm_bits == 1
        assert info.as_dict()["cbm_mask"] == "7ff"

    def test_apply_allocation_builds_groups(self, fs):
        allocation = {"a": 0b1, "b": 0b1, "c": 0b1110}
        fs.apply_allocation(allocation)
        assert fs.effective_ways("a") == 1
        assert fs.effective_ways("b") == 1
        assert fs.effective_ways("c") == 3
        assert fs.group_of("a") == fs.group_of("b")

    def test_apply_allocation_twice_is_idempotent(self, fs):
        fs.apply_allocation({"a": 0b11})
        fs.apply_allocation({"a": 0b111})
        assert fs.effective_ways("a") == 3


class TestSmallPlatform:
    def test_schemata_width_follows_way_count(self):
        fs = ResctrlFilesystem(small_test_platform(ways=4))
        assert fs.read_schemata("") == "L3:0=f"
