"""Round-trip tests for the persisted :class:`EvaluationTables` format.

The warm-start path (``save``/``load``) must restore the token registry, the
occupancy trajectories and the full-estimate cache *bit for bit*: a loaded
table answering an evaluation must return exactly the floats the saving
process computed, and profiles rebuilt from scratch in the loading process
must re-attach to the persisted tokens through their value fingerprints.
"""

from __future__ import annotations

import pytest

from repro.apps import build_profile
from repro.core.types import ClusteringSolution, WayAllocation
from repro.errors import SimulationError
from repro.hardware import small_test_platform
from repro.simulator import BandwidthModel, EvaluationTables, OccupancyModel


def _leaf_floats(estimate):
    """Every float an estimate carries, labelled and in hex (bit-exact)."""
    leaves = []
    for name, mapping in (
        ("slowdown", estimate.slowdowns),
        ("ipc", estimate.ipcs),
        ("eff", estimate.effective_ways),
        ("occ_eff", estimate.occupancy.effective_ways),
        ("occ_pressure", estimate.occupancy.pressures),
        ("bw_demand", estimate.bandwidth.demand_gbs),
        ("bw_factor", estimate.bandwidth.slowdown_factors),
        ("metric_slowdown", estimate.metrics.slowdowns),
    ):
        for app, value in mapping.items():
            leaves.append((name, app, float(value).hex()))
    leaves.append(("bw_total", "", float(estimate.bandwidth.total_demand_gbs).hex()))
    leaves.append(("bw_peak", "", float(estimate.bandwidth.peak_gbs).hex()))
    for metric in ("unfairness", "stp", "antt", "jain"):
        leaves.append((metric, "", float(getattr(estimate.metrics, metric)).hex()))
    leaves.append(("iterations", "", estimate.occupancy.iterations))
    leaves.append(("converged", "", estimate.occupancy.converged))
    leaves.append(("masks", "", tuple(estimate.allocation.masks.items())))
    return leaves


def _workload_allocations(apps, total_ways):
    """Stock, partitioned and Dunn-style overlapping allocations."""
    n = len(apps)
    stock = ClusteringSolution.single_cluster(apps, total_ways).to_allocation()
    ways = [total_ways // n] * n
    for i in range(total_ways - sum(ways)):
        ways[i] += 1
    partitioned = ClusteringSolution.from_partitioning(
        apps, ways, total_ways
    ).to_allocation()
    full = (1 << total_ways) - 1
    overlapping = WayAllocation(
        masks={
            app: full if i % 2 == 0 else (1 << max(total_ways // 2, 1)) - 1
            for i, app in enumerate(apps)
        },
        total_ways=total_ways,
    )
    return [stock, partitioned, overlapping]


@pytest.fixture()
def warmed_tables(platform, mix8):
    tables = EvaluationTables(platform)
    estimates = {}
    for index, allocation in enumerate(
        _workload_allocations(list(mix8), platform.llc_ways)
    ):
        estimates[index] = tables.evaluate(allocation, mix8)
    return tables, estimates


class TestRoundTrip:
    def test_sizes_and_estimates_bit_identical(
        self, warmed_tables, platform, mix8, tmp_path
    ):
        tables, estimates = warmed_tables
        path = str(tmp_path / "tables.repro")
        tables.save(path)
        loaded = EvaluationTables.load(path, platform)
        assert loaded.cache_sizes() == tables.cache_sizes()

        before = loaded.cache_sizes()
        for index, allocation in enumerate(
            _workload_allocations(list(mix8), platform.llc_ways)
        ):
            # Fresh profile objects (as a new process would rebuild them)
            # must hit the persisted tokens and estimates.
            rebuilt = {
                name: build_profile(name, platform.llc_ways) for name in mix8
            }
            estimate = loaded.evaluate(allocation, rebuilt)
            assert _leaf_floats(estimate) == _leaf_floats(estimates[index])
        assert loaded.cache_sizes() == before  # pure cache hits, no growth

    def test_recompute_from_warm_trajectories_matches(
        self, warmed_tables, platform, mix8, tmp_path
    ):
        """With estimates dropped, warm trajectories still reproduce exactly."""
        tables, estimates = warmed_tables
        path = str(tmp_path / "tables.repro")
        tables.save(path)
        loaded = EvaluationTables.load(path, platform)
        loaded._estimates.clear()
        components_before = loaded.cache_sizes()["components"]
        for index, allocation in enumerate(
            _workload_allocations(list(mix8), platform.llc_ways)
        ):
            estimate = loaded.evaluate(allocation, mix8)
            assert _leaf_floats(estimate) == _leaf_floats(estimates[index])
        assert loaded.cache_sizes()["components"] == components_before

    def test_tokens_reattach_by_value(self, warmed_tables, platform, mix8, tmp_path):
        tables, _ = warmed_tables
        path = str(tmp_path / "tables.repro")
        tables.save(path)
        loaded = EvaluationTables.load(path, platform)
        profiles_before = loaded.cache_sizes()["profiles"]
        for name, profile in mix8.items():
            token = loaded.token_for(profile)
            assert tables.token_for(profile) == token
            view = loaded.view_for_token(token)
            assert view.ipc == profile.curves.ipc.tolist()
            assert view.llcmpkc == profile.curves.llcmpkc.tolist()
            assert view.ipc_alone == profile.ipc_alone
        assert loaded.cache_sizes()["profiles"] == profiles_before

    def test_empty_tables_round_trip(self, platform, tmp_path):
        tables = EvaluationTables(platform)
        path = str(tmp_path / "empty.repro")
        tables.save(path)
        loaded = EvaluationTables.load(path, platform)
        assert loaded.cache_sizes() == {
            "estimates": 0,
            "components": 0,
            "profiles": 0,
        }


class TestRejection:
    def test_platform_mismatch(self, warmed_tables, tmp_path):
        tables, _ = warmed_tables
        path = str(tmp_path / "tables.repro")
        tables.save(path)
        other = small_test_platform(ways=4, cores=4)
        with pytest.raises(SimulationError, match="different platform"):
            EvaluationTables.load(path, other)

    def test_model_parameter_mismatch(self, warmed_tables, platform, tmp_path):
        tables, _ = warmed_tables
        path = str(tmp_path / "tables.repro")
        tables.save(path)
        with pytest.raises(SimulationError, match="different platform"):
            EvaluationTables.load(
                path, platform, occupancy_model=OccupancyModel(damping=0.7)
            )
        with pytest.raises(SimulationError, match="different platform"):
            EvaluationTables.load(
                path, platform, bandwidth_model=BandwidthModel(sensitivity=2.0)
            )

    def test_corruption_detected(self, warmed_tables, platform, tmp_path):
        tables, _ = warmed_tables
        path = tmp_path / "tables.repro"
        tables.save(str(path))
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip a payload byte
        corrupt = tmp_path / "corrupt.repro"
        corrupt.write_bytes(bytes(blob))
        with pytest.raises(SimulationError, match="CRC"):
            EvaluationTables.load(str(corrupt), platform)

    def test_truncation_and_bad_magic(self, warmed_tables, platform, tmp_path):
        tables, _ = warmed_tables
        path = tmp_path / "tables.repro"
        tables.save(str(path))
        blob = path.read_bytes()
        truncated = tmp_path / "truncated.repro"
        truncated.write_bytes(blob[: len(blob) - 64])
        with pytest.raises(SimulationError):
            EvaluationTables.load(str(truncated), platform)
        garbage = tmp_path / "garbage.repro"
        garbage.write_bytes(b"NOTATABLE" + blob)
        with pytest.raises(SimulationError, match="magic"):
            EvaluationTables.load(str(garbage), platform)
        with pytest.raises(SimulationError):
            EvaluationTables.load(str(tmp_path / "missing.repro"), platform)
