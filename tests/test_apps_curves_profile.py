"""Tests for the curve archetypes and the AppProfile record."""

import numpy as np
import pytest

from repro.apps import (
    AppProfile,
    CurveSet,
    blend_curves,
    light_curves,
    sensitive_curves,
    streaming_curves,
)
from repro.errors import ProfileError
from repro.hardware import skylake_gold_6138


class TestCurveSet:
    def test_slowdown_is_relative_to_full_cache(self):
        curves = CurveSet(ipc=np.array([0.5, 0.8, 1.0]), llcmpkc=np.zeros(3))
        assert curves.slowdown() == pytest.approx([2.0, 1.25, 1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ProfileError):
            CurveSet(ipc=np.ones(3), llcmpkc=np.ones(4))

    def test_non_positive_ipc_rejected(self):
        with pytest.raises(ProfileError):
            CurveSet(ipc=np.array([1.0, 0.0]), llcmpkc=np.zeros(2))

    def test_negative_miss_rate_rejected(self):
        with pytest.raises(ProfileError):
            CurveSet(ipc=np.ones(2), llcmpkc=np.array([1.0, -1.0]))


class TestArchetypes:
    def test_sensitive_curve_monotone_and_anchored(self):
        curves = sensitive_curves(11, ipc_full=1.0, slowdown_at_1=1.8, knee_ways=2.5, llcmpkc_at_1=20.0)
        slowdown = curves.slowdown()
        assert slowdown[0] == pytest.approx(1.8, rel=1e-6)
        assert slowdown[-1] == pytest.approx(1.0)
        assert np.all(np.diff(slowdown) <= 1e-9)  # non-increasing
        assert np.all(np.diff(curves.llcmpkc) <= 1e-9)

    def test_streaming_curve_is_flat_and_miss_heavy(self):
        curves = streaming_curves(11, ipc_full=0.5, slowdown_at_1=1.02, llcmpkc=30.0)
        assert curves.slowdown().max() <= 1.03
        assert curves.llcmpkc.min() >= 25.0

    def test_light_curve_low_misses(self):
        curves = light_curves(11, ipc_full=1.5, llcmpkc=0.5)
        assert curves.llcmpkc.max() < 1.0
        assert curves.slowdown().max() < 1.02

    def test_light_curve_rejects_streaming_miss_rates(self):
        with pytest.raises(ProfileError):
            light_curves(11, ipc_full=1.0, llcmpkc=15.0)

    def test_sensitive_rejects_slowdown_below_one(self):
        with pytest.raises(ProfileError):
            sensitive_curves(11, ipc_full=1.0, slowdown_at_1=0.9, knee_ways=2.0, llcmpkc_at_1=10.0)

    def test_streaming_rejects_steep_slowdown(self):
        with pytest.raises(ProfileError):
            streaming_curves(11, ipc_full=1.0, slowdown_at_1=1.5)

    def test_blend_interpolates(self):
        a = light_curves(4, ipc_full=2.0, llcmpkc=0.0)
        b = light_curves(4, ipc_full=1.0, llcmpkc=2.0)
        mix = blend_curves(a, b, 0.5)
        assert mix.ipc[-1] == pytest.approx(1.5)
        assert mix.llcmpkc[0] == pytest.approx(1.0)

    def test_blend_rejects_bad_weight(self):
        a = light_curves(4, ipc_full=1.0, llcmpkc=0.1)
        with pytest.raises(ProfileError):
            blend_curves(a, a, 1.5)

    def test_single_way_curves_supported(self):
        curves = streaming_curves(1, ipc_full=0.5, llcmpkc=20.0)
        assert curves.n_ways == 1


class TestAppProfile:
    @pytest.fixture()
    def profile(self):
        return AppProfile(
            name="demo",
            curves=sensitive_curves(11, ipc_full=1.0, slowdown_at_1=1.6, knee_ways=2.5, llcmpkc_at_1=15.0),
        )

    def test_interpolation_matches_table_points(self, profile):
        table = profile.ipc_table()
        for ways in range(1, 12):
            assert profile.ipc_at(ways) == pytest.approx(table[ways - 1])

    def test_interpolation_clamps_to_range(self, profile):
        assert profile.ipc_at(0.5) == pytest.approx(profile.ipc_at(1.0))
        assert profile.ipc_at(50) == pytest.approx(profile.ipc_at(11))

    def test_interpolation_is_monotone(self, profile):
        values = [profile.ipc_at(w) for w in np.linspace(1, 11, 41)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_slowdown_at_full_cache_is_one(self, profile):
        assert profile.slowdown_at(11) == pytest.approx(1.0)

    def test_mpki_consistent_with_llcmpkc_and_ipc(self, profile):
        ways = 3
        expected = profile.llcmpkc_at(ways) / profile.ipc_at(ways)
        assert profile.mpki_at(ways) == pytest.approx(expected)

    def test_stall_fraction_bounded(self, profile):
        plat = skylake_gold_6138()
        for ways in (1, 3, 11):
            assert 0.0 <= profile.stall_fraction_at(ways, plat) <= 0.95

    def test_stall_fraction_decreases_with_more_ways(self, profile):
        plat = skylake_gold_6138()
        assert profile.stall_fraction_at(1, plat) > profile.stall_fraction_at(11, plat)

    def test_bandwidth_scales_with_miss_rate(self, profile):
        plat = skylake_gold_6138()
        assert profile.bandwidth_gbs_at(1, plat) > profile.bandwidth_gbs_at(11, plat)

    def test_resampled_preserves_full_cache_ipc(self, profile):
        other = profile.resampled(20)
        assert other.n_ways == 20
        assert other.ipc_alone == pytest.approx(profile.ipc_alone)

    def test_resampled_same_size_returns_self(self, profile):
        assert profile.resampled(11) is profile

    def test_scaled_ipc_keeps_slowdown_table(self, profile):
        scaled = profile.scaled_ipc(2.0)
        assert scaled.ipc_alone == pytest.approx(2.0 * profile.ipc_alone)
        assert scaled.slowdown_table() == pytest.approx(profile.slowdown_table())

    def test_renamed_keeps_curves(self, profile):
        other = profile.renamed("other")
        assert other.name == "other"
        assert other.ipc_table() == pytest.approx(profile.ipc_table())

    def test_zero_ways_rejected(self, profile):
        with pytest.raises(ProfileError):
            profile.ipc_at(0)

    def test_describe_reports_key_stats(self, profile):
        info = profile.describe()
        assert info["n_ways"] == 11
        assert info["max_slowdown"] == pytest.approx(1.6, rel=1e-6)

    def test_invalid_bytes_per_miss_rejected(self):
        with pytest.raises(ProfileError):
            AppProfile(name="x", curves=light_curves(4, ipc_full=1.0, llcmpkc=0.1), bytes_per_miss=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ProfileError):
            AppProfile(name="", curves=light_curves(4, ipc_full=1.0, llcmpkc=0.1))
