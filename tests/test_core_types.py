"""Tests for clustering data structures (Section 2.2 feasibility rules)."""

import pytest

from repro.core import ClusterSpec, ClusteringSolution, WayAllocation
from repro.errors import ClusteringError


class TestClusterSpec:
    def test_basic_cluster(self):
        cluster = ClusterSpec(apps=("a", "b"), ways=3)
        assert cluster.n_apps == 2
        assert "a" in cluster and "c" not in cluster

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterSpec(apps=(), ways=1)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterSpec(apps=("a", "a"), ways=1)

    def test_zero_ways_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterSpec(apps=("a",), ways=0)


class TestClusteringSolution:
    def test_single_cluster_constructor(self):
        sol = ClusteringSolution.single_cluster(["a", "b", "c"], 11)
        assert sol.n_clusters == 1
        assert sol.clusters[0].ways == 11
        assert sol.covers(["a", "b", "c"])

    def test_from_partitioning(self):
        sol = ClusteringSolution.from_partitioning(["a", "b"], [4, 7], 11)
        assert sol.is_partitioning()
        assert sol.ways_of("a") == 4
        assert sol.ways_of("b") == 7

    def test_from_groups_with_labels(self):
        sol = ClusteringSolution.from_groups(
            [["a", "b"], ["c"]], [1, 10], 11, labels=["streaming", "sensitive"]
        )
        assert sol.clusters[0].label == "streaming"
        assert not sol.is_partitioning()

    def test_way_sum_must_match_total(self):
        with pytest.raises(ClusteringError):
            ClusteringSolution.from_partitioning(["a", "b"], [4, 4], 11)

    def test_disjointness_enforced(self):
        with pytest.raises(ClusteringError):
            ClusteringSolution.from_groups([["a"], ["a"]], [5, 6], 11)

    def test_more_clusters_than_ways_rejected(self):
        with pytest.raises(ClusteringError):
            ClusteringSolution.from_groups([["a"], ["b"], ["c"]], [1, 1, 0], 2)

    def test_cluster_of_unknown_app_rejected(self):
        sol = ClusteringSolution.single_cluster(["a"], 4)
        with pytest.raises(ClusteringError):
            sol.cluster_of("b")

    def test_apps_preserves_cluster_order(self):
        sol = ClusteringSolution.from_groups([["b"], ["a", "c"]], [2, 9], 11)
        assert sol.apps() == ["b", "a", "c"]
        assert sol.n_apps == 3

    def test_to_allocation_packs_contiguously(self):
        sol = ClusteringSolution.from_groups([["a"], ["b", "c"]], [2, 9], 11)
        allocation = sol.to_allocation()
        assert allocation.mask_of("a") == 0b11
        assert allocation.mask_of("b") == allocation.mask_of("c") == (0b111111111 << 2)
        assert not allocation.is_overlapping()

    def test_cluster_sizes(self):
        sol = ClusteringSolution.from_groups([["a"], ["b"]], [5, 6], 11)
        assert sol.cluster_sizes() == [5, 6]

    def test_describe_mentions_every_cluster(self):
        sol = ClusteringSolution.from_groups([["a"], ["b"]], [5, 6], 11)
        text = sol.describe()
        assert "a" in text and "b" in text
        assert "5 way(s)" in text


class TestWayAllocation:
    def test_ways_of_counts_mask_bits(self):
        alloc = WayAllocation(masks={"a": 0b111, "b": 0b1000}, total_ways=4)
        assert alloc.ways_of("a") == 3
        assert alloc.ways_of("b") == 1
        assert alloc.n_apps == 2

    def test_overlap_detection(self):
        disjoint = WayAllocation(masks={"a": 0b0011, "b": 0b1100}, total_ways=4)
        overlapping = WayAllocation(masks={"a": 0b0011, "b": 0b0110}, total_ways=4)
        assert not disjoint.is_overlapping()
        assert overlapping.is_overlapping()

    def test_shared_identical_masks_are_not_overlap(self):
        alloc = WayAllocation(masks={"a": 0b11, "b": 0b11}, total_ways=4)
        assert not alloc.is_overlapping()

    def test_sharers_of_way(self):
        alloc = WayAllocation(masks={"a": 0b0011, "b": 0b0110}, total_ways=4)
        assert sorted(alloc.sharers_of_way(1)) == ["a", "b"]
        assert alloc.sharers_of_way(3) == []

    def test_empty_mask_rejected(self):
        with pytest.raises(ClusteringError):
            WayAllocation(masks={"a": 0}, total_ways=4)

    def test_mask_beyond_llc_rejected(self):
        with pytest.raises(ClusteringError):
            WayAllocation(masks={"a": 0b10000}, total_ways=4)

    def test_unknown_app_rejected(self):
        alloc = WayAllocation(masks={"a": 0b1}, total_ways=4)
        with pytest.raises(ClusteringError):
            alloc.mask_of("b")
