"""Tests for phased profiles, the benchmark catalogue and synthetic generators."""

import numpy as np
import pytest

from repro.apps import (
    PhasedProfile,
    PhaseSegment,
    benchmark_names,
    benchmark_spec,
    benchmarks_by_class,
    build_catalog,
    build_phased_profile,
    build_profile,
    expected_class,
    random_phased_profile,
    random_profile,
    random_workload_profiles,
)
from repro.core import AppClass, classify_profile
from repro.errors import ProfileError


class TestPhasedProfile:
    @pytest.fixture()
    def phased(self):
        return build_phased_profile("fotonik3d17", 11, phase_cycle_instructions=1e9)

    def test_single_wraps_stationary_profile(self):
        profile = build_profile("gamess06", 11)
        phased = PhasedProfile.single(profile)
        assert phased.n_phases == 1
        assert not phased.is_phased

    def test_phase_lookup_is_cyclic(self, phased):
        cycle = phased.cycle_instructions
        assert phased.phase_index_at(0.0) == phased.phase_index_at(cycle)
        assert phased.phase_index_at(cycle * 0.95) == phased.phase_index_at(cycle * 1.95)

    def test_fotonik_starts_light_then_streams(self, phased):
        early = phased.profile_at(0.0)
        late = phased.profile_at(phased.cycle_instructions * 0.5)
        assert early.llcmpkc_at(11) < 10.0
        assert late.llcmpkc_at(11) >= 10.0

    def test_instructions_until_phase_change_positive(self, phased):
        position = 0.0
        for _ in range(5):
            step = phased.instructions_until_phase_change(position)
            assert step > 0
            position += step

    def test_phase_boundaries_sum_to_cycle(self, phased):
        assert phased.phase_boundaries()[-1] == pytest.approx(phased.cycle_instructions)

    def test_dominant_profile_is_streaming_for_fotonik(self, phased):
        assert classify_profile(phased.dominant_profile()) is AppClass.STREAMING

    def test_average_profile_uses_harmonic_ipc(self):
        fast = build_profile("gamess06", 4)
        slow = fast.scaled_ipc(0.5)
        phased = PhasedProfile(
            name="mix",
            segments=(
                PhaseSegment(instructions=1e9, profile=fast),
                PhaseSegment(instructions=1e9, profile=slow),
            ),
        )
        average = phased.average_profile()
        expected = 2.0 / (1.0 / fast.ipc_alone + 1.0 / slow.ipc_alone)
        assert average.ipc_alone == pytest.approx(expected)

    def test_mismatched_way_counts_rejected(self):
        a = build_profile("gamess06", 4)
        b = build_profile("gamess06", 8)
        with pytest.raises(ProfileError):
            PhasedProfile(
                name="bad",
                segments=(
                    PhaseSegment(instructions=1e9, profile=a),
                    PhaseSegment(instructions=1e9, profile=b),
                ),
            )

    def test_zero_length_phase_rejected(self):
        profile = build_profile("gamess06", 4)
        with pytest.raises(ProfileError):
            PhaseSegment(instructions=0.0, profile=profile)

    def test_renamed_propagates_to_segments(self, phased):
        other = phased.renamed("copy")
        assert other.name == "copy"
        assert all(seg.profile.name == "copy" for seg in other.segments)


class TestCatalog:
    def test_catalogue_has_the_34_fig5_benchmarks(self):
        assert len(benchmark_names()) == 34

    def test_expected_fig1_benchmarks_present(self):
        names = benchmark_names()
        for required in ("lbm06", "xalancbmk06", "fotonik3d17", "mcf06", "gamess06"):
            assert required in names

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProfileError):
            benchmark_spec("doom-eternal")

    def test_build_catalog_covers_every_benchmark(self):
        catalog = build_catalog(11)
        assert set(catalog) == set(benchmark_names())

    @pytest.mark.parametrize("name", benchmark_names())
    def test_table1_classification_matches_intended_class(self, name):
        profile = build_profile(name, 11)
        assert classify_profile(profile).value == expected_class(name)

    def test_classes_are_all_represented(self):
        groups = benchmarks_by_class()
        assert len(groups["streaming"]) >= 5
        assert len(groups["sensitive"]) >= 8
        assert len(groups["light"]) >= 10

    def test_fig1_shapes_lbm_vs_xalancbmk(self):
        lbm = build_profile("lbm06", 11)
        xalanc = build_profile("xalancbmk06", 11)
        # Fig. 1: lbm is flat with a huge miss rate; xalancbmk climbs to ~1.8x.
        assert lbm.slowdown_table().max() < 1.06
        assert lbm.llcmpkc_table().min() > 10
        assert xalanc.slowdown_table()[0] > 1.5
        assert xalanc.llcmpkc_table()[-1] < 5

    def test_phased_benchmarks_have_multiple_segments(self):
        for name in ("fotonik3d17", "xz17", "astar06", "mcf06", "xalancbmk06"):
            assert build_phased_profile(name, 11).is_phased

    def test_stationary_benchmarks_have_one_segment(self):
        assert not build_phased_profile("gamess06", 11).is_phased

    def test_profiles_scale_to_other_way_counts(self):
        profile = build_profile("xalancbmk06", 20)
        assert profile.n_ways == 20


class TestSynthetic:
    def test_random_profiles_classify_as_requested(self):
        rng = np.random.default_rng(0)
        for klass in ("sensitive", "streaming", "light"):
            for _ in range(5):
                profile = random_profile(11, klass, rng=rng)
                assert classify_profile(profile).value == klass

    def test_random_workload_respects_size(self):
        profiles = random_workload_profiles(10, 11, rng=3)
        assert len(profiles) == 10
        assert len({p.name for p in profiles}) == 10

    def test_random_workload_rejects_bad_mix(self):
        with pytest.raises(ProfileError):
            random_workload_profiles(4, 11, class_mix={"light": -1.0})

    def test_random_phased_profile_structure(self):
        phased = random_phased_profile(11, rng=7, n_phases=3)
        assert phased.n_phases == 3
        assert phased.cycle_instructions > 0

    def test_unknown_class_rejected(self):
        with pytest.raises(ProfileError):
            random_profile(11, "quantum")

    def test_determinism_with_same_seed(self):
        a = random_profile(11, "sensitive", rng=42)
        b = random_profile(11, "sensitive", rng=42)
        assert a.ipc_table() == pytest.approx(b.ipc_table())
