"""Property-based tests (hypothesis) for the core data structures and algorithms."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ClusteringSolution,
    WayAllocation,
    classify_tables,
    lookahead,
    lookahead_int,
    slowdown_table_fixed,
    to_fixed,
    from_fixed,
    fixed_ratio,
)
from repro.core.types import ClusterSpec
from repro.errors import ClusteringError
from repro.hardware.cat import contiguous_layout, mask_is_contiguous, mask_ways
from repro.metrics import compute_metrics, jain_index, stp, unfairness
from repro.optimal import count_way_compositions, set_partitions, way_compositions
from repro.simulator import OccupancyModel
from repro.apps import AppProfile, CurveSet


SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -- lookahead ------------------------------------------------------------------


@st.composite
def cost_tables(draw):
    n_apps = draw(st.integers(min_value=1, max_value=5))
    n_ways = draw(st.integers(min_value=n_apps, max_value=12))
    tables = []
    for _ in range(n_apps):
        values = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=n_ways,
                max_size=n_ways,
            )
        )
        tables.append(sorted(values, reverse=True))
    return tables, n_ways


@SETTINGS
@given(cost_tables())
def test_lookahead_allocates_exactly_all_ways(data):
    tables, n_ways = data
    allocation = lookahead(tables, n_ways)
    assert sum(allocation) == n_ways
    assert all(w >= 1 for w in allocation)
    assert len(allocation) == len(tables)


@SETTINGS
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=5000), min_size=11, max_size=11),
        min_size=1,
        max_size=4,
    )
)
def test_lookahead_int_allocates_exactly_all_ways(raw_tables):
    tables = [sorted(t, reverse=True) for t in raw_tables]
    allocation = lookahead_int(tables, 11)
    assert sum(allocation) == 11
    assert all(w >= 1 for w in allocation)


# -- fixed point -----------------------------------------------------------------


@SETTINGS
@given(st.floats(min_value=0.001, max_value=1000.0, allow_nan=False))
def test_fixed_point_round_trip_error_is_bounded(value):
    assert abs(from_fixed(to_fixed(value)) - value) <= 0.0005 + 1e-12


@SETTINGS
@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
def test_fixed_ratio_close_to_true_ratio(num, den):
    assert abs(from_fixed(fixed_ratio(num, den)) - num / den) <= 0.0005 + 1e-12


@SETTINGS
@given(st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=11))
def test_slowdown_table_fixed_last_entry_is_unity(ipc_values):
    table = slowdown_table_fixed(ipc_values)
    assert table[-1] == 1000  # slowdown of the reference allocation is 1.0


# -- metrics -----------------------------------------------------------------------


@SETTINGS
@given(st.lists(st.floats(min_value=1.0, max_value=10.0, allow_nan=False), min_size=1, max_size=16))
def test_metric_invariants(slowdowns):
    assert unfairness(slowdowns) >= 1.0
    assert 0.0 < stp(slowdowns) <= len(slowdowns) + 1e-9
    assert 0.0 < jain_index(slowdowns) <= 1.0 + 1e-12
    metrics = compute_metrics({f"a{i}": s for i, s in enumerate(slowdowns)})
    assert metrics.max_slowdown >= metrics.min_slowdown


# -- clustering structures ------------------------------------------------------------


@st.composite
def clusterings(draw):
    n_ways = draw(st.integers(min_value=2, max_value=12))
    n_clusters = draw(st.integers(min_value=1, max_value=min(n_ways, 5)))
    apps = [f"app{i}" for i in range(draw(st.integers(min_value=n_clusters, max_value=10)))]
    # Assign every app to a cluster; make sure no cluster is empty.
    assignment = {app: i % n_clusters for i, app in enumerate(apps)}
    groups = [[a for a in apps if assignment[a] == c] for c in range(n_clusters)]
    ways = [1] * n_clusters
    remaining = n_ways - n_clusters
    for _ in range(remaining):
        ways[draw(st.integers(min_value=0, max_value=n_clusters - 1))] += 1
    return groups, ways, n_ways


@SETTINGS
@given(clusterings())
def test_clustering_solution_invariants(data):
    groups, ways, n_ways = data
    solution = ClusteringSolution.from_groups(groups, ways, n_ways)
    # Feasibility rules of Section 2.2.
    assert sum(c.ways for c in solution.clusters) == n_ways
    assert solution.n_clusters <= min(solution.n_apps, n_ways)
    allocation = solution.to_allocation()
    # Masks of a clustering are contiguous and non-overlapping across clusters.
    assert not allocation.is_overlapping()
    for app in solution.apps():
        mask = allocation.mask_of(app)
        assert mask_is_contiguous(mask)
        assert mask_ways(mask) == solution.ways_of(app)


@SETTINGS
@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=6))
def test_contiguous_layout_covers_without_overlap(way_counts):
    total = sum(way_counts)
    masks = contiguous_layout(way_counts, total)
    union = 0
    for mask in masks:
        assert mask_is_contiguous(mask)
        assert union & mask == 0
        union |= mask
    assert union == (1 << total) - 1


# -- enumeration -----------------------------------------------------------------------


@SETTINGS
@given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=5))
def test_way_composition_count_matches_formula(total, parts):
    if parts > total:
        return
    assert len(list(way_compositions(total, parts))) == count_way_compositions(total, parts)


@SETTINGS
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_set_partitions_are_valid_partitions(n_items, max_parts):
    items = [f"x{i}" for i in range(n_items)]
    seen = set()
    for partition in set_partitions(items, max_parts):
        assert 1 <= len(partition) <= max_parts
        flattened = sorted(x for group in partition for x in group)
        assert flattened == sorted(items)
        key = frozenset(frozenset(g) for g in partition)
        assert key not in seen
        seen.add(key)


# -- classification ----------------------------------------------------------------------


@SETTINGS
@given(
    st.lists(st.floats(min_value=1.0, max_value=3.0, allow_nan=False), min_size=2, max_size=12),
    st.lists(st.floats(min_value=0.0, max_value=60.0, allow_nan=False), min_size=2, max_size=12),
)
def test_classification_is_total(slowdown, llcmpkc):
    n = min(len(slowdown), len(llcmpkc))
    result = classify_tables(sorted(slowdown[:n], reverse=True), llcmpkc[:n])
    assert result.value in {"streaming", "sensitive", "light"}


# -- occupancy conservation ---------------------------------------------------------------


@SETTINGS
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_occupancy_conserves_cache_space(n_apps, seed):
    rng = np.random.default_rng(seed)
    n_ways = 8
    profiles = {}
    for i in range(n_apps):
        ipc = np.sort(rng.uniform(0.3, 2.0, size=n_ways))
        mpkc = np.sort(rng.uniform(0.0, 40.0, size=n_ways))[::-1]
        profiles[f"a{i}"] = AppProfile(name=f"a{i}", curves=CurveSet(ipc=ipc, llcmpkc=mpkc))
    allocation = WayAllocation(
        masks={name: (1 << n_ways) - 1 for name in profiles}, total_ways=n_ways
    )
    result = OccupancyModel().solve(allocation, profiles)
    assert sum(result.effective_ways.values()) == pytest.approx(n_ways, rel=2e-3)
    assert all(v > 0 for v in result.effective_ways.values())
