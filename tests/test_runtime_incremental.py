"""Bit-identity of the incremental evaluation layer and engine backend.

The ``incremental`` paths (FastProfileView, the occupancy trajectory cache,
EvaluationTables, the vectorized runtime-engine loop, the BatchRunner) must
reproduce the ``reference`` implementations *exactly* — same floats, same
iteration counts, same traces — not merely approximately.  Every assertion
in this module therefore uses strict equality.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps.catalog import build_catalog
from repro.apps.profile import FastProfileView
from repro.core.types import WayAllocation
from repro.errors import SimulationError
from repro.hardware import skylake_gold_6138
from repro.hardware.cat import mask_from_range
from repro.runtime import (
    BatchRunner,
    DunnUserLevelDaemon,
    EngineConfig,
    LfocSchedulerPlugin,
    MonitorConfig,
    RunSpec,
    RuntimeEngine,
    StockLinuxDriver,
)
from repro.simulator import (
    ClusteringEstimator,
    EvaluationTables,
    OccupancyModel,
    OccupancyTrajectoryCache,
    ProfileSnapshot,
)
from repro.workloads import Workload


QUICK_MONITOR = MonitorConfig(warmup_samples=2, history_window=3)

FAST = EngineConfig(
    instructions_per_run=8.0e8,
    min_completions=2,
    partition_interval_s=0.05,
    record_traces=True,
    max_simulated_seconds=120.0,
)


@pytest.fixture(scope="module")
def platform():
    return skylake_gold_6138()


@pytest.fixture(scope="module")
def phased_workload():
    # mcf06 and xalancbmk06 carry real phase sequences, lbm06 streams,
    # gamess06 is light: phase boundaries, sampling sweeps and repartitions
    # all occur within the FAST budget.
    return Workload("inc-mix", ("mcf06", "xalancbmk06", "lbm06", "gamess06"))


def _random_allocation(rng, apps, llc_ways):
    masks = {}
    for app in apps:
        start = int(rng.integers(0, llc_ways))
        width = int(rng.integers(1, llc_ways - start + 1))
        masks[app] = mask_from_range(start, width)
    return WayAllocation(masks=masks, total_ways=llc_ways)


def run_result_fields(result):
    """Everything a RunResult records, as an exactly-comparable structure."""
    return {
        "policy": result.policy,
        "workload": result.workload,
        "duration": result.duration_s,
        "stats": {
            name: (
                stats.completion_times,
                stats.alone_time,
                stats.instructions_retired,
                stats.samples_taken,
                stats.sampling_mode_entries,
                stats.class_changes,
            )
            for name, stats in result.app_stats.items()
        },
        "traces": result.traces,
        "repartitions": [
            (event.time_s, event.reason, event.masks) for event in result.repartitions
        ],
        "final_masks": dict(result.final_allocation.masks),
    }


class TestFastProfileView:
    def test_bitwise_equal_to_profile_accessors(self, platform):
        rng = np.random.default_rng(5)
        catalog = build_catalog(platform.llc_ways)
        for profile in list(catalog.values())[:8]:
            view = FastProfileView(profile)
            points = np.concatenate(
                [
                    rng.random(200) * (profile.n_ways + 2),
                    np.arange(1, profile.n_ways + 1, dtype=float),
                ]
            )
            for x in points:
                x = float(max(x, 1e-3))
                assert view.ipc_at(x) == profile.ipc_at(x)
                assert view.llcmpkc_at(x) == profile.llcmpkc_at(x)
                assert view.stall_fraction_at(x, platform) == profile.stall_fraction_at(
                    x, platform
                )
                assert view.bandwidth_gbs_at(x, platform) == profile.bandwidth_gbs_at(
                    x, platform
                )

    def test_rejects_non_positive_ways(self, platform):
        profile = next(iter(build_catalog(platform.llc_ways).values()))
        from repro.errors import ProfileError

        with pytest.raises(ProfileError):
            FastProfileView(profile).llcmpkc_at(0.0)


class TestShortMean:
    def test_bitwise_equal_to_np_mean(self):
        from repro.metrics.aggregate import short_mean

        rng = np.random.default_rng(7)
        for n in list(range(1, 12)) + [20]:
            for _ in range(50):
                values = [
                    float(v) for v in rng.random(n) * rng.choice([1e-3, 1.0, 1e3])
                ]
                assert short_mean(values) == float(np.mean(values))

    def test_empty_rejected(self):
        from repro.errors import ReproError
        from repro.metrics.aggregate import short_mean

        with pytest.raises(ReproError):
            short_mean([])


class TestTrajectoryCacheEquivalence:
    def test_matches_reference_occupancy_solve(self, platform):
        rng = np.random.default_rng(11)
        workload = Workload("occ-mix", ("lbm06", "xalancbmk06", "soplex06", "gamess06"))
        profiles = workload.profiles(platform.llc_ways)
        model = OccupancyModel()
        cache = OccupancyTrajectoryCache(model)
        tables = EvaluationTables(platform, occupancy_model=model)
        for _ in range(30):
            allocation = _random_allocation(rng, list(profiles), platform.llc_ways)
            tokens = {a: tables.token_for(profiles[a]) for a in profiles}
            views = {a: tables.view_for(profiles[a]) for a in profiles}
            reference = model.solve(allocation, profiles)
            cached = cache.solve(allocation, tokens, views)
            assert cached.effective_ways == reference.effective_ways
            assert cached.pressures == reference.pressures
            assert cached.iterations == reference.iterations
            assert cached.converged == reference.converged

    def test_trajectories_are_reused(self, platform):
        workload = Workload("occ-mix2", ("lbm06", "xalancbmk06"))
        profiles = workload.profiles(platform.llc_ways)
        model = OccupancyModel()
        cache = OccupancyTrajectoryCache(model)
        tables = EvaluationTables(platform, occupancy_model=model)
        tokens = {a: tables.token_for(profiles[a]) for a in profiles}
        views = {a: tables.view_for(profiles[a]) for a in profiles}
        shared = WayAllocation(
            masks={a: platform.full_mask for a in profiles},
            total_ways=platform.llc_ways,
        )
        cache.solve(shared, tokens, views)
        first = len(cache)
        # The same cluster at a different position reuses the trajectory.
        low = WayAllocation(
            masks={a: mask_from_range(0, 4) for a in profiles},
            total_ways=platform.llc_ways,
        )
        high = WayAllocation(
            masks={a: mask_from_range(7, 4) for a in profiles},
            total_ways=platform.llc_ways,
        )
        cache.solve(low, tokens, views)
        grown = len(cache)
        cache.solve(high, tokens, views)
        assert grown > first
        assert len(cache) == grown  # shifted cluster hit the cached trajectory


class TestEstimatorBackends:
    def test_incremental_estimates_bit_identical(self, platform):
        rng = np.random.default_rng(23)
        workload = Workload(
            "est-mix", ("lbm06", "xalancbmk06", "soplex06", "gamess06", "omnetpp06")
        )
        profiles = workload.profiles(platform.llc_ways)
        reference = ClusteringEstimator(platform, profiles)
        incremental = ClusteringEstimator(platform, profiles, backend="incremental")
        for _ in range(25):
            allocation = _random_allocation(rng, list(profiles), platform.llc_ways)
            ref = reference.evaluate_allocation(allocation)
            inc = incremental.evaluate_allocation(allocation)
            assert inc.slowdowns == ref.slowdowns
            assert inc.ipcs == ref.ipcs
            assert inc.effective_ways == ref.effective_ways
            assert inc.bandwidth.demand_gbs == ref.bandwidth.demand_gbs
            assert inc.bandwidth.slowdown_factors == ref.bandwidth.slowdown_factors
            assert inc.metrics.unfairness == ref.metrics.unfairness
            assert inc.metrics.stp == ref.metrics.stp
            assert inc.metrics.antt == ref.metrics.antt
            assert inc.metrics.jain == ref.metrics.jain

    def test_repeated_evaluation_is_cached(self, platform):
        workload = Workload("est-mix2", ("lbm06", "gamess06"))
        profiles = workload.profiles(platform.llc_ways)
        estimator = ClusteringEstimator(platform, profiles, backend="incremental")
        allocation = WayAllocation(
            masks={a: platform.full_mask for a in profiles},
            total_ways=platform.llc_ways,
        )
        first = estimator.evaluate_allocation(allocation)
        again = estimator.evaluate_allocation(allocation)
        assert again is first  # a lookup, not a recomputation
        assert estimator.tables.cache_sizes()["estimates"] == 1

    def test_unknown_backend_rejected(self, platform):
        profiles = Workload("e", ("lbm06",)).profiles(platform.llc_ways)
        with pytest.raises(SimulationError):
            ClusteringEstimator(platform, profiles, backend="warp")

    def test_mismatched_shared_tables_rejected(self, platform):
        profiles = Workload("e2", ("lbm06",)).profiles(platform.llc_ways)
        tables = EvaluationTables(platform, occupancy_model=OccupancyModel(damping=0.9))
        with pytest.raises(SimulationError):
            ClusteringEstimator(
                platform, profiles, backend="incremental", tables=tables
            )

    def test_token_sharing_across_rebuilt_profiles(self, platform):
        workload = Workload("tok", ("lbm06", "mcf06"))
        tables = EvaluationTables(platform)
        first = workload.phased_profiles(platform.llc_ways)
        second = workload.phased_profiles(platform.llc_ways)
        snap_a = ProfileSnapshot(first)
        snap_b = ProfileSnapshot(second)
        for name in snap_a.apps:
            for phase_a, phase_b in zip(
                snap_a.phase_profiles[name], snap_b.phase_profiles[name]
            ):
                assert phase_a is not phase_b
                assert tables.token_for(phase_a) == tables.token_for(phase_b)


class TestEngineBackendEquivalence:
    @pytest.mark.parametrize(
        "driver_factory",
        [
            StockLinuxDriver,
            DunnUserLevelDaemon,
            lambda: LfocSchedulerPlugin(monitor_config=QUICK_MONITOR),
        ],
        ids=["stock", "dunn", "lfoc"],
    )
    def test_run_results_bit_identical(self, platform, phased_workload, driver_factory):
        reference = RuntimeEngine(
            platform,
            phased_workload.phased_profiles(platform.llc_ways),
            driver_factory(),
            replace(FAST, backend="reference"),
        ).run(phased_workload.name)
        incremental = RuntimeEngine(
            platform,
            phased_workload.phased_profiles(platform.llc_ways),
            driver_factory(),
            replace(FAST, backend="incremental"),
        ).run(phased_workload.name)
        assert run_result_fields(incremental) == run_result_fields(reference)

    def test_lfoc_run_exercises_phases_and_sampling(self, platform):
        # Same mix/budget as the reference-backend phase-tracking test:
        # mcf06 alternates between sensitive and streaming phases and must be
        # re-sampled beyond its initial classification.
        workload = Workload("inc-phased", ("mcf06", "gamess06", "lbm06", "namd06"))
        config = EngineConfig(
            instructions_per_run=1.6e9,
            min_completions=1,
            partition_interval_s=0.05,
            record_traces=False,
            max_simulated_seconds=200.0,
            backend="incremental",
        )
        engine = RuntimeEngine(
            platform,
            workload.phased_profiles(platform.llc_ways),
            LfocSchedulerPlugin(monitor_config=QUICK_MONITOR),
            config,
        )
        result = engine.run(workload.name)
        # The equivalence above is only meaningful if the dynamic machinery
        # actually fired: sampling sweeps ran and the phased app re-sampled.
        assert result.total_sampling_entries() >= len(workload.benchmarks)
        assert result.app_stats["mcf06.0"].sampling_mode_entries >= 2
        assert result.n_repartitions > 3

    def test_shared_tables_do_not_change_results(self, platform, phased_workload):
        config = replace(FAST, backend="incremental")
        tables = EvaluationTables(platform)
        solo = RuntimeEngine(
            platform,
            phased_workload.phased_profiles(platform.llc_ways),
            DunnUserLevelDaemon(),
            config,
        ).run(phased_workload.name)
        warm_a = RuntimeEngine(
            platform,
            phased_workload.phased_profiles(platform.llc_ways),
            DunnUserLevelDaemon(),
            config,
            tables=tables,
        ).run(phased_workload.name)
        sizes_after_first = tables.cache_sizes()
        warm_b = RuntimeEngine(
            platform,
            phased_workload.phased_profiles(platform.llc_ways),
            DunnUserLevelDaemon(),
            config,
            tables=tables,
        ).run(phased_workload.name)
        assert run_result_fields(warm_a) == run_result_fields(solo)
        assert run_result_fields(warm_b) == run_result_fields(solo)
        assert sizes_after_first["estimates"] > 0
        # The second identical run adds no new table entries.
        assert tables.cache_sizes() == sizes_after_first

    def test_reference_backend_rejects_tables(self, platform, phased_workload):
        with pytest.raises(SimulationError):
            RuntimeEngine(
                platform,
                phased_workload.phased_profiles(platform.llc_ways),
                StockLinuxDriver(),
                replace(FAST, backend="reference"),
                tables=EvaluationTables(platform),
            )

    def test_invalid_backend_rejected(self):
        with pytest.raises(SimulationError):
            EngineConfig(backend="turbo")


class TestBatchRunner:
    def test_batch_matches_direct_runs(self, platform, phased_workload):
        config = EngineConfig(
            instructions_per_run=6.0e8,
            min_completions=1,
            partition_interval_s=0.05,
            record_traces=False,
        )
        specs = [
            RunSpec(workload=phased_workload, driver_cls=StockLinuxDriver),
            RunSpec(workload=phased_workload, driver_cls=DunnUserLevelDaemon),
        ]
        batch = BatchRunner(platform, jobs=1, config=config).run(specs)
        direct = [
            RuntimeEngine(
                platform,
                phased_workload.phased_profiles(platform.llc_ways),
                spec.driver_cls(),
                config,
            ).run(phased_workload.name)
            for spec in specs
        ]
        assert [run_result_fields(r) for r in batch] == [
            run_result_fields(r) for r in direct
        ]

    def test_batch_respects_reference_backend(self, platform, phased_workload):
        config = EngineConfig(
            instructions_per_run=6.0e8,
            min_completions=1,
            partition_interval_s=0.05,
            record_traces=False,
            backend="reference",
        )
        specs = [RunSpec(workload=phased_workload, driver_cls=StockLinuxDriver)]
        (result,) = BatchRunner(platform, jobs=1, config=config).run(specs)
        assert result.policy == "Stock-Linux"

    def test_empty_batch(self, platform):
        assert BatchRunner(platform, jobs=1).run([]) == []

    def test_invalid_jobs_rejected(self, platform, phased_workload):
        specs = [RunSpec(workload=phased_workload, driver_cls=StockLinuxDriver)]
        with pytest.raises(SimulationError):
            BatchRunner(platform, jobs=0).run(specs)

    def test_conflicting_workload_names_rejected(self, platform):
        specs = [
            RunSpec(
                workload=Workload("same", ("lbm06", "gamess06")),
                driver_cls=StockLinuxDriver,
            ),
            RunSpec(
                workload=Workload("same", ("mcf06", "namd06")),
                driver_cls=StockLinuxDriver,
            ),
        ]
        with pytest.raises(SimulationError):
            BatchRunner(platform, jobs=1).run(specs)


class TestFig7Backends:
    def test_summary_rows_bit_identical_and_jobs_invariant(self, platform):
        from repro.analysis import fig7_dynamic_study

        workloads = [Workload("f7-mix", ("mcf06", "lbm06", "xalancbmk06", "gamess06"))]
        config = EngineConfig(
            instructions_per_run=6.0e8, min_completions=1, record_traces=False
        )
        reference = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="reference"
        )
        incremental = fig7_dynamic_study(
            workloads, engine_config=config, platform=platform, backend="incremental"
        )
        assert incremental == reference
