"""Tests for the search-space enumeration and optimal-solution solvers."""

import pytest

from repro.core import ClusteringSolution
from repro.errors import SolverError
from repro.hardware import skylake_gold_6138, small_test_platform
from repro.optimal import (
    CachedObjective,
    bell_number,
    branch_and_bound_clustering,
    count_clustering_solutions,
    count_partitioning_solutions,
    count_set_partitions,
    count_way_compositions,
    local_search_clustering,
    optimal_clustering,
    optimal_partitioning,
    parallel_optimal_clustering,
    set_partitions,
    stirling2,
    way_compositions,
)


class TestEnumeration:
    def test_way_compositions_count_and_validity(self):
        compositions = list(way_compositions(6, 3))
        assert len(compositions) == count_way_compositions(6, 3) == 10
        assert all(sum(c) == 6 and min(c) >= 1 for c in compositions)
        assert len(set(compositions)) == len(compositions)

    def test_way_compositions_single_part(self):
        assert list(way_compositions(5, 1)) == [(5,)]

    def test_way_compositions_infeasible_rejected(self):
        with pytest.raises(SolverError):
            list(way_compositions(2, 3))

    def test_set_partitions_bell_number(self):
        items = ["a", "b", "c", "d"]
        partitions = list(set_partitions(items, 4))
        assert len(partitions) == bell_number(4) == 15
        for partition in partitions:
            flattened = [x for group in partition for x in group]
            assert sorted(flattened) == sorted(items)

    def test_set_partitions_respects_max_parts(self):
        partitions = list(set_partitions(["a", "b", "c", "d"], 2))
        assert len(partitions) == count_set_partitions(4, 2) == 8
        assert all(len(p) <= 2 for p in partitions)

    def test_stirling_numbers(self):
        assert stirling2(4, 2) == 7
        assert stirling2(5, 5) == 1
        assert stirling2(5, 6) == 0

    def test_paper_search_space_sizes(self):
        # Section 2.2: 120 partitionings for 8 apps / 11 ways; ~9M clusterings
        # for 8 apps / 20 ways; >5500M for 11 apps / 20 ways.
        assert count_partitioning_solutions(8, 11) == 120
        assert 9_000_000 < count_clustering_solutions(8, 20) < 10_000_000
        assert count_clustering_solutions(11, 20) > 5_500_000_000

    def test_clustering_count_matches_enumeration(self, small_platform, catalog):
        apps = ["lbm06", "xalancbmk06", "gamess06"]
        total = 0
        for groups in set_partitions(apps, min(len(apps), small_platform.llc_ways)):
            total += count_way_compositions(small_platform.llc_ways, len(groups))
        assert total == count_clustering_solutions(3, small_platform.llc_ways)


@pytest.fixture(scope="module")
def mix5():
    from repro.apps import build_catalog

    catalog = build_catalog(11)
    names = ["lbm06", "xalancbmk06", "soplex06", "gamess06", "namd06"]
    return {name: catalog[name] for name in names}


class TestSolvers:
    def test_exhaustive_fairness_beats_every_heuristic_partition(self, platform, mix5):
        result = optimal_clustering(platform, mix5, objective="fairness")
        # No partitioning of the same workload can be fairer (partitionings are
        # a subset of clusterings).
        partitioning = optimal_partitioning(platform, mix5, objective="fairness")
        assert result.unfairness <= partitioning.unfairness + 1e-9
        assert result.solution.covers(mix5)

    def test_branch_and_bound_matches_exhaustive(self, platform, mix5):
        shared = CachedObjective(platform, mix5)
        exhaustive = optimal_clustering(platform, mix5, objective_fn=shared)
        bnb = branch_and_bound_clustering(platform, mix5, objective_fn=shared)
        assert bnb.unfairness == pytest.approx(exhaustive.unfairness, rel=1e-9)
        assert bnb.candidates_evaluated <= exhaustive.candidates_evaluated

    def test_throughput_objective_maximises_stp(self, platform, mix5):
        fairness = optimal_clustering(platform, mix5, objective="fairness")
        throughput = optimal_clustering(platform, mix5, objective="throughput")
        assert throughput.stp >= fairness.stp - 1e-9

    def test_optimal_isolates_streaming_aggressor(self, platform, mix5):
        result = optimal_clustering(platform, mix5, objective="fairness")
        lbm_cluster = result.solution.cluster_of("lbm06")
        assert lbm_cluster.ways <= 2  # Section 3: aggressors end up in tiny clusters

    def test_max_clusters_cap_respected(self, platform, mix5):
        result = optimal_clustering(platform, mix5, max_clusters=2)
        assert result.solution.n_clusters <= 2

    def test_partitioning_requires_enough_ways(self, small_platform, mix5):
        with pytest.raises(SolverError):
            optimal_partitioning(small_platform, mix5)

    def test_unknown_objective_rejected(self, platform, mix5):
        with pytest.raises(SolverError):
            optimal_clustering(platform, mix5, objective="energy")
        with pytest.raises(SolverError):
            branch_and_bound_clustering(platform, mix5, objective="energy")

    def test_unknown_apps_rejected(self, platform, mix5):
        with pytest.raises(SolverError):
            optimal_clustering(platform, mix5, apps=["ghost"])

    def test_local_search_feasible_and_close_to_optimal(self, platform, mix5):
        shared = CachedObjective(platform, mix5)
        exact = branch_and_bound_clustering(platform, mix5, objective_fn=shared)
        approx = local_search_clustering(
            platform, mix5, iterations=400, restarts=2, seed=1, objective_fn=shared
        )
        assert approx.solution.covers(mix5)
        assert approx.unfairness <= exact.unfairness * 1.15

    def test_local_search_is_deterministic(self, platform, mix5):
        a = local_search_clustering(platform, mix5, iterations=200, seed=3)
        b = local_search_clustering(platform, mix5, iterations=200, seed=3)
        assert a.unfairness == pytest.approx(b.unfairness)

    def test_parallel_single_worker_matches_exhaustive(self, platform, mix5):
        sequential = optimal_clustering(platform, mix5)
        parallel = parallel_optimal_clustering(platform, mix5, n_workers=1)
        assert parallel.unfairness == pytest.approx(sequential.unfairness, rel=1e-9)
        assert parallel.candidates_evaluated == sequential.candidates_evaluated


class TestCachedObjective:
    def test_cluster_pieces_are_cached(self, platform, mix5):
        objective = CachedObjective(platform, mix5)
        objective.cluster_pieces(["lbm06", "gamess06"], 2)
        size = objective.cache_size
        objective.cluster_pieces(["gamess06", "lbm06"], 2)  # same key, different order
        assert objective.cache_size == size

    def test_score_matches_full_estimator(self, platform, mix5):
        from repro.simulator import ClusteringEstimator

        objective = CachedObjective(platform, mix5)
        groups = [["lbm06"], ["xalancbmk06", "soplex06"], ["gamess06", "namd06"]]
        ways = [1, 8, 2]
        score = objective.score_candidate(groups, ways)
        estimator = ClusteringEstimator(platform, mix5)
        solution = ClusteringSolution.from_groups(groups, ways, platform.llc_ways)
        estimate = estimator.evaluate(solution)
        assert score.unfairness == pytest.approx(estimate.unfairness, rel=0.02)
        assert score.stp == pytest.approx(estimate.stp, rel=0.02)

    def test_score_solution_wrapper(self, platform, mix5):
        objective = CachedObjective(platform, mix5)
        solution = ClusteringSolution.single_cluster(list(mix5), platform.llc_ways)
        score = objective.score_solution(solution)
        assert score.unfairness >= 1.0

    def test_mismatched_groups_and_ways_rejected(self, platform, mix5):
        objective = CachedObjective(platform, mix5)
        with pytest.raises(SolverError):
            objective.score_candidate([["lbm06"]], [1, 2])
