"""Tests for workload generation and the S/P evaluation suites."""

import numpy as np
import pytest

from repro.apps import benchmark_spec, benchmarks_by_class
from repro.errors import WorkloadError
from repro.workloads import (
    Workload,
    all_workloads,
    composition_matrix,
    dynamic_study_workloads,
    instance_name,
    p_workloads,
    random_workload,
    s_workloads,
    static_study_workloads,
    workload_by_name,
)


class TestWorkload:
    def test_instance_names_are_unique(self):
        workload = Workload("w", ("lbm06", "lbm06", "gamess06"))
        names = workload.instance_names()
        assert len(set(names)) == 3
        assert names[0] == instance_name("lbm06", 0)
        assert names[1] == instance_name("lbm06", 1)

    def test_instance_counts(self):
        workload = Workload("w", ("lbm06", "lbm06", "gamess06"))
        assert workload.instance_counts() == {"lbm06": 2, "gamess06": 1}

    def test_profiles_keyed_by_instance(self):
        workload = Workload("w", ("lbm06", "lbm06"))
        profiles = workload.profiles(11)
        assert set(profiles) == {"lbm06.0", "lbm06.1"}
        assert profiles["lbm06.0"].name == "lbm06.0"

    def test_phased_profiles_available(self):
        workload = Workload("w", ("fotonik3d17", "gamess06"))
        phased = workload.phased_profiles(11)
        assert phased["fotonik3d17.0"].is_phased
        assert not phased["gamess06.0"].is_phased

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("w", ("not-a-benchmark",))

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("w", ())

    def test_has_phased_benchmarks(self):
        assert Workload("w", ("xz17", "gamess06")).has_phased_benchmarks()
        assert not Workload("w", ("gamess06", "namd06")).has_phased_benchmarks()


class TestRandomWorkload:
    def test_size_and_determinism(self):
        a = random_workload("a", 8, kind="S", seed=5)
        b = random_workload("b", 8, kind="S", seed=5)
        assert a.size == 8
        assert a.benchmarks == b.benchmarks

    def test_s_workloads_avoid_phased_benchmarks(self):
        workload = random_workload("s", 12, kind="S", seed=1)
        assert not workload.has_phased_benchmarks()

    def test_s_workloads_guarantee_class_coverage(self):
        classes = benchmarks_by_class()
        for seed in range(5):
            workload = random_workload("s", 8, kind="S", seed=seed)
            assert any(b in classes["sensitive"] for b in workload.benchmarks)
            assert any(b in classes["streaming"] for b in workload.benchmarks)

    def test_p_workloads_include_phased_benchmarks(self):
        for seed in range(5):
            workload = random_workload("p", 8, kind="P", seed=seed)
            assert workload.has_phased_benchmarks()

    def test_max_instances_respected(self):
        workload = random_workload("w", 16, kind="S", seed=2, max_instances=2)
        assert max(workload.instance_counts().values()) <= 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            random_workload("w", 1)
        with pytest.raises(WorkloadError):
            random_workload("w", 8, kind="X")


class TestSuites:
    def test_suite_sizes_match_the_paper(self):
        s = s_workloads()
        p = p_workloads()
        assert len(s) == 21
        assert len(p) == 15
        assert sorted({w.size for w in s}) == [8, 12, 16]
        assert sorted({w.size for w in p}) == [8, 12, 16]
        assert len(all_workloads()) == 36

    def test_suites_are_deterministic(self):
        assert [w.benchmarks for w in s_workloads()] == [w.benchmarks for w in s_workloads()]

    def test_workload_by_name(self):
        assert workload_by_name("S1").name == "S1"
        assert workload_by_name("P15").name == "P15"
        with pytest.raises(WorkloadError):
            workload_by_name("Z9")

    def test_static_study_selection(self):
        assert len(static_study_workloads()) == 21
        assert all(w.size <= 8 for w in static_study_workloads(max_size=8))

    def test_dynamic_study_selection_matches_fig7(self):
        names = [w.name for w in dynamic_study_workloads()]
        assert len(names) == 24
        assert names[:8] == ["P1", "P2", "P3", "P4", "P5", "S1", "S2", "S3"]

    def test_composition_matrix_covers_all_workloads(self):
        matrix = composition_matrix()
        assert set(matrix) == {w.name for w in all_workloads()}
        assert all(sum(counts.values()) in (8, 12, 16) for counts in matrix.values())
