"""Tests for the online monitor (Section 4.2 heuristics) and the sampling mode."""

import pytest

from repro.core import AppClass, ClassificationThresholds
from repro.errors import SimulationError
from repro.hardware.pmc import DerivedMetrics
from repro.runtime import AppMonitor, MonitorConfig, SamplingConfig, SamplingSession


def metrics(ipc=1.0, llcmpkc=1.0, stall=0.05):
    return DerivedMetrics(
        ipc=ipc,
        llcmpkc=llcmpkc,
        llcmpki=llcmpkc / max(ipc, 1e-9),
        stall_fraction=stall,
        instructions=100e6,
        cycles=100e6 / max(ipc, 1e-9),
    )


class TestAppMonitor:
    def test_warmup_samples_are_ignored(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=3))
        for _ in range(3):
            assert monitor.observe(metrics(llcmpkc=50.0), 11.0) is False
        assert not monitor.warmed_up or monitor.average_llcmpkc() == 0.0

    def test_unknown_app_requests_sampling_after_warmup(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=1))
        assert monitor.observe(metrics(), 11.0) is False  # warm-up sample
        assert monitor.observe(metrics(), 11.0) is True

    def test_light_app_resampled_when_memory_intensive(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.LIGHT)
        triggered = [monitor.observe(metrics(llcmpkc=30.0, stall=0.6), 5.0) for _ in range(3)]
        assert triggered[-1] is True

    def test_light_app_not_resampled_when_quiet(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.LIGHT)
        triggered = [monitor.observe(metrics(llcmpkc=0.5, stall=0.05), 5.0) for _ in range(5)]
        assert not any(triggered)

    def test_streaming_app_resampled_when_misses_drop(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.STREAMING)
        triggered = [monitor.observe(metrics(llcmpkc=1.0), 1.0) for _ in range(3)]
        assert triggered[-1] is True

    def test_streaming_app_stable_when_misses_high(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.STREAMING)
        triggered = [monitor.observe(metrics(llcmpkc=30.0), 1.0) for _ in range(5)]
        assert not any(triggered)

    def test_sensitive_app_resampled_when_quiet_below_critical_size(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=6)
        triggered = [
            monitor.observe(metrics(llcmpkc=0.5, stall=0.05), 2.0) for _ in range(3)
        ]
        assert triggered[-1] is True

    def test_sensitive_app_resampled_when_thrashing_above_critical_size(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=3)
        triggered = [
            monitor.observe(metrics(llcmpkc=25.0, stall=0.8), 8.0) for _ in range(3)
        ]
        assert triggered[-1] is True

    def test_sensitive_app_stable_in_expected_regime(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=4)
        triggered = [
            monitor.observe(metrics(llcmpkc=6.0, stall=0.4), 6.0) for _ in range(5)
        ]
        assert not any(triggered)

    def test_no_trigger_while_in_sampling_mode(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0))
        monitor.begin_sampling()
        assert monitor.observe(metrics(llcmpkc=50.0), 1.0) is False
        assert monitor.sampling_mode_entries == 1

    def test_class_changes_counted(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0))
        monitor.set_classification(AppClass.LIGHT)
        monitor.set_classification(AppClass.STREAMING)
        monitor.set_classification(AppClass.STREAMING)
        assert monitor.class_changes == 2

    def test_snapshot_fields(self):
        monitor = AppMonitor("a")
        snapshot = monitor.snapshot()
        assert snapshot["class"] == "unknown"
        assert "avg_llcmpkc" in snapshot

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            MonitorConfig(warmup_samples=-1)
        with pytest.raises(SimulationError):
            MonitorConfig(history_window=0)


class TestSamplingSession:
    def test_sampling_partition_grows_upwards(self):
        session = SamplingSession("a", ["b", "c"], 11)
        assert session.current_ways == 1
        allocation = session.current_allocation()
        assert allocation.mask_of("a") == 0b1
        assert allocation.mask_of("b") == allocation.mask_of("c")
        session.record_step(metrics(ipc=0.6, llcmpkc=20.0))
        assert session.current_ways == 2

    def test_early_stop_on_low_miss_rate(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(ipc=1.0, llcmpkc=0.5))
        assert session.finished
        outcome = session.outcome()
        assert outcome.app_class in (AppClass.LIGHT, AppClass.SENSITIVE)
        assert outcome.ways_visited == (1,)

    def test_streaming_detected_with_few_steps(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(ipc=0.5, llcmpkc=30.0))
        session.record_step(metrics(ipc=0.502, llcmpkc=30.0))
        assert session.finished
        assert session.outcome().app_class is AppClass.STREAMING
        assert len(session.outcome().ways_visited) == 2

    def test_sensitive_full_sweep_builds_slowdown_table(self):
        session = SamplingSession("a", ["b"], 11)
        way = 1
        while not session.finished:
            ipc = 1.0 - 0.5 / way  # keeps improving: sensitive shape
            session.record_step(metrics(ipc=ipc, llcmpkc=25.0 / way))
            way += 1
        outcome = session.outcome()
        assert outcome.app_class is AppClass.SENSITIVE
        table = outcome.slowdown_table
        assert len(table) == 11
        assert table[0] > table[-1]
        assert outcome.critical_size >= 1

    def test_cannot_record_after_finish(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(llcmpkc=0.1))
        with pytest.raises(SimulationError):
            session.record_step(metrics())

    def test_outcome_requires_finished_sweep(self):
        session = SamplingSession("a", ["b"], 11)
        with pytest.raises(SimulationError):
            session.outcome()

    def test_needs_at_least_two_ways(self):
        with pytest.raises(SimulationError):
            SamplingSession("a", ["b"], 1)

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SamplingConfig(instructions_per_step=0)
        with pytest.raises(SimulationError):
            SamplingConfig(flat_ipc_gain=2.0)
