"""Tests for the online monitor (Section 4.2 heuristics) and the sampling mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AppClass, ClassificationThresholds
from repro.errors import SimulationError
from repro.hardware.pmc import DerivedMetrics
from repro.runtime import AppMonitor, MonitorConfig, SamplingConfig, SamplingSession
from repro.runtime.monitor import BankMonitor, MonitorBank


def metrics(ipc=1.0, llcmpkc=1.0, stall=0.05):
    return DerivedMetrics(
        ipc=ipc,
        llcmpkc=llcmpkc,
        llcmpki=llcmpkc / max(ipc, 1e-9),
        stall_fraction=stall,
        instructions=100e6,
        cycles=100e6 / max(ipc, 1e-9),
    )


class TestAppMonitor:
    def test_warmup_samples_are_ignored(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=3))
        for _ in range(3):
            assert monitor.observe(metrics(llcmpkc=50.0), 11.0) is False
        assert not monitor.warmed_up or monitor.average_llcmpkc() == 0.0

    def test_unknown_app_requests_sampling_after_warmup(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=1))
        assert monitor.observe(metrics(), 11.0) is False  # warm-up sample
        assert monitor.observe(metrics(), 11.0) is True

    def test_light_app_resampled_when_memory_intensive(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.LIGHT)
        triggered = [monitor.observe(metrics(llcmpkc=30.0, stall=0.6), 5.0) for _ in range(3)]
        assert triggered[-1] is True

    def test_light_app_not_resampled_when_quiet(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.LIGHT)
        triggered = [monitor.observe(metrics(llcmpkc=0.5, stall=0.05), 5.0) for _ in range(5)]
        assert not any(triggered)

    def test_streaming_app_resampled_when_misses_drop(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.STREAMING)
        triggered = [monitor.observe(metrics(llcmpkc=1.0), 1.0) for _ in range(3)]
        assert triggered[-1] is True

    def test_streaming_app_stable_when_misses_high(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.STREAMING)
        triggered = [monitor.observe(metrics(llcmpkc=30.0), 1.0) for _ in range(5)]
        assert not any(triggered)

    def test_sensitive_app_resampled_when_quiet_below_critical_size(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=6)
        triggered = [
            monitor.observe(metrics(llcmpkc=0.5, stall=0.05), 2.0) for _ in range(3)
        ]
        assert triggered[-1] is True

    def test_sensitive_app_resampled_when_thrashing_above_critical_size(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=3)
        triggered = [
            monitor.observe(metrics(llcmpkc=25.0, stall=0.8), 8.0) for _ in range(3)
        ]
        assert triggered[-1] is True

    def test_sensitive_app_stable_in_expected_regime(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0, history_window=3))
        monitor.set_classification(AppClass.SENSITIVE, slowdown_table=[1.2] * 11, critical_size=4)
        triggered = [
            monitor.observe(metrics(llcmpkc=6.0, stall=0.4), 6.0) for _ in range(5)
        ]
        assert not any(triggered)

    def test_no_trigger_while_in_sampling_mode(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0))
        monitor.begin_sampling()
        assert monitor.observe(metrics(llcmpkc=50.0), 1.0) is False
        assert monitor.sampling_mode_entries == 1

    def test_class_changes_counted(self):
        monitor = AppMonitor("a", MonitorConfig(warmup_samples=0))
        monitor.set_classification(AppClass.LIGHT)
        monitor.set_classification(AppClass.STREAMING)
        monitor.set_classification(AppClass.STREAMING)
        assert monitor.class_changes == 2

    def test_snapshot_fields(self):
        monitor = AppMonitor("a")
        snapshot = monitor.snapshot()
        assert snapshot["class"] == "unknown"
        assert "avg_llcmpkc" in snapshot

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            MonitorConfig(warmup_samples=-1)
        with pytest.raises(SimulationError):
            MonitorConfig(history_window=0)


_CLASSES = (AppClass.UNKNOWN, AppClass.LIGHT, AppClass.STREAMING, AppClass.SENSITIVE)

# Values clustered around the Section 4.2 thresholds (streaming_llcmpkc=10,
# stall_fraction_high=0.25, low_llcmpkc=3) so the trigger comparisons are
# exercised on both sides of — and exactly at — every boundary.
_VALUES = st.one_of(
    st.sampled_from([0.0, 0.05, 0.249, 0.25, 0.251, 2.99, 3.0, 9.99, 10.0, 10.01, 30.0]),
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False, width=64),
)


@st.composite
def _monitor_scripts(draw):
    n_apps = draw(st.integers(min_value=1, max_value=4))
    config = MonitorConfig(
        warmup_samples=draw(st.integers(min_value=0, max_value=4)),
        # 8/9 cross the pairwise cutover (short_mean fallback per read).
        history_window=draw(st.sampled_from([1, 2, 3, 5, 8, 9])),
    )
    sample = st.tuples(_VALUES, _VALUES, _VALUES)  # (llcmpkc, stall, ways)
    step = st.one_of(
        st.tuples(
            st.just("observe"),
            st.lists(sample, min_size=n_apps, max_size=n_apps),
            st.lists(st.booleans(), min_size=n_apps, max_size=n_apps),
        ),
        st.tuples(st.just("begin"), st.integers(0, n_apps - 1)),
        st.tuples(
            st.just("classify"),
            st.integers(0, n_apps - 1),
            st.sampled_from(_CLASSES),
            st.one_of(st.none(), st.integers(min_value=0, max_value=6)),
        ),
        # Session churn: the app departs and re-arrives (arrive → depart →
        # arrive), which is reset_for_restart on both paths — classification
        # and lifetime counters survive, warm-up and windows restart.
        st.tuples(st.just("restart"), st.integers(0, n_apps - 1)),
    )
    steps = draw(st.lists(step, min_size=1, max_size=40))
    return n_apps, config, steps


class TestMonitorBankEquivalence:
    """The fused bank must reproduce the scalar AppMonitor bit for bit."""

    @staticmethod
    def _assert_rows_match(bank, monitors):
        for name, monitor in monitors.items():
            view = bank.monitor(name)
            assert isinstance(view, BankMonitor)
            assert view.name == monitor.name
            assert view.app_class is monitor.app_class
            assert view.warmup_remaining == monitor.warmup_remaining
            assert view.warmed_up == monitor.warmed_up
            assert view.in_sampling_mode == monitor.in_sampling_mode
            assert view.samples_seen == monitor.samples_seen
            assert view.class_changes == monitor.class_changes
            assert view.sampling_mode_entries == monitor.sampling_mode_entries
            assert view.classification_version == monitor.classification_version
            assert view.slowdown_table == monitor.slowdown_table
            assert view.critical_size == monitor.critical_size
            # Window contents and means, bit for bit.
            row = bank.row_index(name)
            assert bank.window(row, 0) == monitor._history.window(0)
            assert bank.window(row, 1) == monitor._history.window(1)
            assert view.average_llcmpkc() == monitor.average_llcmpkc()
            assert view.average_stall_fraction() == monitor.average_stall_fraction()
            assert view.snapshot() == monitor.snapshot()

    @settings(max_examples=60, deadline=None)
    @given(_monitor_scripts())
    def test_observe_batch_bit_identical_to_scalar_observe(self, script):
        n_apps, config, steps = script
        names = [f"app{i}" for i in range(n_apps)]
        monitors = {name: AppMonitor(name, config) for name in names}
        bank = MonitorBank(names, config)
        for step in steps:
            if step[0] == "observe":
                _, samples, included = step
                rows = [i for i in range(n_apps) if included[i]]
                if not rows:
                    continue
                scalar = [
                    monitors[names[i]].observe(
                        metrics(llcmpkc=samples[i][0], stall=samples[i][1]),
                        samples[i][2],
                    )
                    for i in rows
                ]
                fused = bank.observe_batch(
                    [samples[i][0] for i in rows],
                    [samples[i][1] for i in rows],
                    [samples[i][2] for i in rows],
                    rows=rows,
                )
                assert list(fused) == scalar
            elif step[0] == "begin":
                _, i = step
                monitors[names[i]].begin_sampling()
                bank.monitor(names[i]).begin_sampling()
            elif step[0] == "restart":
                _, i = step
                monitors[names[i]].reset_for_restart()
                bank.monitor(names[i]).reset_for_restart()
            else:
                _, i, app_class, critical = step
                table = [1.2] * 4 if app_class is AppClass.SENSITIVE else None
                monitors[names[i]].set_classification(
                    app_class, slowdown_table=table, critical_size=critical
                )
                bank.monitor(names[i]).set_classification(
                    app_class, slowdown_table=table, critical_size=critical
                )
            self._assert_rows_match(bank, monitors)

    @settings(max_examples=25, deadline=None)
    @given(_monitor_scripts())
    def test_state_round_trip_preserves_bit_identical_behaviour(self, script):
        """state_dict → JSON → from_state is an exact restore: the restored
        bank's rows match the scalar reference and keep matching under
        further ingestion (the property daemon snapshot/restore rests on)."""
        import json as _json

        n_apps, config, steps = script
        names = [f"app{i}" for i in range(n_apps)]
        monitors = {name: AppMonitor(name, config) for name in names}
        bank = MonitorBank(names, config)
        for step in steps:
            if step[0] == "observe":
                _, samples, included = step
                rows = [i for i in range(n_apps) if included[i]]
                if not rows:
                    continue
                for i in rows:
                    monitors[names[i]].observe(
                        metrics(llcmpkc=samples[i][0], stall=samples[i][1]),
                        samples[i][2],
                    )
                bank.observe_batch(
                    [samples[i][0] for i in rows],
                    [samples[i][1] for i in rows],
                    [samples[i][2] for i in rows],
                    rows=rows,
                )
            elif step[0] == "begin":
                monitors[names[step[1]]].begin_sampling()
                bank.monitor(names[step[1]]).begin_sampling()
            elif step[0] == "restart":
                monitors[names[step[1]]].reset_for_restart()
                bank.monitor(names[step[1]]).reset_for_restart()
            else:
                _, i, app_class, critical = step
                table = [1.2] * 4 if app_class is AppClass.SENSITIVE else None
                monitors[names[i]].set_classification(
                    app_class, slowdown_table=table, critical_size=critical
                )
                bank.monitor(names[i]).set_classification(
                    app_class, slowdown_table=table, critical_size=critical
                )
        # Through actual JSON text, exactly as the snapshot file does it.
        restored = MonitorBank.from_state(
            _json.loads(_json.dumps(bank.state_dict(), sort_keys=True))
        )
        self._assert_rows_match(restored, monitors)
        # The restore is behavioural, not just structural: further fused
        # ingestion stays bit-identical to the scalar reference.
        for extra in range(3):
            llc = [1.0 + extra + i for i in range(n_apps)]
            stl = [0.1 * (extra + 1)] * n_apps
            eff = [4.0] * n_apps
            scalar = [
                monitors[name].observe(metrics(llcmpkc=llc[i], stall=stl[i]), eff[i])
                for i, name in enumerate(names)
            ]
            assert list(restored.observe_batch(llc, stl, eff)) == scalar
        self._assert_rows_match(restored, monitors)

    def test_add_row_grows_the_bank_without_disturbing_existing_rows(self):
        config = MonitorConfig(warmup_samples=1, history_window=3)
        bank = MonitorBank(["a"], config)
        reference = {"a": AppMonitor("a", config)}
        for i in range(4):
            reference["a"].observe(metrics(llcmpkc=5.0 + i, stall=0.3), 4.0)
            bank.observe_batch([5.0 + i], [0.3], [4.0])
        row = bank.add_row("b")
        assert row == 1 and len(bank) == 2
        reference["b"] = AppMonitor("b", config)
        self._assert_rows_match(bank, reference)
        # The grown bank ingests across old and new rows in one fused call.
        scalar = [
            reference["a"].observe(metrics(llcmpkc=12.0, stall=0.1), 6.0),
            reference["b"].observe(metrics(llcmpkc=0.5, stall=0.02), 6.0),
        ]
        assert list(bank.observe_batch([12.0, 0.5], [0.1, 0.02], [6.0, 6.0])) == scalar
        self._assert_rows_match(bank, reference)
        with pytest.raises(SimulationError):
            bank.add_row("a")  # duplicate names stay rejected after growth

    def test_from_state_rejects_malformed_state(self):
        bank = MonitorBank(["a", "b"])
        state = bank.state_dict()
        broken = dict(state)
        broken.pop("names")
        with pytest.raises(SimulationError, match="malformed monitor bank state"):
            MonitorBank.from_state(broken)
        truncated = dict(state)
        truncated["warmup_remaining"] = [0]  # row count mismatch
        with pytest.raises(SimulationError):
            MonitorBank.from_state(truncated)

    def test_warmup_boundary_and_sampling_reset_and_short_window(self):
        # The three named edge cases, deterministically: a sample batch that
        # straddles the warm-up boundary, a sampling-mode reset that clears
        # the window mid-run, and decisions taken while the history is still
        # shorter than the window.
        config = MonitorConfig(warmup_samples=2, history_window=5)
        names = ["a", "b"]
        monitors = {name: AppMonitor(name, config) for name in names}
        bank = MonitorBank(names, config)
        monitors["b"].set_classification(AppClass.LIGHT)
        bank.monitor("b").set_classification(AppClass.LIGHT)
        for sample_index in range(8):
            llc = [0.5 + sample_index, 30.0]
            stl = [0.01 * sample_index, 0.6]
            eff = [4.0, 4.0]
            scalar = [
                monitors[name].observe(metrics(llcmpkc=llc[i], stall=stl[i]), eff[i])
                for i, name in enumerate(names)
            ]
            assert list(bank.observe_batch(llc, stl, eff)) == scalar
            if sample_index == 5:  # reset mid-run: window restarts from empty
                monitors["a"].begin_sampling()
                bank.monitor("a").begin_sampling()
        self._assert_rows_match(bank, monitors)

    def test_bank_rejects_bad_inputs(self):
        bank = MonitorBank(["a", "b"])
        with pytest.raises(SimulationError):
            bank.observe_batch([1.0], [0.1], [2.0, 3.0], rows=[0])
        with pytest.raises(SimulationError):
            bank.row_index("nope")
        with pytest.raises(SimulationError):
            MonitorBank([])
        with pytest.raises(SimulationError):
            MonitorBank(["a", "a"])


class TestSamplingSession:
    def test_sampling_partition_grows_upwards(self):
        session = SamplingSession("a", ["b", "c"], 11)
        assert session.current_ways == 1
        allocation = session.current_allocation()
        assert allocation.mask_of("a") == 0b1
        assert allocation.mask_of("b") == allocation.mask_of("c")
        session.record_step(metrics(ipc=0.6, llcmpkc=20.0))
        assert session.current_ways == 2

    def test_early_stop_on_low_miss_rate(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(ipc=1.0, llcmpkc=0.5))
        assert session.finished
        outcome = session.outcome()
        assert outcome.app_class in (AppClass.LIGHT, AppClass.SENSITIVE)
        assert outcome.ways_visited == (1,)

    def test_streaming_detected_with_few_steps(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(ipc=0.5, llcmpkc=30.0))
        session.record_step(metrics(ipc=0.502, llcmpkc=30.0))
        assert session.finished
        assert session.outcome().app_class is AppClass.STREAMING
        assert len(session.outcome().ways_visited) == 2

    def test_sensitive_full_sweep_builds_slowdown_table(self):
        session = SamplingSession("a", ["b"], 11)
        way = 1
        while not session.finished:
            ipc = 1.0 - 0.5 / way  # keeps improving: sensitive shape
            session.record_step(metrics(ipc=ipc, llcmpkc=25.0 / way))
            way += 1
        outcome = session.outcome()
        assert outcome.app_class is AppClass.SENSITIVE
        table = outcome.slowdown_table
        assert len(table) == 11
        assert table[0] > table[-1]
        assert outcome.critical_size >= 1

    def test_cannot_record_after_finish(self):
        session = SamplingSession("a", ["b"], 11)
        session.record_step(metrics(llcmpkc=0.1))
        with pytest.raises(SimulationError):
            session.record_step(metrics())

    def test_outcome_requires_finished_sweep(self):
        session = SamplingSession("a", ["b"], 11)
        with pytest.raises(SimulationError):
            session.outcome()

    def test_needs_at_least_two_ways(self):
        with pytest.raises(SimulationError):
            SamplingSession("a", ["b"], 1)

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SamplingConfig(instructions_per_step=0)
        with pytest.raises(SimulationError):
            SamplingConfig(flat_ipc_gain=2.0)
