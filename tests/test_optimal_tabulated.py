"""Equivalence tests: tabulated batch-scoring backend vs. reference solvers.

The tabulated engine promises *bit-identical* optima: same groups, same way
counts, and exactly equal unfairness/STP floats.  These tests pin that
guarantee across seeded workloads, both objectives and every solver entry
point (exhaustive, branch-and-bound, strict partitioning, parallel driver).
"""

import pytest

from repro.errors import SolverError
from repro.hardware import skylake_gold_6138
from repro.optimal import (
    CachedObjective,
    TabulatedObjective,
    branch_and_bound_clustering,
    optimal_clustering,
    optimal_partitioning,
    parallel_optimal_clustering,
    set_partitions,
    tabulated_branch_and_bound,
    way_compositions,
)
from repro.workloads import random_workload

WORKLOAD_SEEDS = [3, 17, 29, 42]


def _mix(seed: int, size: int = 5):
    platform = skylake_gold_6138()
    workload = random_workload(f"tab-{seed}", size, kind="S", seed=seed)
    return platform, workload.profiles(platform.llc_ways)


def _signature(result):
    return (
        [list(cluster.apps) for cluster in result.solution.clusters],
        [cluster.ways for cluster in result.solution.clusters],
        result.unfairness,
        result.stp,
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    @pytest.mark.parametrize("objective", ["fairness", "throughput"])
    def test_exhaustive_bit_identical(self, seed, objective):
        platform, profiles = _mix(seed)
        reference = optimal_clustering(
            platform, profiles, objective=objective, backend="reference"
        )
        tabulated = optimal_clustering(
            platform, profiles, objective=objective, backend="tabulated"
        )
        assert _signature(tabulated) == _signature(reference)
        assert tabulated.candidates_evaluated == reference.candidates_evaluated

    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    @pytest.mark.parametrize("objective", ["fairness", "throughput"])
    def test_branch_and_bound_matches_reference_optimum(self, seed, objective):
        platform, profiles = _mix(seed)
        reference = optimal_clustering(
            platform, profiles, objective=objective, backend="reference"
        )
        bnb = branch_and_bound_clustering(
            platform, profiles, objective=objective, backend="tabulated"
        )
        assert _signature(bnb) == _signature(reference)
        assert bnb.candidates_evaluated <= reference.candidates_evaluated

    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS[:2])
    def test_partitioning_bit_identical(self, seed):
        platform, profiles = _mix(seed)
        reference = optimal_partitioning(platform, profiles, backend="reference")
        tabulated = optimal_partitioning(platform, profiles, backend="tabulated")
        assert _signature(tabulated) == _signature(reference)

    def test_max_clusters_cap_respected(self):
        platform, profiles = _mix(3)
        result = optimal_clustering(
            platform, profiles, max_clusters=2, backend="tabulated"
        )
        assert result.solution.n_clusters <= 2
        reference = optimal_clustering(
            platform, profiles, max_clusters=2, backend="reference"
        )
        assert _signature(result) == _signature(reference)

    def test_unknown_backend_rejected(self):
        platform, profiles = _mix(3)
        with pytest.raises(SolverError):
            optimal_clustering(platform, profiles, backend="gpu")
        with pytest.raises(SolverError):
            parallel_optimal_clustering(platform, profiles, backend="gpu")

    def test_objective_fn_conflicts_with_tabulated_backend(self):
        platform, profiles = _mix(3)
        shared = CachedObjective(platform, profiles)
        with pytest.raises(SolverError):
            optimal_clustering(
                platform, profiles, objective_fn=shared, backend="tabulated"
            )
        with pytest.raises(SolverError):
            branch_and_bound_clustering(
                platform, profiles, objective_fn=shared, backend="tabulated"
            )
        with pytest.raises(SolverError):
            optimal_partitioning(
                platform, profiles, objective_fn=shared, backend="tabulated"
            )

    def test_oversized_workload_falls_back_to_reference_workers(self):
        platform = skylake_gold_6138()
        workload = random_workload("tab-big", 15, kind="S", seed=2)
        profiles = workload.profiles(platform.llc_ways)
        # 15 apps exceed MAX_TABULATED_APPS; the tabulated default must fall
        # back to the reference worker instead of raising.  max_clusters=1
        # keeps the search itself to a single candidate.
        result = parallel_optimal_clustering(
            platform, profiles, n_workers=1, max_clusters=1
        )
        assert result.solution.n_clusters == 1
        assert result.candidates_evaluated == 1


class TestParallelSharedTables:
    def test_parallel_matches_sequential_optimum(self):
        platform, profiles = _mix(17)
        sequential = optimal_clustering(platform, profiles, backend="reference")
        parallel = parallel_optimal_clustering(
            platform, profiles, n_workers=2, backend="tabulated"
        )
        assert _signature(parallel) == _signature(sequential)
        assert parallel.candidates_evaluated == sequential.candidates_evaluated

    def test_single_worker_runs_in_process(self):
        platform, profiles = _mix(29)
        sequential = optimal_clustering(platform, profiles, backend="reference")
        parallel = parallel_optimal_clustering(
            platform, profiles, n_workers=1, backend="tabulated"
        )
        assert _signature(parallel) == _signature(sequential)


class TestTabulatedObjective:
    def test_candidate_scores_match_reference(self):
        platform, profiles = _mix(42)
        reference = CachedObjective(platform, profiles)
        tables = TabulatedObjective(platform, profiles)
        apps = list(profiles)
        checked = 0
        for groups in set_partitions(apps, 3):
            for ways in way_compositions(platform.llc_ways, len(groups)):
                score = reference.score_candidate(groups, ways)
                unfairness, stp = tables.score_candidate_fast(groups, ways)
                assert unfairness == score.unfairness
                assert stp == pytest.approx(score.stp, abs=1e-12)
                checked += 1
            if checked > 300:
                break
        assert checked > 0

    def test_exact_score_is_reference_score(self):
        platform, profiles = _mix(3)
        tables = TabulatedObjective(platform, profiles)
        reference = CachedObjective(platform, profiles)
        groups = [[app] for app in profiles]
        ways = [1] * (len(groups) - 1) + [platform.llc_ways - len(groups) + 1]
        exact = tables.exact_score(groups, ways)
        expected = reference.score_candidate(groups, ways)
        assert exact.unfairness == expected.unfairness
        assert exact.stp == expected.stp
        assert exact.slowdowns == expected.slowdowns

    def test_bounds_match_reference_pieces(self):
        platform, profiles = _mix(17)
        tables = TabulatedObjective(platform, profiles)
        reference = CachedObjective(platform, profiles)
        apps = sorted(profiles)
        group = apps[:3]
        mask = tables.group_mask(group)
        for ways in (1, 2, platform.llc_ways):
            pieces = reference.cluster_pieces(group, ways)
            assert tables.cluster_max_slowdown(mask, ways) == max(
                pieces.cache_slowdowns.values()
            )
            assert tables.cluster_min_slowdown(mask, ways) == min(
                pieces.cache_slowdowns.values()
            )

    def test_too_many_apps_rejected(self):
        platform, profiles = _mix(3)
        import repro.optimal.tabulated as tab_mod

        original = tab_mod.MAX_TABULATED_APPS
        tab_mod.MAX_TABULATED_APPS = 2
        try:
            with pytest.raises(SolverError):
                TabulatedObjective(platform, profiles)
        finally:
            tab_mod.MAX_TABULATED_APPS = original

    def test_untabulated_app_rejected(self):
        platform, profiles = _mix(3)
        tables = TabulatedObjective(platform, profiles)
        with pytest.raises(SolverError):
            tables.group_mask(["ghost"])

    def test_restricted_masks_reject_unsolved_entries(self):
        platform, profiles = _mix(3)
        tables = TabulatedObjective(platform, profiles, cluster_masks=[1, 2])
        assert tables.entry(1, 1) == platform.llc_ways
        with pytest.raises(SolverError):
            tables.entry(3, 1)
        with pytest.raises(SolverError):
            TabulatedObjective(platform, profiles, cluster_masks=[0])


def test_tabulated_bnb_with_shared_tables():
    platform, profiles = _mix(42)
    tables = TabulatedObjective(platform, profiles)
    a = tabulated_branch_and_bound(platform, profiles, tables=tables)
    b = branch_and_bound_clustering(platform, profiles, backend="reference")
    assert _signature(a) == _signature(b)
