"""Differential-oracle harness for the incremental driver/engine layers.

The ``incremental`` execution paths — the vectorized Dunn decision kernels,
the driver decision caches, the token-based engine evaluation — must
reproduce the ``reference`` implementations *exactly*: same study rows, same
``choose_k`` decisions, same allocation masks, bit for bit.  This module
provides the building blocks the differential tests (and deep local fuzz
runs) are made of:

* :func:`random_phased_workload` — seeded randomized workloads drawn from
  the benchmark catalogue, phased mixes included, so the fuzz loop exercises
  phase changes, sampling sweeps and repartitions rather than a fixed
  hand-picked mix;
* :func:`differential_run` — one engine run under an explicit
  ``(engine backend, driver backend)`` combination, reduced to an
  exactly-comparable structure covering everything a run records
  (completion times, traces, repartition reasons and masks, final
  allocation, per-app stats);
* :func:`differential_group_run` — the same batch through grouped
  :class:`~repro.runtime.multirun.MultiRunEngine` execution (the
  ``multirun`` backend's cross-run stacking), flat-ordered for member-by-
  member comparison against serial runs;
* :func:`assert_identical` — strict equality with a readable diff pointing
  at the first field that diverged;
* :func:`random_stall_vector` — adversarial 1-D stall-metric vectors
  (well-separated groups, near-ties, heavy duplicates, constant data) for
  decision-level fuzz of ``choose_k``.

The number of seeds is CI-bounded through the ``--oracle-seeds`` pytest
option (see ``conftest.py``); deep local runs crank it up::

    PYTHONPATH=src python -m pytest tests/test_driver_differential.py \
        --oracle-seeds 25 -q
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.hardware import skylake_gold_6138
from repro.runtime import (
    DunnUserLevelDaemon,
    EngineConfig,
    LfocSchedulerPlugin,
    MonitorConfig,
    RuntimeEngine,
    StockLinuxDriver,
)
from repro.workloads import Workload, random_workload

__all__ = [
    "ORACLE_CONFIG",
    "DRIVER_NAMES",
    "BACKEND_COMBINATIONS",
    "random_phased_workload",
    "make_driver",
    "run_fields",
    "differential_run",
    "differential_group_run",
    "assert_identical",
    "random_stall_vector",
    "dunn_reference",
    "dunn_incremental",
    "lfoc_reference",
    "lfoc_incremental",
]

#: Scaled-down engine configuration: short runs with a tight partitioning
#: interval so every mechanism (decisions, sweeps, phase changes, restarts)
#: fires many times within the budget.  Traces are recorded and compared.
ORACLE_CONFIG = EngineConfig(
    instructions_per_run=6.0e8,
    min_completions=1,
    partition_interval_s=0.05,
    record_traces=True,
    max_simulated_seconds=200.0,
)

#: Quick monitors so LFOC classifies (and re-classifies) within the budget.
ORACLE_MONITOR = MonitorConfig(warmup_samples=2, history_window=3)

DRIVER_NAMES = ("dunn", "lfoc", "stock")

#: Engine/driver backend pairs compared against the all-reference baseline.
#: ``multirun`` on a single RuntimeEngine exercises the degenerate one-run
#: path; the grouped cross-run path is pinned by differential_group_run.
BACKEND_COMBINATIONS = (
    ("incremental", "incremental"),
    ("incremental", "reference"),
    ("reference", "incremental"),
    ("multirun", "incremental"),
)


def random_phased_workload(seed: int, size: Optional[int] = None) -> Workload:
    """A seeded random workload with phased benchmarks guaranteed."""
    rng = np.random.default_rng(seed)
    if size is None:
        size = int(rng.choice([4, 6, 8]))
    return random_workload(f"oracle-{seed}", size, kind="P", rng=rng)


def make_driver(name: str, backend: str):
    """Fresh driver instance for one run (drivers carry mutable state)."""
    if name == "stock":
        return StockLinuxDriver()  # no decision layer: backend-free baseline
    if name == "dunn":
        return DunnUserLevelDaemon(backend=backend)
    if name == "lfoc":
        return LfocSchedulerPlugin(monitor_config=ORACLE_MONITOR, backend=backend)
    raise ValueError(f"unknown oracle driver {name!r}")


# Module-level factories (picklable) for study-level differential runs
# through fig7_dynamic_study / run_study.


def dunn_reference():
    return DunnUserLevelDaemon(backend="reference")


def dunn_incremental():
    return DunnUserLevelDaemon(backend="incremental")


def lfoc_reference():
    return LfocSchedulerPlugin(backend="reference")


def lfoc_incremental():
    return LfocSchedulerPlugin(backend="incremental")


def run_fields(result) -> Dict:
    """Everything a RunResult records, as an exactly-comparable structure."""
    return {
        "policy": result.policy,
        "workload": result.workload,
        "duration": result.duration_s,
        "stats": {
            name: (
                stats.completion_times,
                stats.alone_time,
                stats.instructions_retired,
                stats.samples_taken,
                stats.sampling_mode_entries,
                stats.class_changes,
            )
            for name, stats in result.app_stats.items()
        },
        "traces": result.traces,
        "repartitions": [
            (event.time_s, event.reason, event.masks) for event in result.repartitions
        ],
        "final_masks": dict(result.final_allocation.masks),
    }


def differential_run(
    workload: Workload,
    driver_name: str,
    engine_backend: str,
    driver_backend: str,
    *,
    platform=None,
    config: EngineConfig = ORACLE_CONFIG,
) -> Dict:
    """One run under an explicit backend combination, reduced for comparison."""
    platform = platform or skylake_gold_6138()
    engine = RuntimeEngine(
        platform,
        workload.phased_profiles(platform.llc_ways),
        make_driver(driver_name, driver_backend),
        replace(config, backend=engine_backend),
    )
    return run_fields(engine.run(workload.name))


def differential_group_run(
    workloads,
    driver_names,
    *,
    platform=None,
    config: EngineConfig = ORACLE_CONFIG,
    driver_backend: str = "incremental",
):
    """Every (workload, driver) pair through grouped multi-run engines.

    Groups the flat batch by application count — exactly the study layer's
    stacking criterion — runs each group through one
    :class:`~repro.runtime.multirun.MultiRunEngine` over shared tables, and
    returns the reduced run fields in flat (workload-major, driver-minor)
    order for comparison against per-run :func:`differential_run` results.
    """
    from collections import defaultdict

    from repro.runtime import MultiRunEngine

    platform = platform or skylake_gold_6138()
    members = []
    sizes = []
    for workload in workloads:
        profiles = workload.phased_profiles(platform.llc_ways)
        for driver_name in driver_names:
            members.append(
                (workload.name, profiles, make_driver(driver_name, driver_backend))
            )
            sizes.append(workload.size)
    buckets = defaultdict(list)
    for index, size in enumerate(sizes):
        buckets[size].append(index)
    results = [None] * len(members)
    group_config = replace(config, backend="multirun")
    for indices in buckets.values():
        engine = MultiRunEngine(
            platform, [members[i] for i in indices], group_config
        )
        for index, result in zip(indices, engine.run()):
            results[index] = run_fields(result)
    return results


def assert_identical(candidate: Dict, baseline: Dict, context: str) -> None:
    """Strict equality with a first-divergence diagnosis."""
    if candidate == baseline:
        return
    for field in baseline:
        if candidate.get(field) != baseline[field]:
            raise AssertionError(
                f"{context}: field {field!r} diverged from the reference "
                f"baseline\n  reference:   {baseline[field]!r}\n"
                f"  incremental: {candidate.get(field)!r}"
            )
    raise AssertionError(f"{context}: results diverged (extra fields?)")


def random_stall_vector(rng: np.random.Generator) -> np.ndarray:
    """Adversarial 1-D stall vectors for decision-level choose_k fuzz."""
    n = int(rng.integers(2, 17))
    shape = rng.random()
    if shape < 0.25:
        # Well-separated groups (the easy case the daemon usually sees).
        k = int(rng.integers(2, 5))
        centers = rng.random(k)
        values = centers[rng.integers(0, k, size=n)] + rng.random(n) * 0.01
    elif shape < 0.5:
        # Near-ties: everything within a hair of everything else.
        values = 0.5 + rng.random(n) * 1e-9
    elif shape < 0.7:
        # Heavy duplicates (multi-instance workloads produce these).
        pool = rng.random(max(n // 3, 1))
        values = pool[rng.integers(0, pool.size, size=n)]
    elif shape < 0.8:
        # Constant data: the degenerate tie-breaking regression case.
        values = np.full(n, float(rng.random()))
    else:
        values = rng.random(n)
    return np.clip(values.astype(float), 0.0, 1.0)
