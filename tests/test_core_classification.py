"""Tests for the Table 1 classifier and the partial-table (online) variant."""

import numpy as np
import pytest

from repro.core import (
    AppClass,
    ClassificationThresholds,
    classify_partial_tables,
    classify_profile,
    classify_profiles,
    classify_tables,
    split_by_class,
)
from repro.errors import ProfileError


def flat(value, n=11):
    return [value] * n


class TestClassifyTables:
    def test_streaming_criterion(self):
        # Flat slowdown, huge miss rate at every size -> streaming.
        assert classify_tables(flat(1.02), flat(30.0)) is AppClass.STREAMING

    def test_streaming_requires_high_misses(self):
        assert classify_tables(flat(1.02), flat(2.0)) is AppClass.LIGHT

    def test_streaming_requires_flat_slowdown_everywhere(self):
        slowdown = [1.10] + flat(1.02, 10)
        assert classify_tables(slowdown, flat(30.0)) is not AppClass.STREAMING

    def test_sensitive_criterion(self):
        slowdown = [1.8, 1.4, 1.2, 1.1, 1.05, 1.02, 1.01, 1.0, 1.0, 1.0, 1.0]
        assert classify_tables(slowdown, flat(5.0)) is AppClass.SENSITIVE

    def test_sensitive_needs_slowdown_beyond_one_way(self):
        # Slowdown only at one way does not qualify (criterion asks for >= 2 ways).
        slowdown = [1.30] + flat(1.0, 10)
        assert classify_tables(slowdown, flat(1.0)) is AppClass.LIGHT

    def test_light_when_nothing_else_matches(self):
        assert classify_tables(flat(1.01), flat(0.5)) is AppClass.LIGHT

    def test_streaming_threshold_boundaries(self):
        thresholds = ClassificationThresholds()
        # Exactly at the limits: slowdown == 1.03 and LLCMPKC == 10 qualifies.
        assert (
            classify_tables(flat(thresholds.streaming_slowdown), flat(thresholds.streaming_llcmpkc))
            is AppClass.STREAMING
        )

    def test_custom_thresholds(self):
        strict = ClassificationThresholds(sensitive_slowdown=1.5)
        slowdown = [1.4, 1.3, 1.1] + flat(1.0, 8)
        assert classify_tables(slowdown, flat(1.0), strict) is AppClass.LIGHT

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProfileError):
            classify_tables([1.0, 1.0], [1.0])

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ProfileError):
            ClassificationThresholds(streaming_llcmpkc=-1.0)
        with pytest.raises(ProfileError):
            ClassificationThresholds(low_llcmpkc_factor=0.0)

    def test_low_threshold_is_fraction_of_high(self):
        thresholds = ClassificationThresholds()
        assert thresholds.low_llcmpkc == pytest.approx(3.0)


class TestClassifyProfiles:
    def test_catalogue_fixtures(self, sensitive_profile, streaming_profile, light_profile):
        assert classify_profile(sensitive_profile) is AppClass.SENSITIVE
        assert classify_profile(streaming_profile) is AppClass.STREAMING
        assert classify_profile(light_profile) is AppClass.LIGHT

    def test_classify_profiles_returns_name_map(self, mix8):
        classes = classify_profiles(mix8.values())
        assert set(classes) == set(mix8)
        assert classes["lbm06"] is AppClass.STREAMING

    def test_split_by_class_covers_everything(self, mix8):
        classes = classify_profiles(mix8.values())
        groups = split_by_class(classes)
        total = sum(len(v) for v in groups.values())
        assert total == len(mix8)
        assert "xalancbmk06" in groups[AppClass.SENSITIVE]


class TestPartialTables:
    def test_empty_tables_unknown(self):
        assert classify_partial_tables({}, {}, 11) is AppClass.UNKNOWN

    def test_partial_streaming_detection(self):
        slowdown = {1: 1.02, 2: 1.01}
        llcmpkc = {1: 30.0, 2: 29.0}
        assert classify_partial_tables(slowdown, llcmpkc, 11) is AppClass.STREAMING

    def test_partial_sensitive_detection(self):
        slowdown = {1: 1.6, 2: 1.3, 3: 1.1, 4: 1.0}
        llcmpkc = {1: 20.0, 2: 10.0, 3: 4.0, 4: 1.0}
        assert classify_partial_tables(slowdown, llcmpkc, 11) is AppClass.SENSITIVE

    def test_partial_light_detection(self):
        slowdown = {1: 1.01}
        llcmpkc = {1: 0.5}
        assert classify_partial_tables(slowdown, llcmpkc, 11) is AppClass.LIGHT

    def test_out_of_range_way_counts_rejected(self):
        with pytest.raises(ProfileError):
            classify_partial_tables({12: 1.0}, {12: 1.0}, 11)
