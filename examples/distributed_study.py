#!/usr/bin/env python3
"""Distributed studies: fan one study out to TCP workers, crash-safely.

This example shows the pluggable executor API end to end:

1. start a :class:`~repro.runtime.executors.TCPExecutor` coordinator on a
   free localhost port and spawn two worker processes that join it — the
   same thing two terminals running ``python -m repro.cli worker --connect``
   would do (on real clusters the workers live on other hosts);
2. run a dynamic study through :func:`~repro.experiments.run_study` with a
   JSONL ``checkpoint``: every completed scenario is durably appended, so a
   killed study resumes with ``resume=True`` instead of recomputing;
3. run the same study on the in-process ``serial`` backend and verify the
   rows are bit-identical — the executor only chooses *where* runs execute,
   never what they compute;
4. resume from the finished checkpoint and confirm nothing is recomputed.

Run with:  python examples/distributed_study.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.experiments import (
    EngineSpec,
    PolicySpec,
    ScenarioSpec,
    StudyResult,
    StudySpec,
    WorkloadSpec,
    run_study,
)
from repro.runtime import TCPExecutor


def build_study() -> StudySpec:
    return StudySpec(
        name="distributed-demo",
        description="a reduced Fig. 7 dynamic cell, one scenario per workload",
        scenarios=tuple(
            ScenarioSpec(
                name=f"dynamic-{name.lower()}",
                kind="dynamic",
                workloads=(WorkloadSpec(suite="dynamic_study", names=(name,)),),
                policies=(PolicySpec("dunn"), PolicySpec("lfoc")),
                engine=EngineSpec(instructions_per_run=6e8, min_completions=1),
            )
            for name in ("P1", "S1")
        ),
    )


def spawn_worker(port: int) -> subprocess.Popen:
    """One localhost worker — stand-in for `repro.cli worker` on another host."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"127.0.0.1:{port}"],
        env=env,
    )


def main() -> None:
    spec = build_study()
    checkpoint = Path(tempfile.mkdtemp()) / "distributed_rows.jsonl"

    coordinator = TCPExecutor(("127.0.0.1", 0), min_workers=2)
    host, port = coordinator.address
    print(f"coordinator listening on {host}:{port}; spawning 2 workers")
    workers = [spawn_worker(port), spawn_worker(port)]
    try:
        with coordinator:
            distributed = run_study(
                spec, executor=coordinator, checkpoint=checkpoint
            )
    finally:
        for proc in workers:
            proc.wait(timeout=60)

    print(f"\ncheckpoint: {checkpoint}")
    print("aggregate over both workloads (tcp, 2 workers):")
    for policy, stats in distributed.aggregate().items():
        print(f"  {policy:12s} "
              f"unfairness {stats['mean_normalized_unfairness']:.3f}  "
              f"stp {stats['mean_normalized_stp']:.3f}")

    serial = run_study(spec, executor="serial")
    assert serial.rows() == distributed.rows(), "executor changed the rows!"
    print("\nserial rows are bit-identical to the distributed rows")

    resumed = run_study(spec, checkpoint=checkpoint, resume=True)
    assert resumed.rows() == distributed.rows()
    print("resume from the finished checkpoint recomputed nothing")
    assert StudyResult.load(checkpoint).rows() == distributed.rows()
    print("the checkpoint itself is a loadable result store")


if __name__ == "__main__":
    main()
