#!/usr/bin/env python3
"""Quickstart: classify a workload, run LFOC and compare against stock Linux.

This is the 60-second tour of the library:

1. build the paper's Skylake platform model and a small SPEC-like workload;
2. classify every application with the Table 1 criteria;
3. run LFOC's clustering algorithm (Algorithm 1);
4. predict per-application slowdowns, unfairness and STP with the contention
   estimator, for both the unpartitioned cache and the LFOC clustering.

Run with:  python examples/quickstart.py
"""

from repro.core import classify_profiles
from repro.hardware import skylake_gold_6138
from repro.policies import LfocPolicy, StockLinuxPolicy
from repro.simulator import ClusteringEstimator
from repro.workloads import Workload


def main() -> None:
    platform = skylake_gold_6138()
    print(f"Platform: {platform.name} ({platform.llc_ways}-way, {platform.llc_mb:.1f} MB LLC)\n")

    # A small mix: two streaming aggressors, three cache-sensitive programs
    # and three light-sharing ones.
    workload = Workload(
        "quickstart",
        (
            "lbm06",
            "libquantum06",
            "xalancbmk06",
            "soplex06",
            "omnetpp06",
            "gamess06",
            "namd06",
            "sjeng06",
        ),
    )
    profiles = workload.profiles(platform.llc_ways)

    print("Application classification (Table 1 criteria):")
    for name, klass in sorted(classify_profiles(profiles.values()).items()):
        print(f"  {name:<16s} {klass.value}")
    print()

    clustering = LfocPolicy().cluster(profiles, platform)
    print("LFOC clustering (Algorithm 1):")
    print(clustering.describe())
    print()

    estimator = ClusteringEstimator(platform, profiles)
    stock = estimator.evaluate(StockLinuxPolicy().cluster(profiles, platform))
    lfoc = estimator.evaluate(clustering)

    print("Predicted metrics (contention estimator):")
    print(f"  {'policy':<12s} {'unfairness':>10s} {'STP':>8s}")
    print(f"  {'Stock-Linux':<12s} {stock.unfairness:>10.3f} {stock.stp:>8.3f}")
    print(f"  {'LFOC':<12s} {lfoc.unfairness:>10.3f} {lfoc.stp:>8.3f}")
    reduction = 100.0 * (1.0 - lfoc.unfairness / stock.unfairness)
    print(f"\nLFOC reduces unfairness by {reduction:.1f}% on this mix.")

    print("\nWorst-off application under each policy:")
    print(f"  Stock-Linux: {stock.metrics.worst_app()} "
          f"(slowdown {stock.metrics.max_slowdown:.2f})")
    print(f"  LFOC:        {lfoc.metrics.worst_app()} "
          f"(slowdown {lfoc.metrics.max_slowdown:.2f})")


if __name__ == "__main__":
    main()
