#!/usr/bin/env python3
"""Tour of the simulated resctrl / CAT / CMT interface.

The policies in this library never touch masks directly — they produce
:class:`ClusteringSolution` / :class:`WayAllocation` objects — but an OS-level
deployment ultimately programs the hardware through the resctrl filesystem.
This example shows that path end to end against the simulated hardware:

1. create control groups and write schemata strings;
2. program an LFOC clustering through the same interface;
3. read per-task effective way counts and CMT occupancy.

Run with:  python examples/resctrl_tour.py
"""

from repro.hardware import CmtMonitor, ResctrlFilesystem, format_mask, skylake_gold_6138
from repro.policies import LfocPolicy
from repro.simulator import ClusteringEstimator
from repro.workloads import Workload


def main() -> None:
    platform = skylake_gold_6138()
    fs = ResctrlFilesystem(platform)

    info = fs.info()
    print("Simulated /sys/fs/resctrl/info/L3:")
    for key, value in info.as_dict().items():
        print(f"  {key:<16s} {value}")
    print()

    # Manual group management, as a sysadmin script would do it.
    fs.mkdir("aggressors")
    fs.write_schemata("aggressors", "L3:0=1")
    fs.add_task("aggressors", "pid-1001")
    print("After isolating pid-1001 into a 1-way group:")
    for group in fs.groups():
        label = group or "<root>"
        print(f"  {label:<12s} schemata={fs.read_schemata(group)} tasks={fs.tasks(group)}")
    print()

    # Now drive the same interface from a policy decision.
    fs.reset()
    workload = Workload(
        "resctrl-demo",
        ("lbm06", "libquantum06", "xalancbmk06", "soplex06", "gamess06", "namd06"),
    )
    profiles = workload.profiles(platform.llc_ways)
    allocation = LfocPolicy().allocate(profiles, platform)
    fs.apply_allocation(allocation.masks, prefix="lfoc")

    print("LFOC allocation programmed through resctrl:")
    for group in fs.groups():
        label = group or "<root>"
        tasks = fs.tasks(group)
        if not tasks:
            continue
        print(f"  {label:<8s} schemata={fs.read_schemata(group)} tasks={tasks}")
    print()

    # The CMT monitor reports how much of the LLC each task effectively holds,
    # which is what LFOC's phase-change heuristic for sensitive apps consumes.
    estimator = ClusteringEstimator(platform, profiles)
    estimate = estimator.evaluate_allocation(allocation)
    cmt = CmtMonitor(platform)
    for task, effective in estimate.effective_ways.items():
        cmt.update_occupancy(task, effective)
    print("CMT occupancy readings (effective LLC footprint):")
    for task in sorted(profiles):
        reading = cmt.read_occupancy(task)
        mask = format_mask(allocation.mask_of(task), platform.llc_ways)
        print(
            f"  {task:<18s} mask=0x{mask} allocated={allocation.ways_of(task):>2d} ways "
            f"occupied={reading.occupancy_ways:5.2f} ways ({reading.occupancy_kb / 1024:6.1f} MB)"
        )


if __name__ == "__main__":
    main()
