#!/usr/bin/env python3
"""Online partitioning service: the control plane end to end, in-process.

This example walks the whole service loop without needing two terminals:

1. start a :class:`~repro.service.PartitionDaemon` on a free localhost
   port — the same thing ``python -m repro.cli serve`` does;
2. drive two host agents against it from threads, each streaming seeded
   monitor samples from a profile-backed
   :class:`~repro.service.SimulatedHost` (with scripted tenant churn: one
   application departs mid-run and re-arrives later), applying every
   pushed ``mask_update`` and answering classification-sweep requests —
   the same loop ``python -m repro.cli agent`` runs over TCP;
3. compare the daemon's mask-decision log, bit for bit, against
   :func:`~repro.service.offline_replay` — the socket-free oracle on the
   same trace — which is the service's determinism pin;
4. re-run one host with a scripted :class:`FaultPlan` that corrupts an
   outbound frame: the daemon charges the link and drops it, the agent
   reconnects under a fresh boot and re-registers, and the session still
   converges to the clean run's final masks.

Run with:  python examples/service_quickstart.py
"""

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runtime.executors.chaos import FaultPlan
from repro.service import (
    HostAgent,
    PartitionDaemon,
    SimulatedHost,
    churn_schedule,
    host_seed,
    offline_replay,
)
from repro.service.agent import drive_host

WORKLOAD = "S1"
BATCHES = 20
SEED = 3


def run_live(host_ids, chaos=None):
    """One daemon + one agent thread per host; returns (daemon, agents)."""
    daemon = PartitionDaemon(("127.0.0.1", 0))
    agents, threads = [], []

    def one_host(host_id):
        host = SimulatedHost(WORKLOAD, seed=host_seed(SEED, host_id))
        churn = churn_schedule(host.apps, BATCHES, host_seed(SEED, host_id))
        agent = HostAgent(daemon.address, host_id, chaos=chaos, connect_delay_s=0.05)
        agents.append(agent)
        drive_host(host, agent, batches=BATCHES, churn=churn)

    for host_id in host_ids:
        thread = threading.Thread(target=one_host, args=(host_id,), daemon=True)
        thread.start()
        threads.append(thread)
    # The daemon pumps in this thread until every host sent its host_bye.
    daemon.run(until_byes=len(host_ids), max_seconds=120)
    for thread in threads:
        thread.join(timeout=30)
    daemon.close()
    return daemon, agents


def main():
    hosts = ["hostA", "hostB"]

    # -- the determinism pin ----------------------------------------------------
    golden = offline_replay(hosts, WORKLOAD, batches=BATCHES, seed=SEED)
    daemon, _ = run_live(hosts)
    assert daemon.frame_errors == 0
    for host in hosts:
        assert daemon.replay.signature(host) == golden.signature(host), host
    print(
        f"determinism pin: live daemon == offline oracle, "
        f"{len(daemon.replay)} mask decisions across {len(hosts)} hosts"
    )
    for decision in daemon.replay.for_host("hostA")[:3]:
        masks = {app: bin(mask) for app, mask in decision.masks}
        print(f"  hostA epoch {decision.epoch} seq {decision.seq}: {masks}")

    # -- the chaos pin ----------------------------------------------------------
    plan = FaultPlan(agent_corrupt_frames=(5,))
    daemon, (agent,) = run_live(["hostA"], chaos=plan)
    assert daemon.frame_errors >= 1 and agent.reconnects >= 1
    assert daemon.replay.final_masks("hostA") == golden.final_masks("hostA")
    print(
        f"chaos pin: corrupted frame cost the link "
        f"({daemon.frame_errors} frame errors, {agent.reconnects} reconnects), "
        f"session converged to the clean final masks"
    )


if __name__ == "__main__":
    main()
