#!/usr/bin/env python3
"""Dynamic phase tracking: LFOC's online machinery on a phased workload.

Runs a workload containing applications with long-term program phases
(``mcf``, ``xz``, ``fotonik3d``) under three configurations of the runtime
engine — stock Linux, the user-level Dunn daemon, and the LFOC scheduler
plugin — and reports unfairness, STP, how often each policy repartitioned the
cache, and how many sampling-mode sweeps LFOC needed to keep its
classification current (Section 4.2 / Fig. 7).

Run with:  python examples/dynamic_phase_tracking.py
"""

from repro.hardware import skylake_gold_6138
from repro.runtime import (
    DunnUserLevelDaemon,
    EngineConfig,
    LfocSchedulerPlugin,
    RuntimeEngine,
    StockLinuxDriver,
)
from repro.workloads import Workload


def main() -> None:
    platform = skylake_gold_6138()
    workload = Workload(
        "phase-demo",
        (
            "mcf06",
            "xz17",
            "fotonik3d17",
            "xalancbmk06",
            "lbm06",
            "gamess06",
            "namd06",
            "sjeng06",
        ),
    )
    config = EngineConfig(
        instructions_per_run=1.0e9,  # scaled from the paper's 150 G instructions
        min_completions=2,
        record_traces=True,
    )
    print(
        f"Workload {workload.name}: {', '.join(workload.benchmarks)}\n"
        f"Instruction budget per completion: {config.instructions_per_run:.1e} "
        f"(scale factor {config.instruction_scale:.0f}x vs the paper)\n"
    )

    results = {}
    for driver in (StockLinuxDriver(), DunnUserLevelDaemon(), LfocSchedulerPlugin()):
        engine = RuntimeEngine(
            platform, workload.phased_profiles(platform.llc_ways), driver, config
        )
        results[driver.name] = engine.run(workload.name)

    baseline = results["Stock-Linux"].metrics()
    print(f"{'policy':<12s} {'unfairness':>11s} {'norm.':>7s} {'STP':>7s} "
          f"{'repartitions':>13s} {'sampling sweeps':>16s}")
    for name, result in results.items():
        metrics = result.metrics()
        print(
            f"{name:<12s} {metrics.unfairness:>11.3f} "
            f"{metrics.unfairness / baseline.unfairness:>7.3f} {metrics.stp:>7.3f} "
            f"{result.n_repartitions:>13d} {result.total_sampling_entries():>16d}"
        )

    # Show how LFOC tracked mcf's phase changes over time.
    lfoc = results["LFOC"]
    trace = lfoc.traces.get("mcf06.0", [])
    if trace:
        print("\nmcf06 as seen by LFOC's monitor (time, LLCMPKC, class):")
        step = max(len(trace) // 12, 1)
        for point in trace[::step]:
            print(
                f"  t={point.time_s:6.2f}s  llcmpkc={point.llcmpkc:6.1f}  "
                f"class={point.app_class}"
            )


if __name__ == "__main__":
    main()
