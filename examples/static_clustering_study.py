#!/usr/bin/env python3
"""Static clustering study (Fig. 6 style) on a handful of workloads.

Compares Dunn, KPart, LFOC and the fairness-optimal Best-Static clustering
against stock Linux on the first few S workloads, printing normalised
unfairness and STP exactly as the Fig. 6 benchmark does, but at a scale that
runs in a few seconds.

Run with:  python examples/static_clustering_study.py [n_workloads]
"""

import sys

from repro.analysis import (
    default_static_policies,
    fig6_static_study,
    render_fig6,
    summarize_static_study,
)
from repro.analysis.reporting import format_table
from repro.workloads import static_study_workloads


def main(n_workloads: int = 4) -> None:
    workloads = static_study_workloads(max_size=8)[:n_workloads]
    print(f"Evaluating {len(workloads)} workloads: {[w.name for w in workloads]}\n")

    rows = fig6_static_study(workloads, policies=default_static_policies())
    print(render_fig6(rows))
    print()

    summary = summarize_static_study(rows)
    print(
        format_table(
            ["policy", "mean norm. unfairness", "unfairness reduction %", "mean norm. STP"],
            [
                [
                    policy,
                    f"{stats['mean_norm_unfairness']:.3f}",
                    f"{stats['mean_unfairness_reduction_pct']:.1f}",
                    f"{stats['mean_norm_stp']:.3f}",
                ]
                for policy, stats in summary.items()
            ],
        )
    )
    print(
        "\nExpected shape (Section 5.1): LFOC reduces unfairness the most among "
        "the lightweight policies, Dunn is non-uniform, and LFOC stays close to "
        "Best-Static while matching or beating KPart's throughput."
    )


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(count)
