#!/usr/bin/env python3
"""Spec-driven studies: experiments as data, components by name.

This example shows the declarative study API end to end:

1. define a two-scenario study (a static Fig. 6-style cell and a dynamic
   Fig. 7-style cell) as plain :class:`~repro.experiments.StudySpec` data;
2. serialize it to TOML — the exact text a ``lfoc-repro run`` spec file
   contains — and parse it back;
3. execute it with :func:`~repro.experiments.run_study`, which lowers the
   scenarios onto the batch executor (``jobs`` shards the runs; results are
   independent of it);
4. persist the unified results store as JSONL, reload it, and aggregate
   metrics across workloads and seeds;
5. register a custom policy under a string name and reference it from a spec
   with no change to the runner.

Run with:  python examples/spec_driven_study.py
"""

from repro.experiments import (
    EngineSpec,
    PolicySpec,
    ScenarioSpec,
    StudySpec,
    StudyResult,
    WorkloadSpec,
    register_policy,
    run_study,
    study_to_toml,
)
from repro.policies import LfocPolicy


def build_study() -> StudySpec:
    return StudySpec(
        name="spec-driven-demo",
        description="one static and one dynamic scenario on small workloads",
        scenarios=(
            ScenarioSpec(
                name="static-s1",
                kind="static",
                workloads=(WorkloadSpec(suite="s", names=("S1",)),),
                policies=(PolicySpec("dunn"), PolicySpec("lfoc")),
            ),
            ScenarioSpec(
                name="dynamic-p1",
                kind="dynamic",
                workloads=(WorkloadSpec(suite="dynamic_study", names=("P1",)),),
                policies=(PolicySpec("dunn"), PolicySpec("lfoc")),
                engine=EngineSpec(
                    instructions_per_run=6e8,
                    min_completions=1,
                    max_table_entries=4096,
                ),
            ),
        ),
    )


def main() -> None:
    spec = build_study()

    print("# The same study as TOML (feed this to `lfoc-repro run`):\n")
    print(study_to_toml(spec))

    result = run_study(spec)
    for scenario in result.scenarios:
        print(f"scenario {scenario.scenario_id} ({scenario.kind}):")
        for row in scenario.rows:
            print(
                f"  {row['workload']:>4} {row['policy']:<12} "
                f"norm. unfairness {row['normalized_unfairness']:.3f}  "
                f"norm. STP {row['normalized_stp']:.3f}"
            )

    # The unified results store round-trips through JSONL.
    result.save("spec_driven_demo.jsonl")
    reloaded = StudyResult.load("spec_driven_demo.jsonl")
    assert reloaded.rows() == result.rows()
    print("\nsaved + reloaded", len(reloaded.rows()), "rows from spec_driven_demo.jsonl")

    print("\naggregate across scenarios (mean per policy):")
    for policy, stats in reloaded.aggregate().items():
        print(
            f"  {policy:<12} unfairness x{stats['mean_normalized_unfairness']:.3f}  "
            f"STP x{stats['mean_normalized_stp']:.3f}"
        )

    # Registering a component makes it addressable from any spec — including
    # pure-TOML ones — with no change to the executor.
    @register_policy("lfoc-tight")
    def tight_lfoc():
        return LfocPolicy()

    custom = ScenarioSpec(
        name="custom-policy",
        kind="static",
        workloads=(WorkloadSpec(suite="s", names=("S2",)),),
        policies=(PolicySpec("lfoc-tight", label="LFOC(tight)"),),
    )
    rows = run_study(
        StudySpec(name="custom", scenarios=(custom,))
    ).rows()
    print("\ncustom registered policy:")
    for row in rows:
        print(f"  {row['policy']:<12} norm. unfairness {row['normalized_unfairness']:.3f}")


if __name__ == "__main__":
    main()
