#!/usr/bin/env python3
"""Optimal clustering analysis (Section 3) on a small workload.

Computes, for a 6-application mix:

* the fairness-optimal cache *clustering* (branch-and-bound, exact);
* the fairness-optimal strict cache *partitioning* (exact);
* LFOC's heuristic clustering;

and compares their unfairness/STP, illustrating the two findings that motivate
LFOC's design: clustering beats strict partitioning, and the optimal solution
confines streaming aggressors to tiny clusters — which is exactly what LFOC
approximates with a fraction of the search cost.

Run with:  python examples/optimal_vs_heuristic.py
"""

import time

from repro.hardware import skylake_gold_6138
from repro.optimal import (
    branch_and_bound_clustering,
    count_clustering_solutions,
    count_partitioning_solutions,
    optimal_partitioning,
)
from repro.policies import LfocPolicy
from repro.simulator import ClusteringEstimator
from repro.workloads import Workload


def main() -> None:
    platform = skylake_gold_6138()
    workload = Workload(
        "optimal-demo",
        ("lbm06", "gemsfdtd06", "xalancbmk06", "soplex06", "gamess06", "namd06"),
    )
    profiles = workload.profiles(platform.llc_ways)
    estimator = ClusteringEstimator(platform, profiles)

    n, k = len(profiles), platform.llc_ways
    print(
        f"Search space for {n} applications on a {k}-way LLC: "
        f"{count_clustering_solutions(n, k):,} clusterings, "
        f"{count_partitioning_solutions(n, k):,} strict partitionings\n"
    )

    start = time.perf_counter()
    clustering = branch_and_bound_clustering(platform, profiles, objective="fairness")
    clustering_time = time.perf_counter() - start

    start = time.perf_counter()
    partitioning = optimal_partitioning(platform, profiles, objective="fairness")
    partitioning_time = time.perf_counter() - start

    start = time.perf_counter()
    lfoc_solution = LfocPolicy().cluster(profiles, platform)
    lfoc_time = time.perf_counter() - start
    lfoc = estimator.evaluate(lfoc_solution)

    stock = estimator.evaluate_unpartitioned(list(profiles))

    print("Fairness-optimal clustering (branch and bound):")
    print(clustering.solution.describe())
    print(f"  unfairness={clustering.unfairness:.3f}  stp={clustering.stp:.3f}  "
          f"candidates={clustering.candidates_evaluated}  time={clustering_time:.2f}s\n")

    print("Fairness-optimal strict partitioning:")
    print(partitioning.solution.describe())
    print(f"  unfairness={partitioning.unfairness:.3f}  stp={partitioning.stp:.3f}  "
          f"time={partitioning_time:.2f}s\n")

    print("LFOC heuristic clustering:")
    print(lfoc_solution.describe())
    print(f"  unfairness={lfoc.unfairness:.3f}  stp={lfoc.stp:.3f}  "
          f"time={lfoc_time * 1e3:.2f}ms\n")

    print(f"Stock Linux (no partitioning): unfairness={stock.unfairness:.3f}  "
          f"stp={stock.stp:.3f}\n")

    gap = 100.0 * (lfoc.unfairness / clustering.unfairness - 1.0)
    advantage = 100.0 * (partitioning.unfairness / clustering.unfairness - 1.0)
    print(
        f"Clustering beats strict partitioning by {advantage:.1f}% on unfairness; "
        f"LFOC lands within {gap:.1f}% of the optimal clustering while exploring "
        f"none of the search space."
    )


if __name__ == "__main__":
    main()
