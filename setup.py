"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on environments whose packaging toolchain
predates PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
